//! Frontend-agnostic request dispatch.
//!
//! Both frontends — the thread-per-connection loop in [`crate::service`]
//! and the event loop in `mq-front` — funnel every decoded client message
//! through one [`Dispatcher`]. That is what makes them *bit-equivalent*:
//! collection resolution, dimension validation, admission control and the
//! admin opcodes produce the same reply bytes regardless of how the
//! connection is driven; the only split is mechanical (block on a reply
//! channel vs. hand the scheduler a sink).

use crate::admission::AdmissionController;
use crate::config::ServerConfig;
use crate::protocol::{refusal, Message};
use crate::registry::{Collection, CollectionRegistry};
use crate::scheduler::QueryReply;
use mq_core::QueryType;
use mq_metric::Vector;
use mq_obs::{Counter, Recorder};
use std::sync::Arc;
use std::time::Instant;

/// A query that passed validation and admission: the caller must submit
/// it to `collection`'s scheduler (blocking or sink-based) and answer
/// with [`Dispatcher::reply_for`].
pub struct AdmittedQuery {
    /// The resolved target collection.
    pub collection: Arc<Collection>,
    /// The query vector.
    pub object: Vector,
    /// The query type.
    pub qtype: QueryType,
}

/// Shared request logic over a [`CollectionRegistry`] plus an
/// [`AdmissionController`].
pub struct Dispatcher {
    registry: Arc<CollectionRegistry>,
    admission: AdmissionController,
    recorder: Recorder,
    /// Zero point of the admission controller's logical clock.
    started: Instant,
    admitted: Option<Arc<Counter>>,
    rejected: Option<Arc<Counter>>,
}

impl Dispatcher {
    /// Builds the dispatcher; admission knobs come from `config`.
    pub fn new(
        registry: Arc<CollectionRegistry>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> Self {
        Self {
            registry,
            admission: AdmissionController::new(config.max_queue, config.quota),
            recorder: recorder.clone(),
            started: Instant::now(),
            admitted: recorder.counter(
                "mq_front_admitted_total",
                "Queries that passed admission control and were scheduled.",
                &[],
            ),
            rejected: recorder.counter(
                "mq_front_rejected_total",
                "Queries rejected with a typed Overloaded reply.",
                &[],
            ),
        }
    }

    /// The registry behind this dispatcher.
    pub fn registry(&self) -> &Arc<CollectionRegistry> {
        &self.registry
    }

    /// The recorder metrics replies render from.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Handles one decoded client message. `Ok` is a reply ready to send;
    /// `Err` is an admitted query the caller must submit and answer via
    /// [`reply_for`](Self::reply_for).
    pub fn dispatch(&self, request: Message) -> Result<Message, AdmittedQuery> {
        match request {
            Message::Query {
                object,
                qtype,
                collection,
                tenant,
            } => {
                let Some(collection) = self.registry.get(&collection) else {
                    return Ok(Message::Refused {
                        code: refusal::UNKNOWN_COLLECTION,
                        detail: format!("no collection named {collection:?}"),
                    });
                };
                let expected = collection.dimensions();
                if expected != 0 && object.dim() != expected {
                    // Reject up front: a mismatched vector must never reach
                    // a batch that carries other clients' queries. The
                    // connection stays open for corrected retries.
                    return Ok(Message::Error(format!(
                        "dimension mismatch: query vector has {} components, \
                         database objects have {expected}",
                        object.dim()
                    )));
                }
                if self.admission.is_enabled() {
                    let scheduler = collection.scheduler();
                    if let Err(retry_after_ms) = self.admission.admit(
                        &tenant,
                        scheduler.in_flight(),
                        self.started.elapsed(),
                        scheduler.queue_wait_p99(),
                    ) {
                        if let Some(c) = &self.rejected {
                            c.inc();
                        }
                        return Ok(Message::Overloaded { retry_after_ms });
                    }
                }
                if let Some(c) = &self.admitted {
                    c.inc();
                }
                collection.count_admitted();
                Err(AdmittedQuery {
                    collection,
                    object,
                    qtype,
                })
            }
            Message::Stats { collection } => match self.registry.get(&collection) {
                Some(c) => Ok(Message::StatsReply(c.scheduler().metrics())),
                None => Ok(Message::Refused {
                    code: refusal::UNKNOWN_COLLECTION,
                    detail: format!("no collection named {collection:?}"),
                }),
            },
            // One registry serves every collection, so the exposition is
            // global; the collection field is accepted for forward
            // compatibility.
            Message::MetricsRequest { collection: _ } => {
                Ok(Message::MetricsReply(self.recorder.render()))
            }
            Message::CreateCollection {
                name,
                dim,
                metric,
                source,
            } => Ok(match self.registry.create(&name, dim, &metric, &source) {
                Ok(detail) => Message::Ack(detail),
                Err((code, detail)) => Message::Refused { code, detail },
            }),
            Message::DropCollection { name } => Ok(match self.registry.drop_collection(&name) {
                Ok(detail) => Message::Ack(detail),
                Err((code, detail)) => Message::Refused { code, detail },
            }),
            Message::ListCollections => Ok(Message::CollectionList(self.registry.list())),
            other => Ok(Message::Error(format!(
                "unexpected client message: {other:?}"
            ))),
        }
    }

    /// The wire reply for a scheduler outcome: answers, or the typed
    /// failure text when the batch died (backend panic, shutdown drain).
    pub fn reply_for(result: Option<QueryReply>) -> Message {
        match result {
            Some(reply) => Message::Answers {
                batch_id: reply.batch_id,
                batch_size: reply.batch_size,
                stats: reply.stats,
                answers: reply.answers,
            },
            None => Message::Error("query batch failed or scheduler shut down".into()),
        }
    }
}

//! Server configuration: batching knobs, execution mode, and admission
//! limits.

use mq_approx::ApproxTier;
use mq_core::LeaderPolicy;
use mq_metric::{Metric, VectorMetric};
use std::path::PathBuf;
use std::time::Duration;

/// Per-tenant token-bucket quota: `rate` tokens per second refill, up to
/// `burst` held. Every admitted query spends one token; a tenant that
/// exhausts its bucket gets typed `Overloaded` replies until it refills.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaConfig {
    /// Sustained queries per second per tenant.
    pub rate: f64,
    /// Largest burst a tenant can spend at once.
    pub burst: f64,
}

/// Which page-store backend serves the database.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum StoreChoice {
    /// The in-memory simulated disk (the paper's metered model).
    #[default]
    Sim,
    /// The durable `mq-store` file backend rooted at this directory (one
    /// per-partition subdirectory in cluster mode). If the directory
    /// already holds a store it is opened (running crash recovery);
    /// otherwise it is created from the loaded database.
    File(PathBuf),
}

/// Access method served over a *recovered* file-store page layout.
///
/// A durable store's pages must be served exactly as crash recovery left
/// them, so only indexes that summarize an existing layout qualify — the
/// tree bulk-loaders would repack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FileIndex {
    /// Sequential scan in physical page order (every page relevant).
    #[default]
    Scan,
    /// VA-quantized page bounds over the recovered layout
    /// ([`mq_vafile::VaPageIndex`]): pages served best-first and pruned by
    /// a true Euclidean lower bound. Euclidean metric only.
    VaPage,
}

impl FileIndex {
    /// The CLI `--index` name this choice answers to.
    pub fn name(&self) -> &'static str {
        match self {
            FileIndex::Scan => "scan",
            FileIndex::VaPage => "vafile",
        }
    }
}

/// How flushed batches are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One engine on one simulated disk (§5.1–5.2).
    Single,
    /// A shared-nothing cluster of `servers` declustered engines (§5.3).
    Cluster {
        /// Number of cluster servers.
        servers: usize,
    },
}

/// The scheduler's batching knobs.
///
/// Requests queue until either `max_batch` of them accumulated or
/// `max_wait` elapsed since the oldest queued request arrived; the queue
/// then flushes as one `multiple_similarity_query` batch. A larger
/// `max_batch` shares more page reads per flush (the paper's m); a larger
/// `max_wait` trades latency of a lone request for the chance of sharing.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush at latest this long after the first queued request.
    pub max_wait: Duration,
    /// Single engine or shared-nothing cluster.
    pub mode: ExecutionMode,
    /// Whether §5.2 triangle-inequality avoidance is enabled.
    pub avoidance: bool,
    /// Page-evaluation threads per engine (intra-batch parallelism; 1 =
    /// the classic sequential loop). Identical answers for every value.
    pub threads: usize,
    /// Pages staged ahead of the one being evaluated (pipelined prefetch;
    /// 0 disables it). Identical answers for every depth.
    pub prefetch_depth: usize,
    /// Which pending query leads each step of a batch.
    pub leader: LeaderPolicy,
    /// Scheduler worker threads executing flushed batches. With 1 worker
    /// (the default) batches execute strictly one after another; more
    /// workers overlap batch execution with batch collection, at the cost
    /// of batches competing for cores.
    pub workers: usize,
    /// Extra read attempts the engines make on a *transient* disk fault
    /// before a batch fails (see [`mq_core::FaultPolicy`]). Only matters
    /// when the backend's disks have a fault plan installed.
    pub retry_budget: u32,
    /// Read timeout applied to every client connection; a client that
    /// stalls mid-frame for longer is disconnected instead of pinning its
    /// handler thread forever. `None` (the default) blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Page-store backend: in-memory simulation (the default) or the
    /// durable file store.
    pub store: StoreChoice,
    /// Access method over a recovered file-store layout (ignored by the
    /// simulated store, whose index comes from the build callback).
    pub file_index: FileIndex,
    /// Distance function the engines evaluate (see
    /// [`VectorMetric`] for the names). Non-Euclidean metrics must be
    /// served through a sequential-scan index: tree page bounds are
    /// Euclidean geometry and would prune wrongly.
    pub metric: VectorMetric,
    /// Optional approximate candidate tier in front of the exact engine
    /// (`bq:<budget>` or `hnsw:<ef>`; see [`ApproxTier`]). `None` — the
    /// default — serves exact answers; a tier trades recall for speed
    /// while keeping every reported distance exact. Only supported with
    /// the Euclidean metric.
    pub approx: Option<ApproxTier>,
    /// Bound on each collection's scheduler queue depth. A query arriving
    /// while the target collection already has this many in flight gets a
    /// typed `Overloaded` reply instead of queueing — backpressure, not
    /// buffering. `0` (the default) means unbounded.
    pub max_queue: usize,
    /// Per-tenant token-bucket quota; `None` (the default) admits every
    /// tenant without rate limits.
    pub quota: Option<QuotaConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_millis(20),
            mode: ExecutionMode::Single,
            avoidance: true,
            threads: 1,
            prefetch_depth: 0,
            leader: LeaderPolicy::default(),
            workers: 1,
            retry_budget: 2,
            read_timeout: None,
            store: StoreChoice::Sim,
            file_index: FileIndex::default(),
            metric: VectorMetric::default(),
            approx: None,
            max_queue: 0,
            quota: None,
        }
    }
}

impl ServerConfig {
    /// Sets the batch-size flush threshold.
    ///
    /// # Panics
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Sets the deadline flush threshold.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Selects the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables §5.2 avoidance.
    pub fn with_avoidance(mut self, avoidance: bool) -> Self {
        self.avoidance = avoidance;
        self
    }

    /// Sets the page-evaluation threads per engine (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the pipelined prefetch depth per engine.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Selects the leader scheduling policy per engine.
    pub fn with_leader(mut self, leader: LeaderPolicy) -> Self {
        self.leader = leader;
        self
    }

    /// Sets the scheduler worker-thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the engines' transient-fault retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Sets the per-connection read timeout (`None` blocks forever).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Selects the page-store backend.
    pub fn with_store(mut self, store: StoreChoice) -> Self {
        self.store = store;
        self
    }

    /// Selects the access method over a recovered file-store layout.
    pub fn with_file_index(mut self, file_index: FileIndex) -> Self {
        self.file_index = file_index;
        self
    }

    /// Selects the distance function the engines evaluate.
    pub fn with_metric(mut self, metric: VectorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Installs (or clears) the approximate candidate tier.
    pub fn with_approx(mut self, approx: Option<ApproxTier>) -> Self {
        self.approx = approx;
        self
    }

    /// Bounds each collection's scheduler queue depth (0 = unbounded).
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue;
        self
    }

    /// Installs (or clears) the per-tenant token-bucket quota.
    ///
    /// # Panics
    /// Panics if the quota's rate or burst is not positive and finite.
    pub fn with_quota(mut self, quota: Option<QuotaConfig>) -> Self {
        if let Some(q) = &quota {
            assert!(
                q.rate > 0.0 && q.rate.is_finite(),
                "quota rate must be positive and finite"
            );
            assert!(
                q.burst > 0.0 && q.burst.is_finite(),
                "quota burst must be positive and finite"
            );
        }
        self.quota = quota;
        self
    }

    /// One-line summary of every resolved knob, for startup logs.
    pub fn describe(&self) -> String {
        let mode = match self.mode {
            ExecutionMode::Single => "single".to_string(),
            ExecutionMode::Cluster { servers } => format!("cluster({servers})"),
        };
        let read_timeout = match self.read_timeout {
            Some(t) => format!("{:.1}s", t.as_secs_f64()),
            None => "none".to_string(),
        };
        let store = match &self.store {
            StoreChoice::Sim => "sim".to_string(),
            StoreChoice::File(dir) => {
                format!(
                    "file:{} file_index={}",
                    dir.display(),
                    self.file_index.name()
                )
            }
        };
        let approx = match &self.approx {
            Some(tier) => tier.to_string(),
            None => "off".to_string(),
        };
        let max_queue = if self.max_queue == 0 {
            "unbounded".to_string()
        } else {
            self.max_queue.to_string()
        };
        let quota = match &self.quota {
            Some(q) => format!("{}:{}", q.rate, q.burst),
            None => "off".to_string(),
        };
        format!(
            "mode={mode} store={store} metric={} approx={approx} max_batch={} max_wait={:.0}ms \
             workers={} threads={} prefetch_depth={} leader={:?} avoidance={} retry_budget={} \
             read_timeout={read_timeout} max_queue={max_queue} quota={quota}",
            self.metric.name(),
            self.max_batch,
            self.max_wait.as_secs_f64() * 1e3,
            self.workers,
            self.threads,
            self.prefetch_depth,
            self.leader,
            self.avoidance,
            self.retry_budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = ServerConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(5))
            .with_mode(ExecutionMode::Cluster { servers: 3 })
            .with_avoidance(false)
            .with_threads(4)
            .with_prefetch_depth(2)
            .with_leader(LeaderPolicy::NearestChain)
            .with_workers(2)
            .with_retry_budget(5)
            .with_read_timeout(Some(Duration::from_secs(3)))
            .with_store(StoreChoice::File(PathBuf::from("/tmp/mqdb")))
            .with_metric(VectorMetric::Cosine)
            .with_approx(Some(ApproxTier::Bq { budget: 500 }))
            .with_max_queue(64)
            .with_quota(Some(QuotaConfig {
                rate: 100.0,
                burst: 10.0,
            }));
        assert_eq!(c.max_batch, 4);
        assert_eq!(c.max_wait, Duration::from_millis(5));
        assert_eq!(c.mode, ExecutionMode::Cluster { servers: 3 });
        assert!(!c.avoidance);
        assert_eq!(c.threads, 4);
        assert_eq!(c.prefetch_depth, 2);
        assert_eq!(c.leader, LeaderPolicy::NearestChain);
        assert_eq!(c.workers, 2);
        assert_eq!(c.retry_budget, 5);
        assert_eq!(c.read_timeout, Some(Duration::from_secs(3)));
        assert_eq!(c.store, StoreChoice::File(PathBuf::from("/tmp/mqdb")));
        assert_eq!(c.metric, VectorMetric::Cosine);
        assert_eq!(c.approx, Some(ApproxTier::Bq { budget: 500 }));
        assert_eq!(c.max_queue, 64);
        assert_eq!(
            c.quota,
            Some(QuotaConfig {
                rate: 100.0,
                burst: 10.0
            })
        );
    }

    #[test]
    fn defaults_are_sequential() {
        let c = ServerConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.prefetch_depth, 0);
        assert_eq!(c.leader, LeaderPolicy::Fifo);
        assert_eq!(c.workers, 1);
        assert_eq!(c.retry_budget, 2);
        assert_eq!(c.read_timeout, None);
        assert_eq!(c.store, StoreChoice::Sim);
        assert_eq!(c.metric, VectorMetric::Euclidean);
        assert_eq!(c.approx, None);
        assert_eq!(c.max_queue, 0);
        assert_eq!(c.quota, None);
    }

    #[test]
    fn zero_threads_and_workers_clamp_to_one() {
        let c = ServerConfig::default().with_threads(0).with_workers(0);
        assert_eq!(c.threads, 1);
        assert_eq!(c.workers, 1);
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_batch_rejected() {
        let _ = ServerConfig::default().with_max_batch(0);
    }

    #[test]
    #[should_panic(expected = "quota rate must be positive")]
    fn non_positive_quota_rejected() {
        let _ = ServerConfig::default().with_quota(Some(QuotaConfig {
            rate: 0.0,
            burst: 4.0,
        }));
    }

    #[test]
    fn describe_names_every_knob() {
        let line = ServerConfig::default()
            .with_mode(ExecutionMode::Cluster { servers: 3 })
            .with_threads(4)
            .with_workers(2)
            .with_prefetch_depth(2)
            .with_retry_budget(5)
            .describe();
        assert!(!line.contains('\n'));
        for needle in [
            "mode=cluster(3)",
            "store=sim",
            "metric=euclidean",
            "approx=off",
            "max_batch=16",
            "max_wait=20ms",
            "workers=2",
            "threads=4",
            "prefetch_depth=2",
            "leader=Fifo",
            "avoidance=true",
            "retry_budget=5",
            "read_timeout=none",
            "max_queue=unbounded",
            "quota=off",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        let admission_line = ServerConfig::default()
            .with_max_queue(32)
            .with_quota(Some(QuotaConfig {
                rate: 200.0,
                burst: 16.0,
            }))
            .describe();
        assert!(admission_line.contains("max_queue=32"), "{admission_line}");
        assert!(admission_line.contains("quota=200:16"), "{admission_line}");
        let file_line = ServerConfig::default()
            .with_store(StoreChoice::File(PathBuf::from("/data/mq")))
            .describe();
        assert!(file_line.contains("store=file:/data/mq"), "{file_line}");
        let approx_line = ServerConfig::default()
            .with_approx(Some(ApproxTier::Hnsw { ef: 64 }))
            .describe();
        assert!(approx_line.contains("approx=hnsw:64"), "{approx_line}");
    }

    #[test]
    fn file_index_defaults_to_scan_and_describes() {
        let c = ServerConfig::default();
        assert_eq!(c.file_index, FileIndex::Scan);
        let line = ServerConfig::default()
            .with_store(StoreChoice::File(PathBuf::from("/data/mq")))
            .with_file_index(FileIndex::VaPage)
            .describe();
        assert!(line.contains("file_index=vafile"), "{line}");
        assert_eq!(FileIndex::VaPage.name(), "vafile");
        assert_eq!(FileIndex::Scan.name(), "scan");
    }
}

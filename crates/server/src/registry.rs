//! Named collections: one server, many datasets.
//!
//! A [`Collection`] owns everything one dataset needs to serve queries —
//! its dimensionality, metric, index, engine backend and (for durable
//! collections) its store directory — plus its *own* [`BatchScheduler`],
//! so batching never mixes queries against different datasets: the
//! paper's page-read sharing only helps queries that read the *same*
//! pages. The [`CollectionRegistry`] maps wire names to collections and
//! implements the `CreateCollection` / `DropCollection` /
//! `ListCollections` opcodes for both frontends.
//!
//! All collections share one [`Recorder`]. The scheduler's unlabeled
//! instruments (`mq_server_queries_total`, …) are get-or-fetch in
//! mq-obs, so every collection's scheduler feeds the same aggregate
//! series — the loadgen report's server window keeps meaning "the whole
//! server". Per-collection traffic is visible separately through the
//! labeled `mq_front_collection_queries_total{collection=…}` counter.

use crate::config::{ExecutionMode, ServerConfig, StoreChoice};
use crate::protocol::{refusal, CollectionInfo, ServiceMetrics, DEFAULT_COLLECTION};
use crate::scheduler::{build_backend_with_recorder, BatchScheduler, QueryBackend};
use mq_core::{Answer, ExecutionStats, QueryType};
use mq_index::LinearScan;
use mq_metric::{Metric, Vector, VectorMetric};
use mq_obs::{Counter, Recorder};
use mq_storage::{persist, PagedDatabase, VectorCodec};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A backend with no objects: every query answers with an empty list.
/// Wire-created collections start here until they are created from a
/// source file (the engine stack needs at least one page, so an actually
/// empty `PagedDatabase` cannot be packed).
struct EmptyBackend {
    dims: usize,
}

impl QueryBackend for EmptyBackend {
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
        (vec![Vec::new(); queries.len()], ExecutionStats::default())
    }

    fn dimensions(&self) -> usize {
        self.dims
    }

    fn describe(&self) -> String {
        format!("empty collection ({} dims)", self.dims)
    }
}

/// One named dataset being served: scheduler, static description, and the
/// store directory to checkpoint at drain time (durable collections).
pub struct Collection {
    name: String,
    scheduler: BatchScheduler,
    metric: &'static str,
    objects: u64,
    store_dir: Option<PathBuf>,
    /// Labeled per-collection admitted-query counter (None with a
    /// disabled recorder).
    queries: Option<Arc<Counter>>,
}

impl Collection {
    fn start(
        name: &str,
        backend: Box<dyn QueryBackend>,
        objects: u64,
        config: &ServerConfig,
        recorder: &Recorder,
        store_dir: Option<PathBuf>,
    ) -> Self {
        let queries = recorder.counter(
            "mq_front_collection_queries_total",
            "Queries admitted and scheduled, per collection.",
            &[("collection", name)],
        );
        Self {
            name: name.to_string(),
            scheduler: BatchScheduler::start_with_recorder(backend, config, recorder),
            metric: metric_static_name(config.metric),
            objects,
            store_dir,
            queries,
        }
    }

    /// The collection's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The collection's scheduler — queries are submitted here.
    pub fn scheduler(&self) -> &BatchScheduler {
        &self.scheduler
    }

    /// Dimensionality queries must match (0 = unknown/empty).
    pub fn dimensions(&self) -> usize {
        self.scheduler.dimensions()
    }

    /// The store directory to checkpoint at drain, if file-backed.
    pub fn store_dir(&self) -> Option<&PathBuf> {
        self.store_dir.as_ref()
    }

    /// Counts one admitted query on the per-collection series.
    pub fn count_admitted(&self) {
        if let Some(c) = &self.queries {
            c.inc();
        }
    }

    /// The wire description of this collection.
    pub fn info(&self) -> CollectionInfo {
        CollectionInfo {
            name: self.name.clone(),
            dim: self.dimensions() as u32,
            metric: self.metric.to_string(),
            objects: self.objects,
            in_flight: self.scheduler.in_flight(),
        }
    }
}

fn metric_static_name(metric: VectorMetric) -> &'static str {
    match metric {
        VectorMetric::Euclidean => "euclidean",
        VectorMetric::Manhattan => "manhattan",
        VectorMetric::Cosine => "cosine",
        VectorMetric::Dot => "dot",
    }
}

/// Collection names are path components (file-backed collections live
/// under `<root>/collections/<name>`), so the accepted alphabet is
/// deliberately narrow.
fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("collection name must not be empty".into());
    }
    if name.len() > 64 {
        return Err(format!("collection name longer than 64 bytes: {name:?}"));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err(format!(
            "collection name {name:?} has characters outside [A-Za-z0-9._-]"
        ));
    }
    if name.bytes().all(|b| b == b'.') {
        return Err(format!("collection name {name:?} is a path component"));
    }
    Ok(())
}

/// The server's named collections, keyed by wire name. The empty wire
/// name resolves to [`DEFAULT_COLLECTION`].
pub struct CollectionRegistry {
    collections: RwLock<HashMap<String, Arc<Collection>>>,
    /// Template config for wire-created collections (batching knobs,
    /// store root); metric/mode/approx are overridden per collection.
    template: ServerConfig,
    recorder: Recorder,
}

impl CollectionRegistry {
    /// Builds a registry serving `default_backend` as the
    /// [`DEFAULT_COLLECTION`]; `default_store_dir` is its checkpoint
    /// target when file-backed (the store root itself, for back-compat
    /// with single-collection deployments).
    pub fn new(
        default_backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> Self {
        let default_store_dir = match (&config.mode, &config.store) {
            (ExecutionMode::Single, StoreChoice::File(dir)) => Some(dir.clone()),
            _ => None,
        };
        let objects = default_backend.object_count();
        let default = Collection::start(
            DEFAULT_COLLECTION,
            default_backend,
            objects,
            config,
            recorder,
            default_store_dir,
        );
        let mut collections = HashMap::new();
        collections.insert(DEFAULT_COLLECTION.to_string(), Arc::new(default));
        Self {
            collections: RwLock::new(collections),
            template: config.clone(),
            recorder: recorder.clone(),
        }
    }

    /// Resolves a wire collection name ("" = the default collection).
    pub fn get(&self, name: &str) -> Option<Arc<Collection>> {
        let name = if name.is_empty() {
            DEFAULT_COLLECTION
        } else {
            name
        };
        self.collections.read().get(name).cloned()
    }

    /// Installs an already-built backend as a named collection — the
    /// in-process path tests use to stand up multi-metric servers without
    /// files. Same refusals as the wire path for name clashes.
    pub fn install(
        &self,
        name: &str,
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        store_dir: Option<PathBuf>,
    ) -> Result<(), (u16, String)> {
        validate_name(name).map_err(|detail| (refusal::BAD_COLLECTION_SPEC, detail))?;
        let objects = backend.object_count();
        let collection = Arc::new(Collection::start(
            name,
            backend,
            objects,
            config,
            &self.recorder,
            store_dir,
        ));
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err((
                refusal::COLLECTION_EXISTS,
                format!("collection {name:?} already exists"),
            ));
        }
        map.insert(name.to_string(), collection);
        Ok(())
    }

    /// Creates a collection from a wire `CreateCollection` request:
    /// either empty with a declared dimensionality (`source == ""`), or
    /// loaded from a server-side `.mqdb` dataset path. File-backed
    /// servers give the new collection its own durable store under
    /// `<root>/collections/<name>`.
    ///
    /// # Errors
    /// A `(refusal code, detail)` pair, ready to send as `Refused`.
    pub fn create(
        &self,
        name: &str,
        dim: u32,
        metric: &str,
        source: &str,
    ) -> Result<String, (u16, String)> {
        validate_name(name).map_err(|detail| (refusal::BAD_COLLECTION_SPEC, detail))?;
        if self.collections.read().contains_key(name) {
            return Err((
                refusal::COLLECTION_EXISTS,
                format!("collection {name:?} already exists"),
            ));
        }
        if matches!(self.template.mode, ExecutionMode::Cluster { .. }) {
            // A wire-created collection would need its own declustering
            // and per-partition stores; refuse rather than half-support.
            return Err((
                refusal::UNSUPPORTED,
                "collection management is not supported in cluster mode".into(),
            ));
        }
        let metric = if metric.is_empty() {
            VectorMetric::default()
        } else {
            VectorMetric::parse(metric).ok_or_else(|| {
                (
                    refusal::BAD_COLLECTION_SPEC,
                    format!(
                        "unknown metric {metric:?} (expected one of {})",
                        VectorMetric::NAMES.join(", ")
                    ),
                )
            })?
        };
        // Wire-created collections always serve exact answers through a
        // scan; approx tiers and special file indexes stay a boot-time
        // choice of the default collection.
        let mut config = self.template.clone();
        config.metric = metric;
        config.approx = None;
        config.file_index = crate::config::FileIndex::Scan;
        let store_dir = match &self.template.store {
            StoreChoice::File(root) => Some(root.join("collections").join(name)),
            StoreChoice::Sim => None,
        };

        let collection = if source.is_empty() {
            if dim == 0 {
                return Err((
                    refusal::BAD_COLLECTION_SPEC,
                    "an empty collection needs a nonzero dimensionality".into(),
                ));
            }
            config.store = StoreChoice::Sim; // nothing durable to store yet
            Collection::start(
                name,
                Box::new(EmptyBackend { dims: dim as usize }),
                0,
                &config,
                &self.recorder,
                None,
            )
        } else {
            let db: PagedDatabase<Vector> = persist::load(&VectorCodec, source).map_err(|e| {
                (
                    refusal::BAD_COLLECTION_SPEC,
                    format!("cannot load dataset {source:?}: {e}"),
                )
            })?;
            config.store = match store_dir.clone() {
                Some(dir) => StoreChoice::File(dir),
                None => StoreChoice::Sim,
            };
            let backend = build_backend_with_recorder(&db, &config, 0.10, &self.recorder, |ds| {
                let db = PagedDatabase::pack(ds, Default::default());
                let index: Box<dyn mq_index::SimilarityIndex<Vector>> =
                    Box::new(LinearScan::new(db.page_count()));
                (index, db)
            })
            .map_err(|e| {
                (
                    refusal::BAD_COLLECTION_SPEC,
                    format!("cannot build collection from {source:?}: {e}"),
                )
            })?;
            let objects = backend.object_count();
            if dim != 0 && backend.dimensions() != 0 && backend.dimensions() != dim as usize {
                return Err((
                    refusal::BAD_COLLECTION_SPEC,
                    format!(
                        "declared dim {dim} does not match dataset dim {}",
                        backend.dimensions()
                    ),
                ));
            }
            Collection::start(name, backend, objects, &config, &self.recorder, store_dir)
        };
        let detail = format!(
            "collection {name:?} created ({} objects, {} dims, metric {})",
            collection.objects,
            collection.dimensions(),
            metric.name(),
        );
        let mut map = self.collections.write();
        if map.contains_key(name) {
            // Lost a create/create race while building; the other one won.
            return Err((
                refusal::COLLECTION_EXISTS,
                format!("collection {name:?} already exists"),
            ));
        }
        map.insert(name.to_string(), Arc::new(collection));
        Ok(detail)
    }

    /// Drops a collection: refuses while queries are in flight (a client
    /// never gets a partial answer from a drop racing its query), refuses
    /// to drop the default collection, and otherwise detaches it. A
    /// file-backed collection's store directory stays on disk — drop
    /// stops serving, it does not destroy data.
    pub fn drop_collection(&self, name: &str) -> Result<String, (u16, String)> {
        if name.is_empty() || name == DEFAULT_COLLECTION {
            return Err((
                refusal::BAD_COLLECTION_SPEC,
                "the default collection cannot be dropped".into(),
            ));
        }
        let mut map = self.collections.write();
        let Some(collection) = map.get(name) else {
            return Err((
                refusal::UNKNOWN_COLLECTION,
                format!("no collection named {name:?}"),
            ));
        };
        // The write lock is held, so no new query can resolve this
        // collection while we look; anything already admitted keeps its
        // Arc and finishes normally, we just refuse to detach until then.
        let busy = collection.scheduler.in_flight();
        if busy > 0 {
            return Err((
                refusal::COLLECTION_BUSY,
                format!("collection {name:?} has {busy} queries in flight"),
            ));
        }
        map.remove(name);
        Ok(format!("collection {name:?} dropped"))
    }

    /// Every collection's wire description, sorted by name (the default
    /// collection first) so the listing is deterministic.
    pub fn list(&self) -> Vec<CollectionInfo> {
        let mut infos: Vec<CollectionInfo> =
            self.collections.read().values().map(|c| c.info()).collect();
        infos.sort_by(|a, b| {
            (a.name != DEFAULT_COLLECTION, &a.name).cmp(&(b.name != DEFAULT_COLLECTION, &b.name))
        });
        infos
    }

    /// The default collection (always present).
    pub fn default_collection(&self) -> Arc<Collection> {
        self.get(DEFAULT_COLLECTION)
            .expect("default collection always present")
    }

    /// Aggregate service counters of the default collection — what the
    /// wire `Stats` opcode with an empty collection name reports, and
    /// what single-collection deployments always saw.
    pub fn default_metrics(&self) -> ServiceMetrics {
        self.default_collection().scheduler().metrics()
    }

    /// Queries in flight across every collection.
    pub fn total_in_flight(&self) -> u64 {
        self.collections
            .read()
            .values()
            .map(|c| c.scheduler.in_flight())
            .sum()
    }

    /// Waits until no collection has in-flight work, polling up to
    /// `timeout`; returns whether everything drained in time.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.total_in_flight() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }

    /// Store directories of every file-backed collection — the set a
    /// graceful shutdown checkpoints after the registry is dropped.
    pub fn store_dirs(&self) -> Vec<PathBuf> {
        let mut dirs: Vec<PathBuf> = self
            .collections
            .read()
            .values()
            .filter_map(|c| c.store_dir.clone())
            .collect();
        dirs.sort();
        dirs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> CollectionRegistry {
        let config = ServerConfig::default();
        CollectionRegistry::new(
            Box::new(EmptyBackend { dims: 3 }),
            &config,
            &Recorder::disabled(),
        )
    }

    #[test]
    fn default_collection_resolves_by_empty_name() {
        let r = registry();
        assert_eq!(r.get("").unwrap().name(), DEFAULT_COLLECTION);
        assert_eq!(
            r.get(DEFAULT_COLLECTION).unwrap().name(),
            DEFAULT_COLLECTION
        );
        assert!(r.get("nope").is_none());
        assert_eq!(r.list().len(), 1);
        assert_eq!(r.list()[0].dim, 3);
    }

    #[test]
    fn create_empty_then_drop() {
        let r = registry();
        r.create("emb", 8, "cosine", "").expect("create");
        let info = r.get("emb").unwrap().info();
        assert_eq!(info.dim, 8);
        assert_eq!(info.metric, "cosine");
        assert_eq!(info.objects, 0);
        // Listing is default-first, then lexicographic.
        let names: Vec<String> = r.list().into_iter().map(|i| i.name).collect();
        assert_eq!(
            names,
            vec![DEFAULT_COLLECTION.to_string(), "emb".to_string()]
        );
        r.drop_collection("emb").expect("drop");
        assert!(r.get("emb").is_none());
    }

    #[test]
    fn create_refusals_are_typed() {
        let r = registry();
        assert_eq!(
            r.create("bad/name", 4, "", "").unwrap_err().0,
            refusal::BAD_COLLECTION_SPEC
        );
        assert_eq!(
            r.create("x", 0, "", "").unwrap_err().0,
            refusal::BAD_COLLECTION_SPEC,
            "empty collection needs a dim"
        );
        assert_eq!(
            r.create("x", 4, "chebyshev", "").unwrap_err().0,
            refusal::BAD_COLLECTION_SPEC
        );
        r.create("x", 4, "", "").unwrap();
        assert_eq!(
            r.create("x", 4, "", "").unwrap_err().0,
            refusal::COLLECTION_EXISTS
        );
        assert_eq!(
            r.create("y", 4, "", "/no/such/file.mqdb").unwrap_err().0,
            refusal::BAD_COLLECTION_SPEC
        );
        assert_eq!(
            r.drop_collection(DEFAULT_COLLECTION).unwrap_err().0,
            refusal::BAD_COLLECTION_SPEC
        );
        assert_eq!(
            r.drop_collection("ghost").unwrap_err().0,
            refusal::UNKNOWN_COLLECTION
        );
    }

    #[test]
    fn cluster_mode_refuses_collection_management() {
        let config = ServerConfig::default().with_mode(ExecutionMode::Cluster { servers: 2 });
        let r = CollectionRegistry::new(
            Box::new(EmptyBackend { dims: 3 }),
            &config,
            &Recorder::disabled(),
        );
        assert_eq!(
            r.create("x", 4, "", "").unwrap_err().0,
            refusal::UNSUPPORTED
        );
    }

    #[test]
    fn empty_backend_answers_empty() {
        let r = registry();
        r.create("e", 2, "", "").unwrap();
        let c = r.get("e").unwrap();
        let rx = c
            .scheduler()
            .submit(Vector::new(vec![1.0, 2.0]), QueryType::knn(5));
        let reply = rx.recv().expect("reply");
        assert!(reply.answers.is_empty());
    }
}

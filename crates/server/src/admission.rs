//! Admission control: the gate between frame decode and scheduler
//! submission.
//!
//! Two independent checks, both cheap and both *typed* — an arriving
//! query that fails either one gets an `Overloaded{retry_after_ms}` reply
//! immediately instead of joining an unbounded queue:
//!
//! 1. **Queue depth** — if the target collection already has
//!    [`ServerConfig::max_queue`](crate::ServerConfig) jobs in flight the
//!    query is rejected. The retry hint is the scheduler's live
//!    queue-wait p99 (the first place the mq-obs histograms feed back
//!    into behaviour): a saturated queue advertises its own delay.
//! 2. **Tenant quota** — a token bucket per tenant name
//!    ([`QuotaConfig`]: `rate` tokens/second refill up to `burst`). The
//!    retry hint is the exact time until the bucket holds a whole token.
//!
//! The controller is deliberately clocked by a *logical* `now` supplied
//! by the caller (wall-clock-since-start in the servers, plan offsets in
//! tests) rather than reading `Instant::now()` itself. That makes the
//! admitted/rejected split a pure function of the offered sequence — the
//! property the admission-determinism suite pins.

use crate::config::QuotaConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Fallback queue-full retry hint when the scheduler has no queue-wait
/// observations yet (first requests after startup).
const DEFAULT_RETRY_MS: u64 = 10;
/// Retry hints are clamped to this ceiling so a pathological histogram
/// tail cannot tell clients to go away for minutes.
const MAX_RETRY_MS: u64 = 1_000;

struct Bucket {
    tokens: f64,
    last: Duration,
}

/// Decides, per query, whether to admit or reject with a retry hint.
///
/// Shared by both frontends so the two are bit-equivalent under load
/// limits. With `max_queue == 0` and no quota every call admits.
pub struct AdmissionController {
    max_queue: usize,
    quota: Option<QuotaConfig>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl AdmissionController {
    /// Builds a controller from the two admission knobs.
    pub fn new(max_queue: usize, quota: Option<QuotaConfig>) -> Self {
        Self {
            max_queue,
            quota,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether any limit is configured at all (lets callers skip the
    /// bookkeeping entirely in the common unbounded case).
    pub fn is_enabled(&self) -> bool {
        self.max_queue > 0 || self.quota.is_some()
    }

    /// Admits one query for `tenant`, or rejects it with a
    /// `retry_after_ms` hint.
    ///
    /// `queue_depth` is the target collection's current in-flight count,
    /// `now` the logical clock (monotone per tenant; a caller handing in
    /// plan offsets gets a deterministic split), and `queue_wait_p99` the
    /// scheduler's live queue-wait quantile in seconds, used as the
    /// queue-full retry hint when available.
    pub fn admit(
        &self,
        tenant: &str,
        queue_depth: u64,
        now: Duration,
        queue_wait_p99: Option<f64>,
    ) -> Result<(), u64> {
        if self.max_queue > 0 && queue_depth >= self.max_queue as u64 {
            let hint = queue_wait_p99
                .filter(|s| s.is_finite() && *s > 0.0)
                .map(|s| (s * 1e3).ceil() as u64)
                .unwrap_or(DEFAULT_RETRY_MS);
            return Err(hint.clamp(1, MAX_RETRY_MS));
        }
        let Some(quota) = self.quota else {
            return Ok(());
        };
        let mut buckets = self.buckets.lock();
        let bucket = bucket_entry(&mut buckets, tenant, quota, now);
        // Refill for the time elapsed since this tenant's last decision;
        // a non-monotone `now` (clock skew between connections) refills
        // nothing rather than going negative.
        let elapsed = now.saturating_sub(bucket.last);
        bucket.tokens = (bucket.tokens + quota.rate * elapsed.as_secs_f64()).min(quota.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait_secs = (1.0 - bucket.tokens) / quota.rate;
            let hint = (wait_secs * 1e3).ceil() as u64;
            Err(hint.clamp(1, MAX_RETRY_MS))
        }
    }
}

fn bucket_entry<'a>(
    buckets: &'a mut HashMap<String, Bucket>,
    tenant: &str,
    quota: QuotaConfig,
    now: Duration,
) -> &'a mut Bucket {
    if !buckets.contains_key(tenant) {
        // A tenant's first query finds a full bucket.
        buckets.insert(
            tenant.to_string(),
            Bucket {
                tokens: quota.burst,
                last: now,
            },
        );
    }
    buckets.get_mut(tenant).expect("bucket just ensured")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(rate: f64, burst: f64) -> Option<QuotaConfig> {
        Some(QuotaConfig { rate, burst })
    }

    #[test]
    fn unbounded_controller_admits_everything() {
        let c = AdmissionController::new(0, None);
        assert!(!c.is_enabled());
        for i in 0..1000u64 {
            assert_eq!(c.admit("t", i * 10, Duration::from_millis(i), None), Ok(()));
        }
    }

    #[test]
    fn queue_depth_bound_rejects_at_the_boundary() {
        let c = AdmissionController::new(8, None);
        assert!(c.is_enabled());
        assert_eq!(c.admit("t", 7, Duration::ZERO, None), Ok(()));
        assert_eq!(
            c.admit("t", 8, Duration::ZERO, None),
            Err(DEFAULT_RETRY_MS),
            "depth == max_queue must reject"
        );
        // The live queue-wait p99 becomes the hint, in whole ms.
        assert_eq!(c.admit("t", 8, Duration::ZERO, Some(0.0371)), Err(38));
        // ... clamped so a long tail cannot banish clients.
        assert_eq!(
            c.admit("t", 8, Duration::ZERO, Some(120.0)),
            Err(MAX_RETRY_MS)
        );
    }

    #[test]
    fn token_bucket_spends_burst_then_meters_by_rate() {
        // 10 tokens/s, burst 3: three immediate admits, then a rejection
        // whose hint is the exact refill time.
        let c = AdmissionController::new(0, quota(10.0, 3.0));
        let t0 = Duration::ZERO;
        for _ in 0..3 {
            assert_eq!(c.admit("a", 0, t0, None), Ok(()));
        }
        assert_eq!(
            c.admit("a", 0, t0, None),
            Err(100),
            "empty bucket waits 1/rate"
        );
        // 100 ms later exactly one token has refilled.
        let t1 = Duration::from_millis(100);
        assert_eq!(c.admit("a", 0, t1, None), Ok(()));
        assert!(c.admit("a", 0, t1, None).is_err());
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let c = AdmissionController::new(0, quota(1.0, 1.0));
        assert_eq!(c.admit("a", 0, Duration::ZERO, None), Ok(()));
        assert!(c.admit("a", 0, Duration::ZERO, None).is_err());
        assert_eq!(
            c.admit("b", 0, Duration::ZERO, None),
            Ok(()),
            "tenant b starts with its own full bucket"
        );
    }

    #[test]
    fn same_offered_sequence_same_split() {
        // The determinism contract: identical logical-clock sequences
        // produce identical admit/reject decisions.
        let offered: Vec<(String, Duration)> = (0..200)
            .map(|i| {
                (
                    format!("t{}", i % 3),
                    Duration::from_micros(i as u64 * 1_700),
                )
            })
            .collect();
        let run = || {
            let c = AdmissionController::new(0, quota(50.0, 4.0));
            offered
                .iter()
                .map(|(tenant, at)| c.admit(tenant, 0, *at, None).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|ok| *ok), "some admitted");
        assert!(a.iter().any(|ok| !*ok), "some rejected at this rate");
    }

    #[test]
    fn non_monotone_clock_never_refills_backwards() {
        let c = AdmissionController::new(0, quota(10.0, 1.0));
        assert_eq!(c.admit("a", 0, Duration::from_secs(10), None), Ok(()));
        // An earlier timestamp from another connection must not mint
        // tokens (elapsed saturates to zero).
        assert!(c.admit("a", 0, Duration::from_secs(5), None).is_err());
    }
}

//! The thread-per-connection TCP frontend over `std::net`.
//!
//! Every accepted connection gets its own handler thread; all of them
//! feed the shared [`Dispatcher`] (collection resolution, admission,
//! admin opcodes) and block on their query's reply channel. The
//! event-loop frontend in `mq-front` serves the same [`Dispatcher`]
//! contract without per-connection threads — the two are interchangeable
//! and answer bit-identically.

use crate::config::ServerConfig;
use crate::dispatch::Dispatcher;
use crate::protocol::{read_message, write_message, Message, ProtocolError, VERSION};
use crate::registry::CollectionRegistry;
use crate::scheduler::QueryBackend;
use mq_obs::Recorder;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running query server. Dropping it (or calling
/// [`shutdown`](QueryServer::shutdown)) stops accepting, joins the accept
/// thread, and lets the schedulers drain.
pub struct QueryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    dispatcher: Arc<Dispatcher>,
    recorder: Recorder,
}

impl QueryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `backend` as the default collection with the given configuration.
    /// No recorder: a `MetricsRequest` gets an empty reply. Use
    /// [`bind_with_recorder`](Self::bind_with_recorder) for a live
    /// metrics endpoint.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_recorder(addr, backend, config, &Recorder::disabled())
    }

    /// [`bind`](Self::bind) with an observability [`Recorder`]: the
    /// scheduler's batch/queue instruments register on it, and the `STATS`
    /// (`MetricsRequest`) opcode serves its registry's text exposition.
    /// The backend should have been built against the *same* recorder
    /// (e.g. via [`crate::scheduler::build_backend_with_recorder`]) so one
    /// scrape covers every layer.
    pub fn bind_with_recorder(
        addr: impl ToSocketAddrs,
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> std::io::Result<Self> {
        let registry = Arc::new(CollectionRegistry::new(backend, config, recorder));
        Self::bind_registry(addr, registry, config, recorder)
    }

    /// Binds over an existing [`CollectionRegistry`] — the multi-tenant
    /// entry point, and the one the equivalence tests share with the
    /// event-loop frontend.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<CollectionRegistry>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let dispatcher = Arc::new(Dispatcher::new(registry, config, recorder));
        let shutdown = Arc::new(AtomicBool::new(false));
        let read_timeout = config.read_timeout;

        let accept_dispatcher = Arc::clone(&dispatcher);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread =
            std::thread::Builder::new()
                .name("mq-accept".into())
                .spawn(move || {
                    accept_loop(listener, accept_dispatcher, accept_shutdown, read_timeout)
                })?;

        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            dispatcher,
            recorder: recorder.clone(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the default collection's aggregate service counters
    /// (what single-collection deployments have always seen).
    pub fn metrics(&self) -> crate::protocol::ServiceMetrics {
        self.dispatcher.registry().default_metrics()
    }

    /// The server's named collections.
    pub fn registry(&self) -> &Arc<CollectionRegistry> {
        self.dispatcher.registry()
    }

    /// The server's recorder (disabled unless bound with
    /// [`bind_with_recorder`](Self::bind_with_recorder)).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The metric registry rendered as Prometheus text exposition — what
    /// a `MetricsRequest` over the wire returns. Empty without a recorder.
    pub fn render_metrics(&self) -> String {
        self.recorder.render()
    }

    /// Queries accepted by any collection's scheduler but not yet
    /// answered (queued, collecting into a batch, or executing).
    pub fn in_flight(&self) -> u64 {
        self.dispatcher.registry().total_in_flight()
    }

    /// Waits until no collection has in-flight work (every submitted
    /// query answered or dropped), polling up to `timeout`. Returns
    /// whether the queues drained in time.
    ///
    /// This is the clean end of a load run: clients stop sending, the
    /// harness calls `drain`, and only then scrapes final metrics or
    /// shuts the server down — so no batch is still flushing while the
    /// after-run snapshot is taken.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        self.dispatcher.registry().drain(timeout)
    }

    /// Stops accepting connections and joins the accept thread.
    /// Connections already open finish their in-flight requests.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    dispatcher: Arc<Dispatcher>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Option<std::time::Duration>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_dispatcher = Arc::clone(&dispatcher);
        // Connection handlers are detached: each one exits when its client
        // hangs up, and holds only an Arc on the dispatcher.
        let _ = std::thread::Builder::new()
            .name("mq-conn".into())
            .spawn(move || handle_connection(stream, conn_dispatcher, read_timeout));
    }
}

fn handle_connection(
    mut stream: TcpStream,
    dispatcher: Arc<Dispatcher>,
    read_timeout: Option<std::time::Duration>,
) {
    let _ = stream.set_nodelay(true);
    // A client that stalls mid-frame is disconnected after the timeout
    // instead of holding its handler thread hostage forever.
    let _ = stream.set_read_timeout(read_timeout);
    loop {
        let request = match read_message(&mut stream) {
            Ok(msg) => msg,
            // Clean disconnect or garbage: either way this connection is
            // done. Try to tell the client about protocol errors.
            Err(ProtocolError::Io(_)) => return,
            Err(ProtocolError::BadVersion(client)) => {
                // A v2 client gets a typed mismatch (which its own decoder
                // reports as *its* version error — explicit both ways)
                // instead of a free-text excuse.
                let _ = write_message(
                    &mut stream,
                    &Message::VersionMismatch {
                        server: VERSION,
                        client,
                    },
                );
                return;
            }
            Err(e) => {
                let _ = write_message(&mut stream, &Message::Error(e.to_string()));
                return;
            }
        };
        let response = match dispatcher.dispatch(request) {
            Ok(reply) => reply,
            Err(admitted) => {
                let reply_rx = admitted
                    .collection
                    .scheduler()
                    .submit(admitted.object, admitted.qtype);
                Dispatcher::reply_for(reply_rx.recv().ok())
            }
        };
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}

//! The TCP frontend: thread-per-connection over `std::net`, all
//! connections feeding one [`BatchScheduler`].

use crate::config::ServerConfig;
use crate::protocol::{read_message, write_message, Message, ProtocolError};
use crate::scheduler::{BatchScheduler, QueryBackend};
use mq_obs::Recorder;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running query server. Dropping it (or calling
/// [`shutdown`](QueryServer::shutdown)) stops accepting, joins the accept
/// thread, and lets the scheduler drain.
pub struct QueryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scheduler: Arc<BatchScheduler>,
    recorder: Recorder,
}

impl QueryServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `backend` with the given batching configuration. No recorder: a
    /// `MetricsRequest` gets an empty reply. Use
    /// [`bind_with_recorder`](Self::bind_with_recorder) for a live
    /// metrics endpoint.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_recorder(addr, backend, config, &Recorder::disabled())
    }

    /// [`bind`](Self::bind) with an observability [`Recorder`]: the
    /// scheduler's batch/queue instruments register on it, and the `STATS`
    /// (`MetricsRequest`) opcode serves its registry's text exposition.
    /// The backend should have been built against the *same* recorder
    /// (e.g. via [`crate::scheduler::build_backend_with_recorder`]) so one
    /// scrape covers every layer.
    pub fn bind_with_recorder(
        addr: impl ToSocketAddrs,
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let scheduler = Arc::new(BatchScheduler::start_with_recorder(
            backend, config, recorder,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let read_timeout = config.read_timeout;

        let accept_scheduler = Arc::clone(&scheduler);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_recorder = recorder.clone();
        let accept_thread =
            std::thread::Builder::new()
                .name("mq-accept".into())
                .spawn(move || {
                    accept_loop(
                        listener,
                        accept_scheduler,
                        accept_shutdown,
                        read_timeout,
                        accept_recorder,
                    )
                })?;

        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            scheduler,
            recorder: recorder.clone(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the aggregate service counters.
    pub fn metrics(&self) -> crate::protocol::ServiceMetrics {
        self.scheduler.metrics()
    }

    /// The server's recorder (disabled unless bound with
    /// [`bind_with_recorder`](Self::bind_with_recorder)).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The metric registry rendered as Prometheus text exposition — what
    /// a `MetricsRequest` over the wire returns. Empty without a recorder.
    pub fn render_metrics(&self) -> String {
        self.recorder.render()
    }

    /// Queries accepted by the scheduler but not yet answered (queued,
    /// collecting into a batch, or executing).
    pub fn in_flight(&self) -> u64 {
        self.scheduler.in_flight()
    }

    /// Waits until the scheduler has no in-flight work (every submitted
    /// query answered or dropped), polling up to `timeout`. Returns
    /// whether the queue drained in time.
    ///
    /// This is the clean end of a load run: clients stop sending, the
    /// harness calls `drain`, and only then scrapes final metrics or
    /// shuts the server down — so no batch is still flushing while the
    /// after-run snapshot is taken.
    pub fn drain(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.scheduler.in_flight() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }

    /// Stops accepting connections and joins the accept thread.
    /// Connections already open finish their in-flight requests.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    scheduler: Arc<BatchScheduler>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Option<std::time::Duration>,
    recorder: Recorder,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_scheduler = Arc::clone(&scheduler);
        let conn_recorder = recorder.clone();
        // Connection handlers are detached: each one exits when its client
        // hangs up, and holds only an Arc on the scheduler.
        let _ = std::thread::Builder::new()
            .name("mq-conn".into())
            .spawn(move || handle_connection(stream, conn_scheduler, read_timeout, conn_recorder));
    }
}

fn handle_connection(
    mut stream: TcpStream,
    scheduler: Arc<BatchScheduler>,
    read_timeout: Option<std::time::Duration>,
    recorder: Recorder,
) {
    let _ = stream.set_nodelay(true);
    // A client that stalls mid-frame is disconnected after the timeout
    // instead of holding its handler thread hostage forever.
    let _ = stream.set_read_timeout(read_timeout);
    loop {
        let request = match read_message(&mut stream) {
            Ok(msg) => msg,
            // Clean disconnect or garbage: either way this connection is
            // done. Try to tell the client about protocol errors.
            Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                let _ = write_message(&mut stream, &Message::Error(e.to_string()));
                return;
            }
        };
        let response = match request {
            Message::Query { object, qtype } => {
                let expected = scheduler.dimensions();
                if expected != 0 && object.dim() != expected {
                    // Reject up front: a mismatched vector must never reach
                    // a batch that carries other clients' queries. The
                    // connection stays open for corrected retries.
                    Message::Error(format!(
                        "dimension mismatch: query vector has {} components, \
                         database objects have {expected}",
                        object.dim()
                    ))
                } else {
                    let reply_rx = scheduler.submit(object, qtype);
                    match reply_rx.recv() {
                        Ok(reply) => Message::Answers {
                            batch_id: reply.batch_id,
                            batch_size: reply.batch_size,
                            stats: reply.stats,
                            answers: reply.answers,
                        },
                        Err(_) => {
                            Message::Error("query batch failed or scheduler shut down".into())
                        }
                    }
                }
            }
            Message::Stats => Message::StatsReply(scheduler.metrics()),
            Message::MetricsRequest => Message::MetricsReply(recorder.render()),
            other => Message::Error(format!("unexpected client message: {other:?}")),
        };
        if write_message(&mut stream, &response).is_err() {
            return;
        }
    }
}

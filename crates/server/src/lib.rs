//! mq-server: an online similarity-query service that turns concurrent
//! client traffic into multiple similarity queries.
//!
//! The paper batches m queries that arrive *together* (classification, data
//! mining, prefetching — §3). This crate supplies the missing online half:
//! a TCP server whose clients each send ordinary single queries, and whose
//! [`BatchScheduler`] merges whatever arrived within a short window into
//! one `multiple_similarity_query` batch. Concurrent traffic then enjoys
//! the paper's §5.1 page-read sharing and §5.2 distance-calculation
//! avoidance without any client-side coordination.
//!
//! Layers:
//!
//! - [`protocol`] — length-prefixed binary frames (requests, answers,
//!   service counters) in the same `bytes` codec style as
//!   `mq_storage::persist`.
//! - [`scheduler`] — the batching scheduler: one queue, one worker,
//!   flush on `max_batch` or `max_wait`, backends for a single engine
//!   (§5.1–5.2) or a shared-nothing cluster (§5.3).
//! - [`registry`] — named collections, each owning its own scheduler,
//!   metric, index and (optionally durable) store.
//! - [`admission`] — bounded queue depth and per-tenant token buckets
//!   between decode and scheduling; overload becomes a typed reply.
//! - [`dispatch`] — the frontend-agnostic request logic both frontends
//!   share (this crate's thread-per-connection loop and `mq-front`'s
//!   event loop answer bit-identically because of it).
//! - [`service`] — the `std::net` TCP frontend, thread-per-connection.
//! - [`client`] — a small blocking client library.
//! - [`config`] — the tuning knobs.
//!
//! ```no_run
//! use mq_server::{Client, QueryServer, ServerConfig, SingleEngineBackend};
//! use mq_core::QueryType;
//! use mq_index::LinearScan;
//! use mq_metric::Vector;
//! use mq_storage::{Dataset, PagedDatabase};
//!
//! let ds = Dataset::new((0..1000).map(|i| Vector::new(vec![i as f32])).collect());
//! let db = PagedDatabase::pack(&ds, Default::default());
//! let scan = LinearScan::new(db.page_count());
//! let backend = SingleEngineBackend::new(db, Box::new(scan), 0.10, true);
//!
//! let server = QueryServer::bind("127.0.0.1:0", Box::new(backend), &ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.query(&Vector::new(vec![42.0]), &QueryType::knn(3))?;
//! assert_eq!(reply.answers.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admission;
pub mod client;
pub mod config;
pub mod dispatch;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod service;

pub use admission::AdmissionController;
pub use client::{Client, ClientError, RemoteAnswers, RetryConfig, RetryingClient};
pub use config::{ExecutionMode, FileIndex, QuotaConfig, ServerConfig, StoreChoice};
pub use dispatch::{AdmittedQuery, Dispatcher};
pub use protocol::{
    refusal, CollectionInfo, Message, ProtocolError, ServiceMetrics, DEFAULT_COLLECTION,
};
pub use registry::{Collection, CollectionRegistry};
pub use scheduler::{
    build_backend, build_backend_with_recorder, BatchScheduler, ClusterBackend, QueryBackend,
    QueryReply, SingleEngineBackend,
};
pub use service::QueryServer;

//! The wire protocol: length-prefixed binary frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! MQNW | version:u16 LE | payload_len:u32 LE | payload
//! ```
//!
//! The payload starts with a one-byte message kind followed by the
//! kind-specific fields, all little-endian (the same `bytes`-based codec
//! style as `mq_storage::persist`):
//!
//! ```text
//! 0x01 Query        object(dim:u32, dim × f32), qtype(kind:u8, range:f64, cardinality:u64),
//!                   collection:str16, tenant:str16
//! 0x02 Stats        collection:str16 (empty = aggregate over all collections)
//! 0x03 Metrics      collection:str16 (empty = the whole registry)
//! 0x04 CreateCollection  name:str16, dim:u32, metric:str16, source:str16 (empty = start empty)
//! 0x05 DropCollection    name:str16
//! 0x06 ListCollections   (empty)
//! 0x81 Answers      batch_id:u64, batch_size:u32, stats(12 × u64), count:u32, count × (id:u32, distance:f64)
//! 0x82 StatsReply   queries:u64, batches:u64, max_batch_size:u32, totals(12 × u64)
//! 0x83 MetricsReply len:u32, len × utf-8 bytes (Prometheus text exposition)
//! 0x84 CollectionList    count:u32, count × (name:str16, dim:u32, metric:str16, objects:u64, in_flight:u64)
//! 0x85 Ack          str16 (human-readable confirmation)
//! 0x86 Refused      code:u16, detail:str16 (typed collection-level refusal)
//! 0x87 Overloaded   retry_after_ms:u64 (admission control shed this request)
//! 0xFE VersionMismatch   server:u16, client:u16
//! 0xFF Error        len:u32, len × utf-8 bytes
//! ```
//!
//! `str16` is `len:u16` + UTF-8 bytes. `ExecutionStats` is fixed-width:
//! the seven `IoStats` counters (including the prefetch pair added in
//! version 2), the distance-calculation count, the three avoidance
//! counters, and the elapsed time in nanoseconds — twelve `u64`s.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mq_core::{Answer, AvoidanceStats, ExecutionStats, QueryKind, QueryType};
use mq_metric::{ObjectId, Vector};
use mq_storage::IoStats;
use std::io::{Read, Write};
use std::time::Duration;

/// Frame magic: "mquery network".
pub const MAGIC: &[u8; 4] = b"MQNW";
/// Protocol version carried in every frame. Version 2 widened the stats
/// block from ten to twelve `u64`s (prefetch counters); version 3 added
/// named collections, per-tenant addressing, admission-control replies
/// (`Overloaded`, `Refused`) and the typed `VersionMismatch` reply a
/// mismatched client receives instead of a silent disconnect.
pub const VERSION: u16 = 3;
/// The collection a query addresses when its collection field is empty.
pub const DEFAULT_COLLECTION: &str = "default";
/// Bytes of frame header preceding the payload.
pub const HEADER_LEN: usize = 10;
/// Upper bound on payload size; larger length prefixes are rejected as
/// malformed rather than allocated.
pub const MAX_PAYLOAD: usize = 64 << 20;

const KIND_QUERY: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_METRICS: u8 = 0x03;
const KIND_CREATE_COLLECTION: u8 = 0x04;
const KIND_DROP_COLLECTION: u8 = 0x05;
const KIND_LIST_COLLECTIONS: u8 = 0x06;
const KIND_ANSWERS: u8 = 0x81;
const KIND_STATS_REPLY: u8 = 0x82;
const KIND_METRICS_REPLY: u8 = 0x83;
const KIND_COLLECTION_LIST: u8 = 0x84;
const KIND_ACK: u8 = 0x85;
const KIND_REFUSED: u8 = 0x86;
const KIND_OVERLOADED: u8 = 0x87;
const KIND_VERSION_MISMATCH: u8 = 0xFE;
const KIND_ERROR: u8 = 0xFF;

/// Typed refusal codes carried by [`Message::Refused`].
pub mod refusal {
    /// The addressed collection does not exist.
    pub const UNKNOWN_COLLECTION: u16 = 1;
    /// A collection of that name already exists.
    pub const COLLECTION_EXISTS: u16 = 2;
    /// The collection has in-flight queries; dropping it now would lose
    /// replies. Retry once traffic stops.
    pub const COLLECTION_BUSY: u16 = 3;
    /// The collection specification is invalid (bad name, zero
    /// dimension, unknown metric, unreadable source).
    pub const BAD_COLLECTION_SPEC: u16 = 4;
    /// The server cannot honor the operation in its current mode (e.g.
    /// dynamic collections on a cluster backend).
    pub const UNSUPPORTED: u16 = 5;
}

/// Errors from encoding, decoding or transporting frames.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/stream failure (includes clean EOF between
    /// frames, surfaced as `UnexpectedEof`).
    Io(std::io::Error),
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's version differs from [`VERSION`].
    BadVersion(u16),
    /// The buffer ends before the advertised frame does.
    Truncated,
    /// The payload's message kind byte is unknown.
    UnknownKind(u8),
    /// The payload violates the message grammar.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            ProtocolError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Aggregate service counters reported by a stats request.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServiceMetrics {
    /// Queries answered since startup.
    pub queries: u64,
    /// Batches flushed since startup.
    pub batches: u64,
    /// Largest batch flushed so far.
    pub max_batch_size: u32,
    /// Summed execution statistics over all batches.
    pub totals: ExecutionStats,
}

/// One collection's directory entry in a [`Message::CollectionList`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectionInfo {
    /// The collection's name.
    pub name: String,
    /// Dimensionality its queries must carry (0 = not yet known).
    pub dim: u32,
    /// Distance metric name (see `mq_metric::VectorMetric::NAMES`).
    pub metric: String,
    /// Objects currently served.
    pub objects: u64,
    /// Queries admitted but not yet answered.
    pub in_flight: u64,
}

/// Every message of the protocol — requests (client → server) and
/// responses (server → client) share one codec.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Submit one similarity query for batched execution.
    Query {
        /// The query object.
        object: Vector,
        /// The query type (Definitions 1–3).
        qtype: QueryType,
        /// Addressed collection (empty = [`DEFAULT_COLLECTION`]).
        collection: String,
        /// Tenant identity for quota accounting (empty = anonymous).
        tenant: String,
    },
    /// Ask for the service counters of one collection (empty name =
    /// aggregate over all collections).
    Stats {
        /// Collection filter (empty = aggregate).
        collection: String,
    },
    /// Ask for the metric registry in Prometheus text exposition (empty
    /// name = the whole registry; a collection name keeps only series
    /// labeled with it).
    MetricsRequest {
        /// Collection filter (empty = everything).
        collection: String,
    },
    /// Create a named collection.
    CreateCollection {
        /// New collection's name.
        name: String,
        /// Dimensionality its queries will carry (may be 0 with a
        /// `source`, which then supplies the dimension).
        dim: u32,
        /// Distance metric name.
        metric: String,
        /// Server-side `.mqdb` file to load the initial objects from
        /// (empty = start empty).
        source: String,
    },
    /// Drop a named collection. Refused while it has in-flight queries.
    DropCollection {
        /// Collection to drop.
        name: String,
    },
    /// Ask for the collection directory.
    ListCollections,
    /// The answers of one query, with its batch's execution statistics.
    Answers {
        /// Identifier of the batch that carried this query.
        batch_id: u64,
        /// Queries in that batch.
        batch_size: u32,
        /// Execution statistics of the whole batch (shared by all its
        /// queries — the point of batching).
        stats: ExecutionStats,
        /// The answers, ascending by distance.
        answers: Vec<Answer>,
    },
    /// The aggregate service counters.
    StatsReply(ServiceMetrics),
    /// The metric registry rendered as Prometheus text exposition. Empty
    /// when the server runs without an attached recorder.
    MetricsReply(String),
    /// The collection directory.
    CollectionList(Vec<CollectionInfo>),
    /// A collection operation succeeded.
    Ack(String),
    /// A typed refusal of a collection operation (see [`refusal`]).
    Refused {
        /// One of the [`refusal`] codes.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Admission control shed this request instead of queueing it; the
    /// client should back off for `retry_after_ms` before resubmitting.
    Overloaded {
        /// Suggested backoff, derived from the server's observed
        /// queue-wait distribution or the tenant's token deficit.
        retry_after_ms: u64,
    },
    /// The peer speaks a different protocol version. Sent by the server
    /// when a frame arrives with a version other than [`VERSION`]; a
    /// version-2 client decoding this frame surfaces its own typed
    /// `BadVersion(3)` — either way the mismatch is explicit.
    VersionMismatch {
        /// The version the server speaks.
        server: u16,
        /// The version the client sent.
        client: u16,
    },
    /// The server could not process a request.
    Error(String),
}

fn put_str16(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "str16 field too long");
    buf.put_u16_le(s.len().min(u16::MAX as usize) as u16);
    buf.put_slice(&s.as_bytes()[..s.len().min(u16::MAX as usize)]);
}

fn get_str16(buf: &mut Bytes) -> Result<String, ProtocolError> {
    need(buf, 2)?;
    let len = buf.get_u16_le() as usize;
    need(buf, len)?;
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ProtocolError::Malformed("non-utf8 string field".into()))
}

fn put_qtype(buf: &mut BytesMut, t: &QueryType) {
    buf.put_u8(match t.kind {
        QueryKind::Range => 0,
        QueryKind::KNearestNeighbor => 1,
        QueryKind::BoundedKNearestNeighbor => 2,
    });
    buf.put_f64_le(t.range);
    buf.put_u64_le(if t.cardinality == usize::MAX {
        u64::MAX
    } else {
        t.cardinality as u64
    });
}

fn put_stats(buf: &mut BytesMut, s: &ExecutionStats) {
    buf.put_u64_le(s.io.logical_reads);
    buf.put_u64_le(s.io.buffer_hits);
    buf.put_u64_le(s.io.physical_reads);
    buf.put_u64_le(s.io.random_reads);
    buf.put_u64_le(s.io.sequential_reads);
    buf.put_u64_le(s.io.prefetch_reads);
    buf.put_u64_le(s.io.prefetched_hits);
    buf.put_u64_le(s.dist_calcs);
    buf.put_u64_le(s.avoidance.tries);
    buf.put_u64_le(s.avoidance.avoided);
    buf.put_u64_le(s.avoidance.computed);
    buf.put_u64_le(s.elapsed.as_nanos().min(u64::MAX as u128) as u64);
}

fn need(buf: &Bytes, n: usize) -> Result<(), ProtocolError> {
    if buf.remaining() < n {
        Err(ProtocolError::Truncated)
    } else {
        Ok(())
    }
}

fn get_vector(buf: &mut Bytes) -> Result<Vector, ProtocolError> {
    need(buf, 4)?;
    let dim = buf.get_u32_le() as usize;
    if dim == 0 {
        return Err(ProtocolError::Malformed("zero-dimensional vector".into()));
    }
    need(buf, dim * 4)?;
    let mut components = Vec::with_capacity(dim);
    for _ in 0..dim {
        let c = buf.get_f32_le();
        if !c.is_finite() {
            return Err(ProtocolError::Malformed("non-finite component".into()));
        }
        components.push(c);
    }
    Ok(Vector::new(components))
}

fn get_qtype(buf: &mut Bytes) -> Result<QueryType, ProtocolError> {
    need(buf, 1 + 8 + 8)?;
    let kind = buf.get_u8();
    let range = buf.get_f64_le();
    let cardinality = buf.get_u64_le();
    let cardinality = if cardinality == u64::MAX {
        usize::MAX
    } else {
        usize::try_from(cardinality)
            .map_err(|_| ProtocolError::Malformed("cardinality overflows usize".into()))?
    };
    // Negative ranges are valid: under a signed ranking function (dot
    // product) a range query "score at least s" arrives as ε = -s. Only
    // NaN is meaningless (mirrors QueryType::range's own contract).
    if range.is_nan() {
        return Err(ProtocolError::Malformed("NaN range".into()));
    }
    let kind = match kind {
        0 => QueryKind::Range,
        1 => QueryKind::KNearestNeighbor,
        2 => QueryKind::BoundedKNearestNeighbor,
        other => {
            return Err(ProtocolError::Malformed(format!(
                "unknown query kind {other}"
            )))
        }
    };
    if kind != QueryKind::Range && cardinality == 0 {
        return Err(ProtocolError::Malformed("zero cardinality".into()));
    }
    Ok(QueryType {
        range,
        cardinality,
        kind,
    })
}

fn get_stats(buf: &mut Bytes) -> Result<ExecutionStats, ProtocolError> {
    need(buf, 12 * 8)?;
    Ok(ExecutionStats {
        io: IoStats {
            logical_reads: buf.get_u64_le(),
            buffer_hits: buf.get_u64_le(),
            physical_reads: buf.get_u64_le(),
            random_reads: buf.get_u64_le(),
            sequential_reads: buf.get_u64_le(),
            prefetch_reads: buf.get_u64_le(),
            prefetched_hits: buf.get_u64_le(),
        },
        dist_calcs: buf.get_u64_le(),
        avoidance: AvoidanceStats {
            tries: buf.get_u64_le(),
            avoided: buf.get_u64_le(),
            computed: buf.get_u64_le(),
        },
        elapsed: Duration::from_nanos(buf.get_u64_le()),
    })
}

impl Message {
    /// Encodes this message as one complete frame (header + payload).
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        match self {
            Message::Query {
                object,
                qtype,
                collection,
                tenant,
            } => {
                payload.put_u8(KIND_QUERY);
                payload.put_u32_le(object.dim() as u32);
                for &c in object.components() {
                    payload.put_f32_le(c);
                }
                put_qtype(&mut payload, qtype);
                put_str16(&mut payload, collection);
                put_str16(&mut payload, tenant);
            }
            Message::Stats { collection } => {
                payload.put_u8(KIND_STATS);
                put_str16(&mut payload, collection);
            }
            Message::MetricsRequest { collection } => {
                payload.put_u8(KIND_METRICS);
                put_str16(&mut payload, collection);
            }
            Message::CreateCollection {
                name,
                dim,
                metric,
                source,
            } => {
                payload.put_u8(KIND_CREATE_COLLECTION);
                put_str16(&mut payload, name);
                payload.put_u32_le(*dim);
                put_str16(&mut payload, metric);
                put_str16(&mut payload, source);
            }
            Message::DropCollection { name } => {
                payload.put_u8(KIND_DROP_COLLECTION);
                put_str16(&mut payload, name);
            }
            Message::ListCollections => payload.put_u8(KIND_LIST_COLLECTIONS),
            Message::CollectionList(infos) => {
                payload.put_u8(KIND_COLLECTION_LIST);
                payload.put_u32_le(infos.len() as u32);
                for info in infos {
                    put_str16(&mut payload, &info.name);
                    payload.put_u32_le(info.dim);
                    put_str16(&mut payload, &info.metric);
                    payload.put_u64_le(info.objects);
                    payload.put_u64_le(info.in_flight);
                }
            }
            Message::Ack(text) => {
                payload.put_u8(KIND_ACK);
                put_str16(&mut payload, text);
            }
            Message::Refused { code, detail } => {
                payload.put_u8(KIND_REFUSED);
                payload.put_u16_le(*code);
                put_str16(&mut payload, detail);
            }
            Message::Overloaded { retry_after_ms } => {
                payload.put_u8(KIND_OVERLOADED);
                payload.put_u64_le(*retry_after_ms);
            }
            Message::VersionMismatch { server, client } => {
                payload.put_u8(KIND_VERSION_MISMATCH);
                payload.put_u16_le(*server);
                payload.put_u16_le(*client);
            }
            Message::MetricsReply(text) => {
                payload.put_u8(KIND_METRICS_REPLY);
                payload.put_u32_le(text.len() as u32);
                payload.put_slice(text.as_bytes());
            }
            Message::Answers {
                batch_id,
                batch_size,
                stats,
                answers,
            } => {
                payload.put_u8(KIND_ANSWERS);
                payload.put_u64_le(*batch_id);
                payload.put_u32_le(*batch_size);
                put_stats(&mut payload, stats);
                payload.put_u32_le(answers.len() as u32);
                for a in answers {
                    payload.put_u32_le(a.id.0);
                    payload.put_f64_le(a.distance);
                }
            }
            Message::StatsReply(m) => {
                payload.put_u8(KIND_STATS_REPLY);
                payload.put_u64_le(m.queries);
                payload.put_u64_le(m.batches);
                payload.put_u32_le(m.max_batch_size);
                put_stats(&mut payload, &m.totals);
            }
            Message::Error(msg) => {
                payload.put_u8(KIND_ERROR);
                payload.put_u32_le(msg.len() as u32);
                payload.put_slice(msg.as_bytes());
            }
        }
        let mut frame = BytesMut::new();
        frame.put_slice(MAGIC);
        frame.put_u16_le(VERSION);
        frame.put_u32_le(payload.len() as u32);
        frame.put_slice(&payload);
        frame.freeze()
    }

    /// Decodes one frame from the front of `bytes`; returns the message
    /// and the number of bytes the frame occupied.
    pub fn decode(bytes: &[u8]) -> Result<(Message, usize), ProtocolError> {
        if bytes.len() < HEADER_LEN {
            // Distinguish "wrong protocol" from "not enough bytes yet":
            // a bad magic is reported as soon as the first bytes disagree.
            let lim = bytes.len().min(MAGIC.len());
            if bytes[..lim] != MAGIC[..lim] {
                let mut m = [0u8; 4];
                m[..lim].copy_from_slice(&bytes[..lim]);
                return Err(ProtocolError::BadMagic(m));
            }
            return Err(ProtocolError::Truncated);
        }
        let mut buf = Bytes::from(bytes[..HEADER_LEN].to_vec());
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ProtocolError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(ProtocolError::BadVersion(version));
        }
        let len = buf.get_u32_le() as usize;
        if len > MAX_PAYLOAD {
            return Err(ProtocolError::Malformed(format!(
                "payload of {len} bytes exceeds limit"
            )));
        }
        if bytes.len() < HEADER_LEN + len {
            return Err(ProtocolError::Truncated);
        }
        let mut payload = Bytes::from(bytes[HEADER_LEN..HEADER_LEN + len].to_vec());
        let msg = Self::decode_payload(&mut payload)?;
        if payload.has_remaining() {
            return Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after message",
                payload.remaining()
            )));
        }
        Ok((msg, HEADER_LEN + len))
    }

    fn decode_payload(buf: &mut Bytes) -> Result<Message, ProtocolError> {
        need(buf, 1)?;
        match buf.get_u8() {
            KIND_QUERY => {
                let object = get_vector(buf)?;
                let qtype = get_qtype(buf)?;
                let collection = get_str16(buf)?;
                let tenant = get_str16(buf)?;
                Ok(Message::Query {
                    object,
                    qtype,
                    collection,
                    tenant,
                })
            }
            KIND_STATS => Ok(Message::Stats {
                collection: get_str16(buf)?,
            }),
            KIND_METRICS => Ok(Message::MetricsRequest {
                collection: get_str16(buf)?,
            }),
            KIND_CREATE_COLLECTION => {
                let name = get_str16(buf)?;
                need(buf, 4)?;
                let dim = buf.get_u32_le();
                let metric = get_str16(buf)?;
                let source = get_str16(buf)?;
                Ok(Message::CreateCollection {
                    name,
                    dim,
                    metric,
                    source,
                })
            }
            KIND_DROP_COLLECTION => Ok(Message::DropCollection {
                name: get_str16(buf)?,
            }),
            KIND_LIST_COLLECTIONS => Ok(Message::ListCollections),
            KIND_COLLECTION_LIST => {
                need(buf, 4)?;
                let count = buf.get_u32_le() as usize;
                // Each entry is at least 2+4+2+8+8 bytes; bound the
                // allocation by what the buffer can actually hold.
                if count > buf.remaining() / 24 {
                    return Err(ProtocolError::Truncated);
                }
                let mut infos = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = get_str16(buf)?;
                    need(buf, 4)?;
                    let dim = buf.get_u32_le();
                    let metric = get_str16(buf)?;
                    need(buf, 16)?;
                    let objects = buf.get_u64_le();
                    let in_flight = buf.get_u64_le();
                    infos.push(CollectionInfo {
                        name,
                        dim,
                        metric,
                        objects,
                        in_flight,
                    });
                }
                Ok(Message::CollectionList(infos))
            }
            KIND_ACK => Ok(Message::Ack(get_str16(buf)?)),
            KIND_REFUSED => {
                need(buf, 2)?;
                let code = buf.get_u16_le();
                let detail = get_str16(buf)?;
                Ok(Message::Refused { code, detail })
            }
            KIND_OVERLOADED => {
                need(buf, 8)?;
                Ok(Message::Overloaded {
                    retry_after_ms: buf.get_u64_le(),
                })
            }
            KIND_VERSION_MISMATCH => {
                need(buf, 4)?;
                let server = buf.get_u16_le();
                let client = buf.get_u16_le();
                Ok(Message::VersionMismatch { server, client })
            }
            KIND_METRICS_REPLY => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let mut raw = vec![0u8; len];
                buf.copy_to_slice(&mut raw);
                let text = String::from_utf8(raw)
                    .map_err(|_| ProtocolError::Malformed("non-utf8 metrics text".into()))?;
                Ok(Message::MetricsReply(text))
            }
            KIND_ANSWERS => {
                need(buf, 8 + 4)?;
                let batch_id = buf.get_u64_le();
                let batch_size = buf.get_u32_le();
                let stats = get_stats(buf)?;
                need(buf, 4)?;
                let count = buf.get_u32_le() as usize;
                need(buf, count * 12)?;
                let answers = (0..count)
                    .map(|_| {
                        let id = ObjectId(buf.get_u32_le());
                        let distance = buf.get_f64_le();
                        Answer { id, distance }
                    })
                    .collect();
                Ok(Message::Answers {
                    batch_id,
                    batch_size,
                    stats,
                    answers,
                })
            }
            KIND_STATS_REPLY => {
                need(buf, 8 + 8 + 4)?;
                let queries = buf.get_u64_le();
                let batches = buf.get_u64_le();
                let max_batch_size = buf.get_u32_le();
                let totals = get_stats(buf)?;
                Ok(Message::StatsReply(ServiceMetrics {
                    queries,
                    batches,
                    max_batch_size,
                    totals,
                }))
            }
            KIND_ERROR => {
                need(buf, 4)?;
                let len = buf.get_u32_le() as usize;
                need(buf, len)?;
                let mut raw = vec![0u8; len];
                buf.copy_to_slice(&mut raw);
                let msg = String::from_utf8(raw)
                    .map_err(|_| ProtocolError::Malformed("non-utf8 error text".into()))?;
                Ok(Message::Error(msg))
            }
            other => Err(ProtocolError::UnknownKind(other)),
        }
    }
}

/// Writes one message as a frame to `w`.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), ProtocolError> {
    w.write_all(&msg.encode())?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame from `r` and decodes it. Blocks until a whole
/// frame arrived; a connection closed between frames surfaces as
/// `Io(UnexpectedEof)`.
pub fn read_message(r: &mut impl Read) -> Result<Message, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let mut buf = Bytes::from(header.to_vec());
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Malformed(format!(
            "payload of {len} bytes exceeds limit"
        )));
    }
    let mut frame = vec![0u8; HEADER_LEN + len];
    frame[..HEADER_LEN].copy_from_slice(&header);
    r.read_exact(&mut frame[HEADER_LEN..])?;
    let (msg, used) = Message::decode(&frame)?;
    debug_assert_eq!(used, frame.len());
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let msg = Message::Query {
            object: Vector::new(vec![1.5, -2.25, 3.0]),
            qtype: QueryType::bounded_knn(7, 0.5),
            collection: "images".into(),
            tenant: "team-a".into(),
        };
        let frame = msg.encode();
        let (back, used) = Message::decode(&frame).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn collection_messages_roundtrip() {
        for msg in [
            Message::CreateCollection {
                name: "embeddings".into(),
                dim: 32,
                metric: "cosine".into(),
                source: "/data/emb.mqdb".into(),
            },
            Message::DropCollection {
                name: "embeddings".into(),
            },
            Message::ListCollections,
            Message::CollectionList(vec![
                CollectionInfo {
                    name: DEFAULT_COLLECTION.into(),
                    dim: 5,
                    metric: "euclidean".into(),
                    objects: 10_000,
                    in_flight: 3,
                },
                CollectionInfo {
                    name: "emb".into(),
                    dim: 32,
                    metric: "dot".into(),
                    objects: 0,
                    in_flight: 0,
                },
            ]),
            Message::Ack("created".into()),
            Message::Refused {
                code: refusal::COLLECTION_BUSY,
                detail: "2 queries in flight".into(),
            },
            Message::Overloaded { retry_after_ms: 25 },
            Message::VersionMismatch {
                server: 3,
                client: 2,
            },
            Message::Stats {
                collection: "emb".into(),
            },
            Message::MetricsRequest {
                collection: String::new(),
            },
        ] {
            let frame = msg.encode();
            let (back, used) = Message::decode(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn knn_infinite_range_survives() {
        let msg = Message::Query {
            object: Vector::new(vec![0.0]),
            qtype: QueryType::knn(3),
            collection: String::new(),
            tenant: String::new(),
        };
        let (back, _) = Message::decode(&msg.encode()).expect("decode");
        match back {
            Message::Query { qtype, .. } => {
                assert!(qtype.range.is_infinite());
                assert_eq!(qtype.cardinality, 3);
            }
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn answers_roundtrip() {
        let msg = Message::Answers {
            batch_id: 9,
            batch_size: 4,
            stats: ExecutionStats {
                dist_calcs: 11,
                elapsed: Duration::from_nanos(123_456),
                ..Default::default()
            },
            answers: vec![
                Answer {
                    id: ObjectId(3),
                    distance: 0.25,
                },
                Answer {
                    id: ObjectId(8),
                    distance: 1.5,
                },
            ],
        };
        let (back, _) = Message::decode(&msg.encode()).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn bad_magic_detected() {
        let mut frame = Message::Stats {
            collection: String::new(),
        }
        .encode()
        .to_vec();
        frame[0] = b'X';
        assert!(matches!(
            Message::decode(&frame),
            Err(ProtocolError::BadMagic(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let frame = Message::Query {
            object: Vector::new(vec![1.0, 2.0]),
            qtype: QueryType::range(1.0),
            collection: "c".into(),
            tenant: "t".into(),
        }
        .encode();
        for cut in 4..frame.len() {
            assert!(
                matches!(
                    Message::decode(&frame[..cut]),
                    Err(ProtocolError::Truncated)
                ),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = Message::Stats {
            collection: String::new(),
        }
        .encode()
        .to_vec();
        frame[4] = 99;
        assert!(matches!(
            Message::decode(&frame),
            Err(ProtocolError::BadVersion(99))
        ));
    }

    #[test]
    fn metrics_roundtrip() {
        let req = Message::MetricsRequest {
            collection: "emb".into(),
        };
        let (back, _) = Message::decode(&req.encode()).expect("decode");
        assert_eq!(back, req);
        let text = "# HELP x y\n# TYPE x counter\nx{a=\"b\"} 1\n".to_string();
        let msg = Message::MetricsReply(text);
        let frame = msg.encode();
        let (back, used) = Message::decode(&frame).expect("decode");
        assert_eq!(back, msg);
        assert_eq!(used, frame.len());
        // Truncation anywhere inside the reply is detected, never panics.
        for cut in 4..frame.len() {
            assert!(matches!(
                Message::decode(&frame[..cut]),
                Err(ProtocolError::Truncated)
            ));
        }
    }

    #[test]
    fn io_roundtrip_over_a_buffer() {
        let a = Message::Stats {
            collection: String::new(),
        };
        let b = Message::Error("boom".into());
        let mut wire = Vec::new();
        write_message(&mut wire, &a).unwrap();
        write_message(&mut wire, &b).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_message(&mut r).unwrap(), a);
        assert_eq!(read_message(&mut r).unwrap(), b);
        assert!(matches!(
            read_message(&mut r),
            Err(ProtocolError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }
}

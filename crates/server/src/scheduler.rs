//! The batching scheduler: turns a stream of independent requests into
//! multiple similarity queries.
//!
//! Requests from any number of connections flow into one queue. A pool of
//! [`ServerConfig::workers`] worker threads (default 1) collects them and
//! flushes the queue as `multiple_similarity_query` batches once
//! [`ServerConfig::max_batch`] requests accumulated or
//! [`ServerConfig::max_wait`] passed since the first queued request — the
//! server-side analogue of the paper's m-block: concurrent traffic pays one
//! shared pass instead of m separate ones. With one worker, batches execute
//! strictly sequentially; with more, batch execution overlaps batch
//! collection.

use crate::config::{ExecutionMode, FileIndex, ServerConfig, StoreChoice};
use crate::protocol::ServiceMetrics;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use mq_approx::{
    ApproxTier, BinarySketch, BqPrescreen, Hnsw, HnswConfig, HnswPrescreen, DEFAULT_PLANES,
    SKETCH_FILE,
};
use mq_core::{
    Answer, ExecutionStats, FaultPolicy, LeaderPolicy, QueryEngine, QueryType, StatsProbe,
    WorkerPool,
};
use mq_core::{CandidatePrescreen, EngineObs};
use mq_index::{LinearScan, SimilarityIndex};
use mq_metric::{CountingMetric, Metric, ObjectId, Vector, VectorMetric};
use mq_obs::{Counter, Histogram, Recorder, DURATION_BOUNDS, SIZE_BOUNDS};
use mq_parallel::{Declustering, Server, SharedNothingCluster};
use mq_storage::{Dataset, PageStore, PagedDatabase, SimulatedDisk, VectorCodec};
use mq_store::{
    FilePageStore, PartitionManifest, SegmentMeta, StoreError, SEGMENT_FILE, SEGMENT_HEADER_LEN,
};
use mq_vafile::VaPageIndex;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The answers of one request plus its batch's shared statistics.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Identifier of the batch that carried this query (1-based).
    pub batch_id: u64,
    /// Queries in that batch.
    pub batch_size: u32,
    /// Execution statistics of the whole batch.
    pub stats: ExecutionStats,
    /// The answers, ascending by distance.
    pub answers: Vec<Answer>,
}

/// Executes one flushed batch. Implementations own their storage and
/// index; the scheduler's worker threads are their only callers, and with
/// more than one worker `execute` runs concurrently — hence `Sync`.
pub trait QueryBackend: Send + Sync + 'static {
    /// Evaluates the whole batch, returning per-query answer lists in
    /// input order plus the batch's execution statistics.
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats);

    /// Dimensionality of the stored vectors, or 0 when unknown (empty
    /// database). The frontend rejects mismatched queries up front so a
    /// single bad request cannot reach — let alone poison — a batch that
    /// carries other clients' queries.
    fn dimensions(&self) -> usize;

    /// Number of live objects served (0 when unknown) — what the
    /// `ListCollections` opcode reports per collection.
    fn object_count(&self) -> u64 {
        0
    }

    /// One-line description for logs.
    fn describe(&self) -> String;
}

/// Single-engine backend: one page store (simulated or file-backed), one
/// access method, §5.1–5.2 batched execution.
pub struct SingleEngineBackend {
    disk: Box<dyn PageStore<Vector>>,
    index: Box<dyn SimilarityIndex<Vector>>,
    metric: CountingMetric<VectorMetric>,
    avoidance: bool,
    threads: usize,
    prefetch_depth: usize,
    leader: LeaderPolicy,
    /// The backend's persistent page-evaluation pool: created once (by
    /// [`with_threads`](Self::with_threads)) and shared by the short-lived
    /// engine of every batch, so batches never pay thread spawn/join.
    /// `None` while `threads == 1`.
    pool: Option<Arc<WorkerPool>>,
    fault_policy: FaultPolicy,
    dims: usize,
    /// Observability handle; disabled by default. Kept so `with_threads`
    /// can rebuild the pool with it regardless of builder call order.
    recorder: Recorder,
    /// Engine instruments shared by the short-lived engine of every batch.
    obs: Option<Arc<EngineObs>>,
    /// Optional approximate candidate tier restricting every batch's
    /// sessions before the exact re-rank.
    prescreen: Option<Arc<dyn CandidatePrescreen<Vector>>>,
}

impl SingleEngineBackend {
    /// Wraps a database and its index. `buffer_fraction` sizes the page
    /// buffer as in [`SimulatedDisk::new`].
    pub fn new(
        db: PagedDatabase<Vector>,
        index: Box<dyn SimilarityIndex<Vector>>,
        buffer_fraction: f64,
        avoidance: bool,
    ) -> Self {
        let disk = Box::new(SimulatedDisk::new(db, buffer_fraction));
        Self::from_store(disk, index, avoidance)
    }

    /// Wraps an already-built page store (any backend) and its index. This
    /// is how the durable `mq-store` backend joins the scheduler: the
    /// caller opens or creates the [`FilePageStore`] and hands it over
    /// boxed.
    pub fn from_store(
        disk: Box<dyn PageStore<Vector>>,
        index: Box<dyn SimilarityIndex<Vector>>,
        avoidance: bool,
    ) -> Self {
        let dims = dims_of(disk.database());
        Self {
            disk,
            index,
            metric: CountingMetric::new(VectorMetric::default()),
            avoidance,
            threads: 1,
            prefetch_depth: 0,
            leader: LeaderPolicy::default(),
            pool: None,
            fault_policy: FaultPolicy::default(),
            dims,
            recorder: Recorder::disabled(),
            obs: None,
            prescreen: None,
        }
    }

    /// Evaluates each loaded page with `threads` engine workers (clamped
    /// to ≥ 1). Answers and counters are identical for every value. With
    /// `threads > 1` this creates the backend's persistent worker pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.pool = (self.threads > 1)
            .then(|| Arc::new(WorkerPool::with_recorder(self.threads, &self.recorder)));
        self
    }

    /// Attaches an observability [`Recorder`]: engine counters and stage
    /// spans, the disk's buffer/prefetch/fault counters, and the worker
    /// pool's per-worker counters. Order-independent with
    /// [`with_threads`](Self::with_threads) — the pool is rebuilt here.
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.recorder = recorder.clone();
        self.obs = EngineObs::new(recorder);
        self.disk.attach_recorder(recorder);
        self.pool = (self.threads > 1)
            .then(|| Arc::new(WorkerPool::with_recorder(self.threads, &self.recorder)));
        self
    }

    /// Stages up to `depth` pages ahead per batch (pipelined prefetch).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Selects which pending query leads each step of a batch.
    pub fn with_leader(mut self, leader: LeaderPolicy) -> Self {
        self.leader = leader;
        self
    }

    /// Sets the engine's transient-fault retry budget (only matters when
    /// the disk has a [`mq_storage::FaultPlan`] installed).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.fault_policy = FaultPolicy::new(budget);
        self
    }

    /// Selects the distance function. Non-Euclidean metrics must be paired
    /// with a sequential-scan index (see [`ServerConfig::metric`]).
    pub fn with_metric(mut self, metric: VectorMetric) -> Self {
        self.metric = CountingMetric::new(metric);
        self
    }

    /// Installs an approximate candidate tier: every batch's session is
    /// restricted to the tier's per-query candidates before the exact
    /// re-rank (see [`mq_core::CandidatePrescreen`]).
    pub fn with_prescreen(mut self, prescreen: Arc<dyn CandidatePrescreen<Vector>>) -> Self {
        self.prescreen = Some(prescreen);
        self
    }

    /// The backend's page store (fault-plan installation in tests).
    pub fn disk(&self) -> &dyn PageStore<Vector> {
        &*self.disk
    }
}

/// Dimensionality of the first live vector, or 0 when the database holds
/// none (empty, or every id tombstoned).
fn dims_of(db: &PagedDatabase<Vector>) -> usize {
    (0..db.object_count() as u32)
        .find_map(|i| db.try_object(ObjectId(i)))
        .map_or(0, |v| v.dim())
}

impl QueryBackend for SingleEngineBackend {
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
        let mut engine = QueryEngine::new(&*self.disk, &*self.index, self.metric.clone())
            .with_threads(self.threads)
            .with_prefetch_depth(self.prefetch_depth)
            .with_leader_policy(self.leader)
            .with_fault_policy(self.fault_policy)
            .with_obs(self.obs.clone());
        if let Some(pool) = &self.pool {
            engine = engine.with_pool(Arc::clone(pool));
        }
        if let Some(prescreen) = &self.prescreen {
            engine = engine.with_prescreen(&**prescreen);
        }
        let engine = if self.avoidance {
            engine
        } else {
            engine.without_avoidance()
        };
        let probe = StatsProbe::start(&*self.disk, self.metric.counter(), Default::default());
        let mut session = engine.new_session(queries);
        engine.run_to_completion(&mut session);
        let stats = probe.finish(&*self.disk, session.avoidance_stats());
        (session.into_answers(), stats)
    }

    fn dimensions(&self) -> usize {
        self.dims
    }

    fn object_count(&self) -> u64 {
        self.disk.database().object_count() as u64
    }

    fn describe(&self) -> String {
        format!(
            "single engine, {} pages, avoidance {}, approx {}",
            self.disk.database().page_count(),
            if self.avoidance { "on" } else { "off" },
            self.prescreen.as_deref().map_or("off", |p| p.name()),
        )
    }
}

/// Cluster backend: a §5.3 shared-nothing cluster evaluates every batch in
/// parallel across its servers.
pub struct ClusterBackend {
    cluster: SharedNothingCluster<Vector, CountingMetric<VectorMetric>>,
    servers: usize,
    avoidance: bool,
    dims: usize,
}

impl ClusterBackend {
    /// Declusters `objects` round-robin over `servers` local engines,
    /// building each server's index with `build_index` and evaluating
    /// `metric` on every server.
    pub fn build<F>(
        objects: &[Vector],
        servers: usize,
        buffer_fraction: f64,
        avoidance: bool,
        metric: VectorMetric,
        build_index: F,
    ) -> Self
    where
        F: Fn(
            &mq_storage::Dataset<Vector>,
        ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
    {
        let cluster = SharedNothingCluster::build(
            objects,
            servers,
            Declustering::RoundRobin,
            CountingMetric::new(metric),
            buffer_fraction,
            build_index,
        );
        Self {
            cluster,
            servers,
            avoidance,
            dims: objects.first().map_or(0, |v| v.dim()),
        }
    }

    /// Assembles the backend from already-built servers (any page-store
    /// backend). This is how durable per-partition `mq-store` stores join
    /// the cluster path.
    pub fn from_servers(
        servers: Vec<Server<Vector, CountingMetric<VectorMetric>>>,
        avoidance: bool,
    ) -> Self {
        let dims = servers
            .iter()
            .map(|s| dims_of(s.disk().database()))
            .find(|&d| d > 0)
            .unwrap_or(0);
        let count = servers.len();
        Self {
            cluster: SharedNothingCluster::from_servers(servers),
            servers: count,
            avoidance,
            dims,
        }
    }

    /// Evaluates each loaded page with `threads` engine workers on every
    /// cluster server (clamped to ≥ 1). With `threads > 1` each server
    /// gets its own persistent worker pool, reused across batches.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.cluster = self.cluster.with_engine_threads(threads);
        self
    }

    /// Stages up to `depth` pages ahead on every server (pipelined
    /// prefetch).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.cluster = self.cluster.with_prefetch_depth(depth);
        self
    }

    /// Selects the leader scheduling policy on every server.
    pub fn with_leader(mut self, leader: LeaderPolicy) -> Self {
        self.cluster = self.cluster.with_leader_policy(leader);
        self
    }

    /// Sets every server engine's transient-fault retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.cluster = self.cluster.with_fault_policy(FaultPolicy::new(budget));
        self
    }

    /// Attaches an observability [`Recorder`] to the whole cluster —
    /// per-partition counters, every server disk, every worker pool.
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.cluster = self.cluster.with_recorder(recorder);
        self
    }

    /// Installs the approximate candidate tier on every partition: one
    /// prescreen per server, built over that server's partition-local id
    /// space. With `sidecar_root` set (file-store clusters), each
    /// partition's binary sketch is loaded from — or rebuilt into —
    /// `<root>/part-<i>/sketch.mqbq`.
    pub fn with_approx(mut self, tier: ApproxTier, sidecar_root: Option<&Path>) -> Self {
        let prescreens: Vec<Arc<dyn CandidatePrescreen<Vector>>> = self
            .cluster
            .servers()
            .iter()
            .enumerate()
            .map(|(p, s)| {
                let sidecar = sidecar_root.map(|root| root.join(format!("part-{p}")));
                build_prescreen(tier, s.disk().database(), sidecar.as_deref())
            })
            .collect();
        self.cluster = self.cluster.with_prescreens(prescreens);
        self
    }

    /// The underlying cluster (fault-plan installation in tests).
    pub fn cluster(&self) -> &SharedNothingCluster<Vector, CountingMetric<VectorMetric>> {
        &self.cluster
    }
}

impl QueryBackend for ClusterBackend {
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
        let (answers, cluster_stats) = self.cluster.multiple_query(&queries, self.avoidance);
        // Sum of per-server work; elapsed is the parallel wall-clock, not
        // the sum — that is the whole point of the cluster path.
        let mut stats = cluster_stats.total();
        stats.elapsed = cluster_stats.elapsed;
        (answers, stats)
    }

    fn dimensions(&self) -> usize {
        self.dims
    }

    fn object_count(&self) -> u64 {
        self.cluster
            .servers()
            .iter()
            .map(|s| s.disk().database().object_count() as u64)
            .sum()
    }

    fn describe(&self) -> String {
        format!(
            "shared-nothing cluster of {} servers, avoidance {}, approx {}",
            self.servers,
            if self.avoidance { "on" } else { "off" },
            self.cluster
                .prescreen_names()
                .first()
                .copied()
                .unwrap_or("off"),
        )
    }
}

/// Where a job's reply goes: a bounded channel the thread-per-connection
/// frontend blocks on, or a boxed sink the event-loop frontend hands in
/// (the sink enqueues the encoded reply on the connection's outbox and
/// wakes the poll thread). A sink is invoked exactly once — with `Some`
/// when the batch executed, `None` when it died first (backend panic or
/// queue closed), so the frontend can always send *something*.
enum ReplyTarget {
    Channel(Sender<QueryReply>),
    Sink(Box<dyn FnOnce(Option<QueryReply>) + Send>),
}

struct Job {
    object: Vector,
    qtype: QueryType,
    target: Option<ReplyTarget>,
    /// When the job entered the queue (queue-wait observability).
    submitted: Instant,
    /// The scheduler's in-flight count; decremented on drop, so every
    /// exit path — reply delivered, batch panicked, queue drained on
    /// shutdown — retires the job exactly once.
    pending: Arc<AtomicU64>,
}

impl Job {
    fn deliver(&mut self, reply: QueryReply) {
        match self.target.take() {
            // A client that hung up simply misses its reply.
            Some(ReplyTarget::Channel(tx)) => {
                let _ = tx.send(reply);
            }
            Some(ReplyTarget::Sink(sink)) => sink(Some(reply)),
            None => {}
        }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // A sink still present here means the job is being retired without
        // a reply (batch panic, queue closed at shutdown): deliver the
        // failure so the event frontend answers with a typed error instead
        // of leaving the connection waiting forever.
        if let Some(ReplyTarget::Sink(sink)) = self.target.take() {
            sink(None);
        }
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Why a batch stopped collecting and flushed.
#[derive(Clone, Copy)]
enum FlushReason {
    /// The batch reached [`ServerConfig::max_batch`] jobs.
    Full,
    /// [`ServerConfig::max_wait`] passed since the first queued job.
    Deadline,
    /// The submission queue was closed (shutdown drain).
    Closed,
}

/// Pre-registered scheduler instruments: batch-size and queue-wait
/// distributions plus flush-reason counters.
struct SchedObs {
    batch_size: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    flush_full: Arc<Counter>,
    flush_deadline: Arc<Counter>,
    flush_closed: Arc<Counter>,
    queries: Arc<Counter>,
}

impl SchedObs {
    fn new(recorder: &Recorder) -> Option<Arc<Self>> {
        let flush = |reason: &'static str| {
            recorder.counter(
                "mq_server_batches_total",
                "Batches flushed by the scheduler, by flush reason.",
                &[("reason", reason)],
            )
        };
        Some(Arc::new(Self {
            batch_size: recorder.histogram(
                "mq_server_batch_size",
                "Queries per flushed batch.",
                &[],
                &SIZE_BOUNDS,
            )?,
            queue_wait: recorder.histogram(
                "mq_server_queue_wait_seconds",
                "Time each query waited in the submission queue before its \
                 batch flushed.",
                &[],
                &DURATION_BOUNDS,
            )?,
            flush_full: flush("full")?,
            flush_deadline: flush("deadline")?,
            flush_closed: flush("closed")?,
            queries: recorder.counter(
                "mq_server_queries_total",
                "Queries accepted into flushed batches.",
                &[],
            )?,
        }))
    }

    fn record_flush(&self, jobs: &[Job], reason: FlushReason) {
        self.batch_size.observe(jobs.len() as f64);
        self.queries.add(jobs.len() as u64);
        let now = Instant::now();
        for job in jobs {
            self.queue_wait
                .observe(now.saturating_duration_since(job.submitted).as_secs_f64());
        }
        match reason {
            FlushReason::Full => self.flush_full.inc(),
            FlushReason::Deadline => self.flush_deadline.inc(),
            FlushReason::Closed => self.flush_closed.inc(),
        }
    }
}

/// The batching scheduler: one submission queue, a pool of worker threads
/// (usually just one), one shared backend.
pub struct BatchScheduler {
    tx: Sender<Job>,
    metrics: Arc<Mutex<ServiceMetrics>>,
    dims: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Jobs accepted but not yet retired (queued or executing).
    in_flight: Arc<AtomicU64>,
    /// Scheduler instruments (None when the recorder is disabled); kept
    /// here so admission control can read the live queue-wait p99.
    obs: Option<Arc<SchedObs>>,
}

impl BatchScheduler {
    /// Starts [`ServerConfig::workers`] worker threads over `backend` with
    /// the given batching knobs. The workers share the submission queue
    /// (each job is delivered to exactly one) and draw batch ids from one
    /// shared counter.
    pub fn start(backend: Box<dyn QueryBackend>, config: &ServerConfig) -> Self {
        Self::start_with_recorder(backend, config, &Recorder::disabled())
    }

    /// [`start`](Self::start) with scheduler observability: batch-size and
    /// queue-wait histograms plus flush-reason counters registered on
    /// `recorder`. A disabled recorder makes this identical to `start`.
    pub fn start_with_recorder(
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let metrics = Arc::new(Mutex::new(ServiceMetrics::default()));
        let max_batch = config.max_batch.max(1);
        let max_wait = config.max_wait;
        let dims = backend.dimensions();
        let backend: Arc<dyn QueryBackend> = Arc::from(backend);
        let batch_ids = Arc::new(AtomicU64::new(0));
        let obs = SchedObs::new(recorder);
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let rx = rx.clone();
                let backend = Arc::clone(&backend);
                let metrics = Arc::clone(&metrics);
                let batch_ids = Arc::clone(&batch_ids);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("mq-scheduler-{w}"))
                    .spawn(move || {
                        worker_loop(rx, backend, max_batch, max_wait, metrics, batch_ids, obs)
                    })
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self {
            tx,
            metrics,
            dims,
            workers,
            in_flight: Arc::new(AtomicU64::new(0)),
            obs,
        }
    }

    /// Dimensionality the backend expects of query vectors (0 = unknown).
    pub fn dimensions(&self) -> usize {
        self.dims
    }

    /// Submits one query; the reply arrives on the returned channel once
    /// the query's batch flushed.
    pub fn submit(&self, object: Vector, qtype: QueryType) -> Receiver<QueryReply> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        // Count the job before it enters the queue, so `in_flight` never
        // under-reports; the job's drop guard retires it on every path
        // (including an immediate drop when the queue is already closed).
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        // A send can only fail after shutdown; the caller then sees the
        // reply channel disconnected, which is the honest signal.
        let _ = self.tx.send(Job {
            object,
            qtype,
            target: Some(ReplyTarget::Channel(reply_tx)),
            submitted: Instant::now(),
            pending: Arc::clone(&self.in_flight),
        });
        reply_rx
    }

    /// Submits one query whose reply is delivered by invoking `sink` from
    /// the worker thread: `Some(reply)` once the batch executed, `None` if
    /// the job was dropped unanswered (backend panic, queue closed). The
    /// event-loop frontend uses this so no thread parks per in-flight
    /// query; the thread frontend keeps [`submit`](Self::submit).
    pub fn submit_with<F>(&self, object: Vector, qtype: QueryType, sink: F)
    where
        F: FnOnce(Option<QueryReply>) + Send + 'static,
    {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        // If the queue already closed the job is dropped right here and
        // its drop guard fires the sink with `None`.
        let _ = self.tx.send(Job {
            object,
            qtype,
            target: Some(ReplyTarget::Sink(Box::new(sink))),
            submitted: Instant::now(),
            pending: Arc::clone(&self.in_flight),
        });
    }

    /// p99 of the queue-wait distribution since startup, when scheduler
    /// observability is on and at least one query has been recorded.
    /// Admission control uses this as the `retry_after_ms` hint on
    /// `Overloaded` replies — a saturated queue advertises its own delay.
    pub fn queue_wait_p99(&self) -> Option<f64> {
        self.obs.as_ref()?.queue_wait.quantile(0.99)
    }

    /// Jobs accepted but not yet retired: still queued, collecting into a
    /// batch, or executing. Zero means every submitted query has either
    /// been answered or dropped — the signal
    /// [`QueryServer::drain`](crate::QueryServer::drain) polls so a load
    /// run can end with no work left behind in the scheduler.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// A snapshot of the aggregate counters.
    pub fn metrics(&self) -> ServiceMetrics {
        *self.metrics.lock()
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        // Closing the queue lets the workers drain pending jobs and exit.
        let (closed_tx, _) = channel::bounded(1);
        let _ = std::mem::replace(&mut self.tx, closed_tx);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    backend: Arc<dyn QueryBackend>,
    max_batch: usize,
    max_wait: std::time::Duration,
    metrics: Arc<Mutex<ServiceMetrics>>,
    batch_ids: Arc<AtomicU64>,
    obs: Option<Arc<SchedObs>>,
) {
    loop {
        // Block until traffic arrives; an empty queue costs nothing.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        // Collect until the batch is full or the deadline passes.
        let deadline = Instant::now() + max_wait;
        let mut reason = FlushReason::Full;
        while jobs.len() < max_batch {
            match rx.recv_deadline(deadline) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => {
                    reason = FlushReason::Deadline;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    reason = FlushReason::Closed;
                    break;
                }
            }
        }
        if let Some(obs) = &obs {
            obs.record_flush(&jobs, reason);
        }

        let batch_id = batch_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let batch_size = jobs.len() as u32;
        let queries: Vec<(Vector, QueryType)> =
            jobs.iter().map(|j| (j.object.clone(), j.qtype)).collect();
        // The frontend validates queries, but the worker must survive a
        // backend panic regardless — one poisoned batch must not take the
        // service down for every later client.
        let executed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| backend.execute(queries)));
        let (answers, stats) = match executed {
            Ok(result) => result,
            Err(_) => {
                eprintln!(
                    "mq-scheduler: batch #{batch_id} ({batch_size} queries) panicked; \
                     its clients get an error reply"
                );
                // Dropping the jobs disconnects their reply channels, which
                // the connection handlers report as a server error.
                continue;
            }
        };
        debug_assert_eq!(answers.len(), jobs.len());

        {
            let mut m = metrics.lock();
            m.queries += batch_size as u64;
            m.batches += 1;
            m.max_batch_size = m.max_batch_size.max(batch_size);
            m.totals += stats;
        }

        for (mut job, answers) in jobs.into_iter().zip(answers) {
            job.deliver(QueryReply {
                batch_id,
                batch_size,
                stats,
                answers,
            });
        }
    }
}

/// Builds the backend selected by `config.mode` and `config.store` from a
/// database and an index-builder callback (invoked once per cluster
/// server, or once for the single-engine path; ignored by the file-backed
/// store, which always serves its recovered layout through a sequential
/// scan).
///
/// # Errors
/// Fails only in file-store mode, when the store directory cannot be
/// created, opened, or recovered.
pub fn build_backend<F>(
    db: &PagedDatabase<Vector>,
    config: &ServerConfig,
    buffer_fraction: f64,
    build_index: F,
) -> Result<Box<dyn QueryBackend>, StoreError>
where
    F: Fn(
        &mq_storage::Dataset<Vector>,
    ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
{
    build_backend_with_recorder(
        db,
        config,
        buffer_fraction,
        &Recorder::disabled(),
        build_index,
    )
}

/// [`build_backend`] with an observability [`Recorder`] threaded through
/// the backend (engine counters, disk counters, worker pools, store
/// durability counters, and — in cluster mode — per-partition counters).
///
/// # Errors
/// Fails only in file-store mode, when the store directory cannot be
/// created, opened, or recovered.
pub fn build_backend_with_recorder<F>(
    db: &PagedDatabase<Vector>,
    config: &ServerConfig,
    buffer_fraction: f64,
    recorder: &Recorder,
    build_index: F,
) -> Result<Box<dyn QueryBackend>, StoreError>
where
    F: Fn(
        &mq_storage::Dataset<Vector>,
    ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
{
    // The approximate tiers rank candidates by Euclidean proximity
    // (Hamming over quantile planes, HNSW beam over l2); pairing them
    // with another metric would silently mis-rank, so refuse up front.
    if config.approx.is_some() && config.metric != VectorMetric::Euclidean {
        return Err(StoreError::Format(format!(
            "--approx requires the euclidean metric; the candidate tiers rank by \
             Euclidean proximity and would mis-screen under '{}'",
            config.metric.name()
        )));
    }
    // The VA page index prunes with Euclidean lower bounds, like the
    // trees; any other metric must scan.
    if config.file_index == FileIndex::VaPage && config.metric != VectorMetric::Euclidean {
        return Err(StoreError::Format(format!(
            "--index vafile prunes with Euclidean page bounds; --metric {} \
             requires --index scan",
            config.metric.name()
        )));
    }
    match (&config.mode, &config.store) {
        (ExecutionMode::Single, StoreChoice::Sim) => {
            let (index, db) = build_index(&db.to_dataset());
            let prescreen = config.approx.map(|tier| build_prescreen(tier, &db, None));
            let mut backend =
                SingleEngineBackend::new(db, index, buffer_fraction, config.avoidance)
                    .with_metric(config.metric)
                    .with_threads(config.threads)
                    .with_prefetch_depth(config.prefetch_depth)
                    .with_leader(config.leader)
                    .with_retry_budget(config.retry_budget)
                    .with_recorder(recorder);
            if let Some(p) = prescreen {
                backend = backend.with_prescreen(p);
            }
            Ok(Box::new(backend))
        }
        (ExecutionMode::Single, StoreChoice::File(dir)) => {
            // A partition of a clustered store must not be served alone:
            // its answers would carry partition-local ids.
            if let Some(manifest) = PartitionManifest::load(dir)? {
                return Err(StoreError::Format(format!(
                    "{} is partition {} of a {}-way cluster store; serve its parent \
                     directory with --cluster {} instead",
                    dir.display(),
                    manifest.partition,
                    manifest.parts,
                    manifest.parts
                )));
            }
            let store = open_or_create_store(dir, db, buffer_fraction)?;
            let index = file_store_index(store.database(), config.file_index);
            let prescreen = config
                .approx
                .map(|tier| build_prescreen(tier, store.database(), Some(dir)));
            let mut backend =
                SingleEngineBackend::from_store(Box::new(store), index, config.avoidance)
                    .with_metric(config.metric)
                    .with_threads(config.threads)
                    .with_prefetch_depth(config.prefetch_depth)
                    .with_leader(config.leader)
                    .with_retry_budget(config.retry_budget)
                    .with_recorder(recorder);
            if let Some(p) = prescreen {
                backend = backend.with_prescreen(p);
            }
            Ok(Box::new(backend))
        }
        (ExecutionMode::Cluster { servers }, StoreChoice::Sim) => {
            let ds = db.to_dataset();
            let mut backend = ClusterBackend::build(
                ds.objects(),
                (*servers).max(1),
                buffer_fraction,
                config.avoidance,
                config.metric,
                build_index,
            )
            .with_engine_threads(config.threads)
            .with_prefetch_depth(config.prefetch_depth)
            .with_leader(config.leader)
            .with_retry_budget(config.retry_budget)
            .with_recorder(recorder);
            if let Some(tier) = config.approx {
                backend = backend.with_approx(tier, None);
            }
            Ok(Box::new(backend))
        }
        (ExecutionMode::Cluster { servers }, StoreChoice::File(dir)) => {
            let parts = open_or_create_partition_stores(
                dir,
                db,
                (*servers).max(1),
                buffer_fraction,
                config.metric,
                config.file_index,
            )?;
            let mut backend = ClusterBackend::from_servers(parts, config.avoidance)
                .with_engine_threads(config.threads)
                .with_prefetch_depth(config.prefetch_depth)
                .with_leader(config.leader)
                .with_retry_budget(config.retry_budget)
                .with_recorder(recorder);
            if let Some(tier) = config.approx {
                backend = backend.with_approx(tier, Some(dir));
            }
            Ok(Box::new(backend))
        }
    }
}

/// Builds the access method for a recovered file-store layout: a
/// sequential scan, or VA-quantized page bounds summarized in place (no
/// repacking — the recovered layout is served as-is either way).
fn file_store_index(
    db: &PagedDatabase<Vector>,
    choice: FileIndex,
) -> Box<dyn SimilarityIndex<Vector>> {
    match choice {
        FileIndex::Scan => Box::new(LinearScan::new(db.page_count())),
        FileIndex::VaPage => Box::new(VaPageIndex::build(db, 6)),
    }
}

/// Builds one approximate-tier prescreen over `db`'s id space. With a
/// `sidecar_dir` (file-backed stores) the binary sketch is persisted as
/// `sketch.mqbq` next to the partition's page files and reloaded —
/// checksum-verified — on later opens; HNSW graphs are always rebuilt in
/// memory.
fn build_prescreen(
    tier: ApproxTier,
    db: &PagedDatabase<Vector>,
    sidecar_dir: Option<&Path>,
) -> Arc<dyn CandidatePrescreen<Vector>> {
    match tier {
        ApproxTier::Bq { budget } => {
            let sketch = match sidecar_dir {
                Some(dir) => {
                    BinarySketch::load_or_build(&dir.join(SKETCH_FILE), db, DEFAULT_PLANES).0
                }
                None => BinarySketch::build(db, DEFAULT_PLANES),
            };
            Arc::new(BqPrescreen::new(Arc::new(sketch), budget))
        }
        ApproxTier::Hnsw { ef } => Arc::new(HnswPrescreen::new(
            Arc::new(Hnsw::build(db, HnswConfig::default())),
            ef,
        )),
    }
}

/// Buffer capacity matching [`SimulatedDisk::new`]'s fraction sizing.
fn buffer_pages(page_count: usize, fraction: f64) -> usize {
    ((page_count as f64 * fraction).ceil() as usize).max(1)
}

/// Opens the durable store in `dir` if a segment exists there, otherwise
/// creates one seeded with `db`'s pages (layout preserved as packed —
/// never repacked, so the segment stays valid for any later access).
fn open_or_create_store(
    dir: &Path,
    db: &PagedDatabase<Vector>,
    buffer_fraction: f64,
) -> Result<FilePageStore<Vector, VectorCodec>, StoreError> {
    let seg = dir.join(SEGMENT_FILE);
    if seg.exists() {
        // Only the header is needed for buffer sizing; open() reads the
        // frames itself, so a full std::fs::read here would double the
        // startup I/O of a large segment.
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        std::io::Read::read_exact(&mut std::fs::File::open(&seg)?, &mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Format("segment header truncated".into())
            } else {
                StoreError::Io(e)
            }
        })?;
        let meta = SegmentMeta::decode_header(&header)?;
        let pages = buffer_pages(meta.page_count as usize, buffer_fraction);
        FilePageStore::open(dir, VectorCodec, pages)
    } else {
        let pages = buffer_pages(db.page_count(), buffer_fraction);
        FilePageStore::create(dir, db.clone(), VectorCodec, pages)
    }
}

/// Builds one durable store per cluster partition under
/// `dir/part-<i>/`.
///
/// When `dir/part-0/` already holds a segment, every existing partition is
/// reopened (their count wins over `servers` so a recovered cluster keeps
/// its declustering). Otherwise `db` is declustered round-robin — object
/// `i` to partition `i % servers` — exactly like
/// [`Declustering::RoundRobin`], so answers stay bit-identical to the
/// simulated cluster.
///
/// Each partition directory carries a [`PartitionManifest`] recording the
/// partition count, its index, and the **explicit** local→global id
/// mapping. Reopen reads the mapping back instead of deriving ids
/// positionally, and cross-checks it against the recovered store — a
/// partition mutated behind the cluster's back (offline `mq insert` on a
/// single `part-<i>/`), a missing manifest, or a duplicated global id is
/// a typed error rather than silently mis-addressed answers.
fn open_or_create_partition_stores(
    dir: &Path,
    db: &PagedDatabase<Vector>,
    servers: usize,
    buffer_fraction: f64,
    metric: VectorMetric,
    file_index: FileIndex,
) -> Result<Vec<Server<Vector, CountingMetric<VectorMetric>>>, StoreError> {
    let part_dir = |p: usize| dir.join(format!("part-{p}"));
    let mut out = Vec::new();
    if part_dir(0).join(SEGMENT_FILE).exists() {
        let mut parts = 0;
        while part_dir(parts).join(SEGMENT_FILE).exists() {
            parts += 1;
        }
        let mut seen_gids = std::collections::HashSet::new();
        for p in 0..parts {
            let pdir = part_dir(p);
            let manifest = PartitionManifest::load(&pdir)?.ok_or_else(|| {
                StoreError::Format(format!(
                    "{} has no partition manifest; cannot reconstruct its global ids",
                    pdir.display()
                ))
            })?;
            if manifest.parts as usize != parts || manifest.partition as usize != p {
                return Err(StoreError::Format(format!(
                    "{} declares itself partition {} of {}, but the directory holds \
                     partition {p} of {parts}",
                    pdir.display(),
                    manifest.partition,
                    manifest.parts
                )));
            }
            let store = open_or_create_store(&pdir, db, buffer_fraction)?;
            let local = store.database();
            if manifest.global_ids.len() != local.object_count() {
                return Err(StoreError::Format(format!(
                    "{} holds {} object ids but its manifest maps {} — the partition \
                     was mutated outside the cluster",
                    pdir.display(),
                    local.object_count(),
                    manifest.global_ids.len()
                )));
            }
            for gid in &manifest.global_ids {
                if !seen_gids.insert(*gid) {
                    return Err(StoreError::Format(format!(
                        "global id {gid} is mapped by two partitions"
                    )));
                }
            }
            let index = file_store_index(local, file_index);
            out.push(Server::from_parts(
                Box::new(store),
                index,
                CountingMetric::new(metric),
                manifest.global_ids,
            ));
        }
    } else {
        let ds = db.to_dataset();
        for p in 0..servers {
            let local: Vec<Vector> = ds
                .objects()
                .iter()
                .skip(p)
                .step_by(servers)
                .cloned()
                .collect();
            let global_ids: Vec<ObjectId> = (0..local.len())
                .map(|j| ObjectId((j * servers + p) as u32))
                .collect();
            let part_db = PagedDatabase::pack(&Dataset::new(local), db.layout());
            let pages = buffer_pages(part_db.page_count(), buffer_fraction);
            let store = FilePageStore::create(part_dir(p), part_db, VectorCodec, pages)?;
            PartitionManifest {
                parts: servers as u32,
                partition: p as u32,
                global_ids: global_ids.clone(),
            }
            .save(&part_dir(p))?;
            let index = file_store_index(store.database(), file_index);
            out.push(Server::from_parts(
                Box::new(store),
                index,
                CountingMetric::new(metric),
                global_ids,
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_storage::{Dataset, PageLayout};
    use std::time::Duration;

    fn line_db(n: usize) -> PagedDatabase<Vector> {
        let ds = Dataset::new((0..n).map(|i| Vector::new(vec![i as f32])).collect());
        PagedDatabase::pack(&ds, PageLayout::new(256, 16))
    }

    fn scan_backend(n: usize) -> Box<dyn QueryBackend> {
        let db = line_db(n);
        let scan = LinearScan::new(db.page_count());
        Box::new(SingleEngineBackend::new(db, Box::new(scan), 0.10, true))
    }

    #[test]
    fn replies_match_submissions() {
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(5));
        let scheduler = BatchScheduler::start(scan_backend(100), &config);
        let rxs: Vec<_> = (0..8)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32 * 10.0]), QueryType::knn(1)))
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let reply = rx.recv().expect("reply");
            assert_eq!(reply.answers.len(), 1);
            assert_eq!(reply.answers[0].id.0, i as u32 * 10);
            assert!(reply.batch_size >= 1);
        }
        let m = scheduler.metrics();
        assert_eq!(m.queries, 8);
        assert!(m.batches >= 2, "max_batch 4 forces at least two batches");
        assert!(m.max_batch_size <= 4);
    }

    #[test]
    fn in_flight_counts_down_to_zero() {
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(2));
        let scheduler = BatchScheduler::start(scan_backend(100), &config);
        assert_eq!(scheduler.in_flight(), 0);
        let rxs: Vec<_> = (0..6)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32]), QueryType::knn(1)))
            .collect();
        for rx in rxs {
            rx.recv_timeout(Duration::from_secs(5)).expect("reply");
        }
        // Replies are sent before the jobs retire; give the worker a
        // bounded moment to drop the batch.
        let deadline = Instant::now() + Duration::from_secs(5);
        while scheduler.in_flight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(scheduler.in_flight(), 0, "all jobs must retire");
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let config = ServerConfig::default()
            .with_max_batch(1000)
            .with_max_wait(Duration::from_millis(10));
        let scheduler = BatchScheduler::start(scan_backend(50), &config);
        let rx = scheduler.submit(Vector::new(vec![7.0]), QueryType::knn(2));
        let reply = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline flush");
        assert_eq!(reply.batch_size, 1);
        assert_eq!(reply.answers[0].id.0, 7);
    }

    #[test]
    fn full_batch_flushes_before_deadline() {
        let config = ServerConfig::default()
            .with_max_batch(3)
            .with_max_wait(Duration::from_secs(3600));
        let scheduler = BatchScheduler::start(scan_backend(50), &config);
        let rxs: Vec<_> = (0..3)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32]), QueryType::knn(1)))
            .collect();
        for rx in rxs {
            let reply = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("size-triggered flush despite huge max_wait");
            assert_eq!(reply.batch_size, 3);
            assert_eq!(reply.batch_id, 1);
        }
    }

    #[test]
    fn worker_pool_serves_every_client() {
        let config = ServerConfig::default()
            .with_max_batch(1)
            .with_max_wait(Duration::from_millis(1))
            .with_workers(3);
        let scheduler = BatchScheduler::start(scan_backend(100), &config);
        let rxs: Vec<_> = (0..12)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32 * 5.0]), QueryType::knn(1)))
            .collect();
        let mut batch_ids = Vec::new();
        for (i, rx) in rxs.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(5)).expect("reply");
            assert_eq!(reply.answers[0].id.0, i as u32 * 5);
            batch_ids.push(reply.batch_id);
        }
        // One job per batch: ids are unique even across concurrent workers.
        batch_ids.sort_unstable();
        batch_ids.dedup();
        assert_eq!(batch_ids.len(), 12, "duplicate batch ids across workers");
        let m = scheduler.metrics();
        assert_eq!(m.queries, 12);
        assert_eq!(m.batches, 12);
    }

    #[test]
    fn pipelined_backend_agrees_with_sequential_across_batches() {
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 13.0 + 0.2]), QueryType::knn(3)))
            .collect();
        let plain = scan_backend(120).execute(queries.clone());
        let db = line_db(120);
        let scan = LinearScan::new(db.page_count());
        let pipelined = SingleEngineBackend::new(db, Box::new(scan), 0.10, true)
            .with_threads(2)
            .with_prefetch_depth(2)
            .with_leader(LeaderPolicy::NearestChain);
        // Two batches through the same backend: the persistent pool is
        // created once and must survive reuse.
        for round in 0..2 {
            let (answers, _) = pipelined.execute(queries.clone());
            for (qi, (a, b)) in plain.0.iter().zip(&answers).enumerate() {
                let ia: Vec<u32> = a.iter().map(|x| x.id.0).collect();
                let ib: Vec<u32> = b.iter().map(|x| x.id.0).collect();
                assert_eq!(ia, ib, "round {round}, query {qi}");
            }
        }
    }

    #[test]
    fn cluster_backend_agrees_with_single() {
        let db = line_db(120);
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 17.0 + 0.4]), QueryType::knn(3)))
            .collect();
        let single = scan_backend(120).execute(queries.clone());
        let cluster = ClusterBackend::build(
            db.to_dataset().objects(),
            3,
            0.10,
            true,
            VectorMetric::Euclidean,
            |ds| {
                let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
                (
                    Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                    db,
                )
            },
        );
        let clustered = cluster.execute(queries);
        for (a, b) in single.0.iter().zip(&clustered.0) {
            let ia: Vec<u32> = a.iter().map(|x| x.id.0).collect();
            let ib: Vec<u32> = b.iter().map(|x| x.id.0).collect();
            assert_eq!(ia, ib);
        }
    }

    /// Stands in for any backend bug: panics when a query with the wrong
    /// dimensionality slips through.
    struct FussyBackend {
        inner: Box<dyn QueryBackend>,
    }

    impl QueryBackend for FussyBackend {
        fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
            if queries.iter().any(|(v, _)| v.dim() != 1) {
                panic!("unexpected dimensionality reached the backend");
            }
            self.inner.execute(queries)
        }

        fn dimensions(&self) -> usize {
            1
        }

        fn describe(&self) -> String {
            "fussy test backend".into()
        }
    }

    #[test]
    fn worker_survives_backend_panic() {
        let config = ServerConfig::default()
            .with_max_batch(1)
            .with_max_wait(Duration::from_millis(1));
        let backend = Box::new(FussyBackend {
            inner: scan_backend(30),
        });
        let scheduler = BatchScheduler::start(backend, &config);
        let bad = scheduler.submit(Vector::new(vec![1.0, 2.0]), QueryType::knn(1));
        assert!(
            bad.recv_timeout(Duration::from_secs(5)).is_err(),
            "panicked batch must drop its reply channel"
        );
        let good = scheduler.submit(Vector::new(vec![7.0]), QueryType::knn(1));
        let reply = good
            .recv_timeout(Duration::from_secs(5))
            .expect("worker must keep serving after a backend panic");
        assert_eq!(reply.answers[0].id.0, 7);
    }

    #[test]
    fn file_store_backends_agree_with_sim_and_survive_restart() {
        use crate::config::StoreChoice;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mq-sched-store-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let db = line_db(120);
        let build = |ds: &Dataset<Vector>| {
            let db = PagedDatabase::pack(ds, db.layout());
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        };
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 19.0 + 0.3]), QueryType::knn(3)))
            .collect();
        let oracle = build_backend(&db, &ServerConfig::default(), 0.10, build)
            .expect("sim backend")
            .execute(queries.clone());

        for (mode, sub) in [
            (ExecutionMode::Single, "single"),
            (ExecutionMode::Cluster { servers: 3 }, "cluster"),
        ] {
            let config = ServerConfig::default()
                .with_mode(mode)
                .with_store(StoreChoice::File(dir.join(sub)));
            // First build creates the store, second reopens it from disk.
            for round in ["create", "reopen"] {
                let backend =
                    build_backend(&db, &config, 0.10, build).expect("file backend builds");
                let (answers, _) = backend.execute(queries.clone());
                for (qi, (a, b)) in oracle.0.iter().zip(&answers).enumerate() {
                    let ia: Vec<u32> = a.iter().map(|x| x.id.0).collect();
                    let ib: Vec<u32> = b.iter().map(|x| x.id.0).collect();
                    assert_eq!(ia, ib, "{sub} {round}, query {qi}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_reopen_validates_partition_manifests() {
        use crate::config::StoreChoice;
        use mq_store::PARTITION_MANIFEST_FILE;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let root = std::env::temp_dir().join(format!(
            "mq-sched-manifest-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let db = line_db(120);
        let build = |ds: &Dataset<Vector>| {
            let db = PagedDatabase::pack(ds, db.layout());
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        };
        let cluster_config = |dir: &std::path::Path| {
            ServerConfig::default()
                .with_mode(ExecutionMode::Cluster { servers: 3 })
                .with_store(StoreChoice::File(dir.to_path_buf()))
        };

        // An offline insert against a single partition desynchronizes the
        // persisted global-id mapping; reopen must refuse rather than
        // silently mis-address answers.
        let dir = root.join("mutated");
        let config = cluster_config(&dir);
        drop(build_backend(&db, &config, 0.10, build).expect("create cluster"));
        {
            let mut part: FilePageStore<Vector, VectorCodec> =
                FilePageStore::open(dir.join("part-1"), VectorCodec, 1).expect("open partition");
            part.insert(Vector::new(vec![500.0]))
                .expect("offline insert");
        }
        match build_backend(&db, &config, 0.10, build) {
            Err(StoreError::Format(msg)) => {
                assert!(msg.contains("mutated outside the cluster"), "{msg}")
            }
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("reopen of a desynchronized partition must fail"),
        }

        // A missing manifest leaves the global ids unknowable.
        let dir = root.join("missing");
        let config = cluster_config(&dir);
        drop(build_backend(&db, &config, 0.10, build).expect("create cluster"));
        std::fs::remove_file(dir.join("part-2").join(PARTITION_MANIFEST_FILE)).unwrap();
        match build_backend(&db, &config, 0.10, build) {
            Err(StoreError::Format(msg)) => {
                assert!(msg.contains("no partition manifest"), "{msg}")
            }
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("reopen without a manifest must fail"),
        }

        // Serving one partition standalone would answer with local ids.
        let dir = root.join("single");
        let config = cluster_config(&dir);
        drop(build_backend(&db, &config, 0.10, build).expect("create cluster"));
        let single = ServerConfig::default().with_store(StoreChoice::File(dir.join("part-0")));
        match build_backend(&db, &single, 0.10, build) {
            Err(StoreError::Format(msg)) => assert!(msg.contains("--cluster 3"), "{msg}"),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("single-mode serve of a partition must fail"),
        }

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn configured_metric_reaches_the_engine() {
        // Under the dot-product ranking the best match for q=[5] in the
        // 0..60 line is the *largest* vector, not the nearest one — so a
        // Euclidean engine would answer id 5 and give the game away.
        let db = line_db(60);
        let config = ServerConfig::default().with_metric(VectorMetric::Dot);
        let backend = build_backend(&db, &config, 0.10, |ds| {
            let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        })
        .expect("sim backend");
        let (answers, _) = backend.execute(vec![(Vector::new(vec![5.0]), QueryType::knn(1))]);
        assert_eq!(answers[0][0].id.0, 59);
        assert_eq!(answers[0][0].distance, -(5.0 * 59.0));
    }

    #[test]
    fn approx_tier_with_full_budget_agrees_with_exact_in_every_mode() {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mq-sched-approx-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let db = line_db(120);
        let build = |ds: &Dataset<Vector>| {
            let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        };
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 17.0 + 0.4]), QueryType::knn(3)))
            .collect();
        let exact = build_backend(&db, &ServerConfig::default(), 0.10, build)
            .expect("exact backend")
            .execute(queries.clone());

        // A budget covering the whole collection must reproduce the exact
        // answers bit-for-bit in every mode × store × tier combination.
        for tier in [ApproxTier::Bq { budget: 120 }, ApproxTier::Hnsw { ef: 120 }] {
            for (mode, store, label) in [
                (ExecutionMode::Single, StoreChoice::Sim, "single/sim"),
                (
                    ExecutionMode::Cluster { servers: 3 },
                    StoreChoice::Sim,
                    "cluster/sim",
                ),
                (
                    ExecutionMode::Single,
                    StoreChoice::File(dir.join(format!("single-{tier}"))),
                    "single/file",
                ),
                (
                    ExecutionMode::Cluster { servers: 3 },
                    StoreChoice::File(dir.join(format!("cluster-{tier}"))),
                    "cluster/file",
                ),
            ] {
                let config = ServerConfig::default()
                    .with_mode(mode)
                    .with_store(store)
                    .with_approx(Some(tier));
                let backend =
                    build_backend(&db, &config, 0.10, build).expect("approx backend builds");
                assert!(
                    backend.describe().contains("approx"),
                    "{}",
                    backend.describe()
                );
                let (answers, _) = backend.execute(queries.clone());
                for (qi, (a, b)) in exact.0.iter().zip(&answers).enumerate() {
                    let ia: Vec<(u32, f64)> = a.iter().map(|x| (x.id.0, x.distance)).collect();
                    let ib: Vec<(u32, f64)> = b.iter().map(|x| (x.id.0, x.distance)).collect();
                    assert_eq!(ia, ib, "{label} {tier}, query {qi}");
                }
            }
        }
        // The file-backed bq runs persisted their sketches next to the
        // page files (single at the root, cluster per partition).
        assert!(dir.join("single-bq:120").join(super::SKETCH_FILE).exists());
        assert!(dir
            .join("cluster-bq:120")
            .join("part-0")
            .join(super::SKETCH_FILE)
            .exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn narrow_budget_restricts_the_scan() {
        // budget 1 admits ~1 candidate per query; the answers must be
        // drawn from that candidate set and the distances stay exact.
        let db = line_db(120);
        let config = ServerConfig::default().with_approx(Some(ApproxTier::Bq { budget: 1 }));
        let backend = build_backend(&db, &config, 0.10, |ds| {
            let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        })
        .expect("approx backend");
        let (answers, _) = backend.execute(vec![(Vector::new(vec![60.0]), QueryType::knn(5))]);
        assert!(
            answers[0].len() <= 1,
            "budget 1 cannot yield {} answers",
            answers[0].len()
        );
        for a in &answers[0] {
            // Exact re-rank: the reported distance is the true metric
            // distance, not a Hamming proxy.
            assert_eq!(a.distance, (a.id.0 as f64 - 60.0).abs());
        }
    }

    #[test]
    fn file_store_vafile_index_agrees_with_scan_and_guards_metric() {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mq-sched-vafile-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let db = line_db(120);
        let build = |ds: &Dataset<Vector>| {
            let db = PagedDatabase::pack(ds, db.layout());
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        };
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 19.0 + 0.3]), QueryType::knn(3)))
            .collect();
        let oracle = build_backend(&db, &ServerConfig::default(), 0.10, build)
            .expect("sim backend")
            .execute(queries.clone());

        for (mode, sub) in [
            (ExecutionMode::Single, "single"),
            (ExecutionMode::Cluster { servers: 3 }, "cluster"),
        ] {
            let config = ServerConfig::default()
                .with_mode(mode)
                .with_store(StoreChoice::File(dir.join(sub)))
                .with_file_index(FileIndex::VaPage);
            // Create, then reopen: the VA summary is rebuilt over the
            // recovered layout both times.
            for round in ["create", "reopen"] {
                let backend =
                    build_backend(&db, &config, 0.10, build).expect("vafile file backend");
                let (answers, _) = backend.execute(queries.clone());
                for (qi, (a, b)) in oracle.0.iter().zip(&answers).enumerate() {
                    let ia: Vec<(u32, f64)> = a.iter().map(|x| (x.id.0, x.distance)).collect();
                    let ib: Vec<(u32, f64)> = b.iter().map(|x| (x.id.0, x.distance)).collect();
                    assert_eq!(ia, ib, "{sub} {round}, query {qi}");
                }
            }
        }

        let config = ServerConfig::default()
            .with_store(StoreChoice::File(dir.join("guard")))
            .with_file_index(FileIndex::VaPage)
            .with_metric(VectorMetric::Dot);
        match build_backend(&db, &config, 0.10, build) {
            Err(StoreError::Format(msg)) => assert!(msg.contains("Euclidean"), "{msg}"),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("vafile index + dot metric must be refused"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn approx_refuses_non_euclidean_metrics() {
        let db = line_db(30);
        let config = ServerConfig::default()
            .with_metric(VectorMetric::Cosine)
            .with_approx(Some(ApproxTier::Bq { budget: 10 }));
        match build_backend(&db, &config, 0.10, |ds| {
            let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        }) {
            Err(StoreError::Format(msg)) => assert!(msg.contains("euclidean"), "{msg}"),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("approx + cosine must be refused"),
        }
    }

    #[test]
    fn shutdown_disconnects_pending_reply_channels() {
        let config = ServerConfig::default().with_max_batch(2);
        let scheduler = BatchScheduler::start(scan_backend(20), &config);
        let m0 = scheduler.metrics();
        assert_eq!(m0.queries, 0);
        drop(scheduler); // joins the worker without panicking
    }
}

//! The batching scheduler: turns a stream of independent requests into
//! multiple similarity queries.
//!
//! Requests from any number of connections flow into one queue. A pool of
//! [`ServerConfig::workers`] worker threads (default 1) collects them and
//! flushes the queue as `multiple_similarity_query` batches once
//! [`ServerConfig::max_batch`] requests accumulated or
//! [`ServerConfig::max_wait`] passed since the first queued request — the
//! server-side analogue of the paper's m-block: concurrent traffic pays one
//! shared pass instead of m separate ones. With one worker, batches execute
//! strictly sequentially; with more, batch execution overlaps batch
//! collection.

use crate::config::{ExecutionMode, ServerConfig};
use crate::protocol::ServiceMetrics;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use mq_core::{
    Answer, ExecutionStats, FaultPolicy, LeaderPolicy, QueryEngine, QueryType, StatsProbe,
    WorkerPool,
};
use mq_core::EngineObs;
use mq_index::SimilarityIndex;
use mq_metric::{CountingMetric, Euclidean, Vector};
use mq_obs::{Counter, Histogram, Recorder, DURATION_BOUNDS, SIZE_BOUNDS};
use mq_parallel::{Declustering, SharedNothingCluster};
use mq_storage::{PagedDatabase, SimulatedDisk};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The answers of one request plus its batch's shared statistics.
#[derive(Clone, Debug)]
pub struct QueryReply {
    /// Identifier of the batch that carried this query (1-based).
    pub batch_id: u64,
    /// Queries in that batch.
    pub batch_size: u32,
    /// Execution statistics of the whole batch.
    pub stats: ExecutionStats,
    /// The answers, ascending by distance.
    pub answers: Vec<Answer>,
}

/// Executes one flushed batch. Implementations own their storage and
/// index; the scheduler's worker threads are their only callers, and with
/// more than one worker `execute` runs concurrently — hence `Sync`.
pub trait QueryBackend: Send + Sync + 'static {
    /// Evaluates the whole batch, returning per-query answer lists in
    /// input order plus the batch's execution statistics.
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats);

    /// Dimensionality of the stored vectors, or 0 when unknown (empty
    /// database). The frontend rejects mismatched queries up front so a
    /// single bad request cannot reach — let alone poison — a batch that
    /// carries other clients' queries.
    fn dimensions(&self) -> usize;

    /// One-line description for logs.
    fn describe(&self) -> String;
}

/// Single-engine backend: one simulated disk, one access method, §5.1–5.2
/// batched execution.
pub struct SingleEngineBackend {
    disk: SimulatedDisk<Vector>,
    index: Box<dyn SimilarityIndex<Vector>>,
    metric: CountingMetric<Euclidean>,
    avoidance: bool,
    threads: usize,
    prefetch_depth: usize,
    leader: LeaderPolicy,
    /// The backend's persistent page-evaluation pool: created once (by
    /// [`with_threads`](Self::with_threads)) and shared by the short-lived
    /// engine of every batch, so batches never pay thread spawn/join.
    /// `None` while `threads == 1`.
    pool: Option<Arc<WorkerPool>>,
    fault_policy: FaultPolicy,
    dims: usize,
    /// Observability handle; disabled by default. Kept so `with_threads`
    /// can rebuild the pool with it regardless of builder call order.
    recorder: Recorder,
    /// Engine instruments shared by the short-lived engine of every batch.
    obs: Option<Arc<EngineObs>>,
}

impl SingleEngineBackend {
    /// Wraps a database and its index. `buffer_fraction` sizes the page
    /// buffer as in [`SimulatedDisk::new`].
    pub fn new(
        db: PagedDatabase<Vector>,
        index: Box<dyn SimilarityIndex<Vector>>,
        buffer_fraction: f64,
        avoidance: bool,
    ) -> Self {
        let dims = if db.object_count() > 0 {
            db.object(mq_metric::ObjectId(0)).dim()
        } else {
            0
        };
        Self {
            disk: SimulatedDisk::new(db, buffer_fraction),
            index,
            metric: CountingMetric::new(Euclidean),
            avoidance,
            threads: 1,
            prefetch_depth: 0,
            leader: LeaderPolicy::default(),
            pool: None,
            fault_policy: FaultPolicy::default(),
            dims,
            recorder: Recorder::disabled(),
            obs: None,
        }
    }

    /// Evaluates each loaded page with `threads` engine workers (clamped
    /// to ≥ 1). Answers and counters are identical for every value. With
    /// `threads > 1` this creates the backend's persistent worker pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.pool = (self.threads > 1)
            .then(|| Arc::new(WorkerPool::with_recorder(self.threads, &self.recorder)));
        self
    }

    /// Attaches an observability [`Recorder`]: engine counters and stage
    /// spans, the disk's buffer/prefetch/fault counters, and the worker
    /// pool's per-worker counters. Order-independent with
    /// [`with_threads`](Self::with_threads) — the pool is rebuilt here.
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.recorder = recorder.clone();
        self.obs = EngineObs::new(recorder);
        self.disk.attach_recorder(recorder);
        self.pool = (self.threads > 1)
            .then(|| Arc::new(WorkerPool::with_recorder(self.threads, &self.recorder)));
        self
    }

    /// Stages up to `depth` pages ahead per batch (pipelined prefetch).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Selects which pending query leads each step of a batch.
    pub fn with_leader(mut self, leader: LeaderPolicy) -> Self {
        self.leader = leader;
        self
    }

    /// Sets the engine's transient-fault retry budget (only matters when
    /// the disk has a [`mq_storage::FaultPlan`] installed).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.fault_policy = FaultPolicy::new(budget);
        self
    }

    /// The backend's simulated disk (fault-plan installation in tests).
    pub fn disk(&self) -> &SimulatedDisk<Vector> {
        &self.disk
    }
}

impl QueryBackend for SingleEngineBackend {
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
        let mut engine = QueryEngine::new(&self.disk, &*self.index, self.metric.clone())
            .with_threads(self.threads)
            .with_prefetch_depth(self.prefetch_depth)
            .with_leader_policy(self.leader)
            .with_fault_policy(self.fault_policy)
            .with_obs(self.obs.clone());
        if let Some(pool) = &self.pool {
            engine = engine.with_pool(Arc::clone(pool));
        }
        let engine = if self.avoidance {
            engine
        } else {
            engine.without_avoidance()
        };
        let probe = StatsProbe::start(&self.disk, self.metric.counter(), Default::default());
        let mut session = engine.new_session(queries);
        engine.run_to_completion(&mut session);
        let stats = probe.finish(&self.disk, session.avoidance_stats());
        (session.into_answers(), stats)
    }

    fn dimensions(&self) -> usize {
        self.dims
    }

    fn describe(&self) -> String {
        format!(
            "single engine, {} pages, avoidance {}",
            self.disk.database().page_count(),
            if self.avoidance { "on" } else { "off" }
        )
    }
}

/// Cluster backend: a §5.3 shared-nothing cluster evaluates every batch in
/// parallel across its servers.
pub struct ClusterBackend {
    cluster: SharedNothingCluster<Vector, CountingMetric<Euclidean>>,
    servers: usize,
    avoidance: bool,
    dims: usize,
}

impl ClusterBackend {
    /// Declusters `objects` round-robin over `servers` local engines,
    /// building each server's index with `build_index`.
    pub fn build<F>(
        objects: &[Vector],
        servers: usize,
        buffer_fraction: f64,
        avoidance: bool,
        build_index: F,
    ) -> Self
    where
        F: Fn(
            &mq_storage::Dataset<Vector>,
        ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
    {
        let cluster = SharedNothingCluster::build(
            objects,
            servers,
            Declustering::RoundRobin,
            CountingMetric::new(Euclidean),
            buffer_fraction,
            build_index,
        );
        Self {
            cluster,
            servers,
            avoidance,
            dims: objects.first().map_or(0, |v| v.dim()),
        }
    }

    /// Evaluates each loaded page with `threads` engine workers on every
    /// cluster server (clamped to ≥ 1). With `threads > 1` each server
    /// gets its own persistent worker pool, reused across batches.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.cluster = self.cluster.with_engine_threads(threads);
        self
    }

    /// Stages up to `depth` pages ahead on every server (pipelined
    /// prefetch).
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.cluster = self.cluster.with_prefetch_depth(depth);
        self
    }

    /// Selects the leader scheduling policy on every server.
    pub fn with_leader(mut self, leader: LeaderPolicy) -> Self {
        self.cluster = self.cluster.with_leader_policy(leader);
        self
    }

    /// Sets every server engine's transient-fault retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.cluster = self.cluster.with_fault_policy(FaultPolicy::new(budget));
        self
    }

    /// Attaches an observability [`Recorder`] to the whole cluster —
    /// per-partition counters, every server disk, every worker pool.
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.cluster = self.cluster.with_recorder(recorder);
        self
    }

    /// The underlying cluster (fault-plan installation in tests).
    pub fn cluster(&self) -> &SharedNothingCluster<Vector, CountingMetric<Euclidean>> {
        &self.cluster
    }
}

impl QueryBackend for ClusterBackend {
    fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
        let (answers, cluster_stats) = self.cluster.multiple_query(&queries, self.avoidance);
        // Sum of per-server work; elapsed is the parallel wall-clock, not
        // the sum — that is the whole point of the cluster path.
        let mut stats = cluster_stats.total();
        stats.elapsed = cluster_stats.elapsed;
        (answers, stats)
    }

    fn dimensions(&self) -> usize {
        self.dims
    }

    fn describe(&self) -> String {
        format!(
            "shared-nothing cluster of {} servers, avoidance {}",
            self.servers,
            if self.avoidance { "on" } else { "off" }
        )
    }
}

struct Job {
    object: Vector,
    qtype: QueryType,
    reply: Sender<QueryReply>,
    /// When the job entered the queue (queue-wait observability).
    submitted: Instant,
}

/// Why a batch stopped collecting and flushed.
#[derive(Clone, Copy)]
enum FlushReason {
    /// The batch reached [`ServerConfig::max_batch`] jobs.
    Full,
    /// [`ServerConfig::max_wait`] passed since the first queued job.
    Deadline,
    /// The submission queue was closed (shutdown drain).
    Closed,
}

/// Pre-registered scheduler instruments: batch-size and queue-wait
/// distributions plus flush-reason counters.
struct SchedObs {
    batch_size: Arc<Histogram>,
    queue_wait: Arc<Histogram>,
    flush_full: Arc<Counter>,
    flush_deadline: Arc<Counter>,
    flush_closed: Arc<Counter>,
    queries: Arc<Counter>,
}

impl SchedObs {
    fn new(recorder: &Recorder) -> Option<Arc<Self>> {
        let flush = |reason: &'static str| {
            recorder.counter(
                "mq_server_batches_total",
                "Batches flushed by the scheduler, by flush reason.",
                &[("reason", reason)],
            )
        };
        Some(Arc::new(Self {
            batch_size: recorder.histogram(
                "mq_server_batch_size",
                "Queries per flushed batch.",
                &[],
                &SIZE_BOUNDS,
            )?,
            queue_wait: recorder.histogram(
                "mq_server_queue_wait_seconds",
                "Time each query waited in the submission queue before its \
                 batch flushed.",
                &[],
                &DURATION_BOUNDS,
            )?,
            flush_full: flush("full")?,
            flush_deadline: flush("deadline")?,
            flush_closed: flush("closed")?,
            queries: recorder.counter(
                "mq_server_queries_total",
                "Queries accepted into flushed batches.",
                &[],
            )?,
        }))
    }

    fn record_flush(&self, jobs: &[Job], reason: FlushReason) {
        self.batch_size.observe(jobs.len() as f64);
        self.queries.add(jobs.len() as u64);
        let now = Instant::now();
        for job in jobs {
            self.queue_wait
                .observe(now.saturating_duration_since(job.submitted).as_secs_f64());
        }
        match reason {
            FlushReason::Full => self.flush_full.inc(),
            FlushReason::Deadline => self.flush_deadline.inc(),
            FlushReason::Closed => self.flush_closed.inc(),
        }
    }
}

/// The batching scheduler: one submission queue, a pool of worker threads
/// (usually just one), one shared backend.
pub struct BatchScheduler {
    tx: Sender<Job>,
    metrics: Arc<Mutex<ServiceMetrics>>,
    dims: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl BatchScheduler {
    /// Starts [`ServerConfig::workers`] worker threads over `backend` with
    /// the given batching knobs. The workers share the submission queue
    /// (each job is delivered to exactly one) and draw batch ids from one
    /// shared counter.
    pub fn start(backend: Box<dyn QueryBackend>, config: &ServerConfig) -> Self {
        Self::start_with_recorder(backend, config, &Recorder::disabled())
    }

    /// [`start`](Self::start) with scheduler observability: batch-size and
    /// queue-wait histograms plus flush-reason counters registered on
    /// `recorder`. A disabled recorder makes this identical to `start`.
    pub fn start_with_recorder(
        backend: Box<dyn QueryBackend>,
        config: &ServerConfig,
        recorder: &Recorder,
    ) -> Self {
        let (tx, rx) = channel::unbounded::<Job>();
        let metrics = Arc::new(Mutex::new(ServiceMetrics::default()));
        let max_batch = config.max_batch.max(1);
        let max_wait = config.max_wait;
        let dims = backend.dimensions();
        let backend: Arc<dyn QueryBackend> = Arc::from(backend);
        let batch_ids = Arc::new(AtomicU64::new(0));
        let obs = SchedObs::new(recorder);
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let rx = rx.clone();
                let backend = Arc::clone(&backend);
                let metrics = Arc::clone(&metrics);
                let batch_ids = Arc::clone(&batch_ids);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("mq-scheduler-{w}"))
                    .spawn(move || {
                        worker_loop(rx, backend, max_batch, max_wait, metrics, batch_ids, obs)
                    })
                    .expect("spawn scheduler worker")
            })
            .collect();
        Self {
            tx,
            metrics,
            dims,
            workers,
        }
    }

    /// Dimensionality the backend expects of query vectors (0 = unknown).
    pub fn dimensions(&self) -> usize {
        self.dims
    }

    /// Submits one query; the reply arrives on the returned channel once
    /// the query's batch flushed.
    pub fn submit(&self, object: Vector, qtype: QueryType) -> Receiver<QueryReply> {
        let (reply_tx, reply_rx) = channel::bounded(1);
        // A send can only fail after shutdown; the caller then sees the
        // reply channel disconnected, which is the honest signal.
        let _ = self.tx.send(Job {
            object,
            qtype,
            reply: reply_tx,
            submitted: Instant::now(),
        });
        reply_rx
    }

    /// A snapshot of the aggregate counters.
    pub fn metrics(&self) -> ServiceMetrics {
        *self.metrics.lock()
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        // Closing the queue lets the workers drain pending jobs and exit.
        let (closed_tx, _) = channel::bounded(1);
        let _ = std::mem::replace(&mut self.tx, closed_tx);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    backend: Arc<dyn QueryBackend>,
    max_batch: usize,
    max_wait: std::time::Duration,
    metrics: Arc<Mutex<ServiceMetrics>>,
    batch_ids: Arc<AtomicU64>,
    obs: Option<Arc<SchedObs>>,
) {
    loop {
        // Block until traffic arrives; an empty queue costs nothing.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut jobs = vec![first];
        // Collect until the batch is full or the deadline passes.
        let deadline = Instant::now() + max_wait;
        let mut reason = FlushReason::Full;
        while jobs.len() < max_batch {
            match rx.recv_deadline(deadline) {
                Ok(job) => jobs.push(job),
                Err(RecvTimeoutError::Timeout) => {
                    reason = FlushReason::Deadline;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    reason = FlushReason::Closed;
                    break;
                }
            }
        }
        if let Some(obs) = &obs {
            obs.record_flush(&jobs, reason);
        }

        let batch_id = batch_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let batch_size = jobs.len() as u32;
        let queries: Vec<(Vector, QueryType)> =
            jobs.iter().map(|j| (j.object.clone(), j.qtype)).collect();
        // The frontend validates queries, but the worker must survive a
        // backend panic regardless — one poisoned batch must not take the
        // service down for every later client.
        let executed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| backend.execute(queries)));
        let (answers, stats) = match executed {
            Ok(result) => result,
            Err(_) => {
                eprintln!(
                    "mq-scheduler: batch #{batch_id} ({batch_size} queries) panicked; \
                     its clients get an error reply"
                );
                // Dropping the jobs disconnects their reply channels, which
                // the connection handlers report as a server error.
                continue;
            }
        };
        debug_assert_eq!(answers.len(), jobs.len());

        {
            let mut m = metrics.lock();
            m.queries += batch_size as u64;
            m.batches += 1;
            m.max_batch_size = m.max_batch_size.max(batch_size);
            m.totals += stats;
        }

        for (job, answers) in jobs.into_iter().zip(answers) {
            // A client that hung up simply misses its reply.
            let _ = job.reply.send(QueryReply {
                batch_id,
                batch_size,
                stats,
                answers,
            });
        }
    }
}

/// Builds the backend selected by `config.mode` from a database and an
/// index-builder callback (invoked once per cluster server, or once for
/// the single-engine path).
pub fn build_backend<F>(
    db: &PagedDatabase<Vector>,
    config: &ServerConfig,
    buffer_fraction: f64,
    build_index: F,
) -> Box<dyn QueryBackend>
where
    F: Fn(
        &mq_storage::Dataset<Vector>,
    ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
{
    build_backend_with_recorder(db, config, buffer_fraction, &Recorder::disabled(), build_index)
}

/// [`build_backend`] with an observability [`Recorder`] threaded through
/// the backend (engine counters, disk counters, worker pools, and — in
/// cluster mode — per-partition counters).
pub fn build_backend_with_recorder<F>(
    db: &PagedDatabase<Vector>,
    config: &ServerConfig,
    buffer_fraction: f64,
    recorder: &Recorder,
    build_index: F,
) -> Box<dyn QueryBackend>
where
    F: Fn(
        &mq_storage::Dataset<Vector>,
    ) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>),
{
    match config.mode {
        ExecutionMode::Single => {
            let (index, db) = build_index(&db.to_dataset());
            Box::new(
                SingleEngineBackend::new(db, index, buffer_fraction, config.avoidance)
                    .with_threads(config.threads)
                    .with_prefetch_depth(config.prefetch_depth)
                    .with_leader(config.leader)
                    .with_retry_budget(config.retry_budget)
                    .with_recorder(recorder),
            )
        }
        ExecutionMode::Cluster { servers } => {
            let ds = db.to_dataset();
            Box::new(
                ClusterBackend::build(
                    ds.objects(),
                    servers.max(1),
                    buffer_fraction,
                    config.avoidance,
                    build_index,
                )
                .with_engine_threads(config.threads)
                .with_prefetch_depth(config.prefetch_depth)
                .with_leader(config.leader)
                .with_retry_budget(config.retry_budget)
                .with_recorder(recorder),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_storage::{Dataset, PageLayout};
    use std::time::Duration;

    fn line_db(n: usize) -> PagedDatabase<Vector> {
        let ds = Dataset::new((0..n).map(|i| Vector::new(vec![i as f32])).collect());
        PagedDatabase::pack(&ds, PageLayout::new(256, 16))
    }

    fn scan_backend(n: usize) -> Box<dyn QueryBackend> {
        let db = line_db(n);
        let scan = LinearScan::new(db.page_count());
        Box::new(SingleEngineBackend::new(db, Box::new(scan), 0.10, true))
    }

    #[test]
    fn replies_match_submissions() {
        let config = ServerConfig::default()
            .with_max_batch(4)
            .with_max_wait(Duration::from_millis(5));
        let scheduler = BatchScheduler::start(scan_backend(100), &config);
        let rxs: Vec<_> = (0..8)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32 * 10.0]), QueryType::knn(1)))
            .collect();
        for (i, rx) in rxs.into_iter().enumerate() {
            let reply = rx.recv().expect("reply");
            assert_eq!(reply.answers.len(), 1);
            assert_eq!(reply.answers[0].id.0, i as u32 * 10);
            assert!(reply.batch_size >= 1);
        }
        let m = scheduler.metrics();
        assert_eq!(m.queries, 8);
        assert!(m.batches >= 2, "max_batch 4 forces at least two batches");
        assert!(m.max_batch_size <= 4);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let config = ServerConfig::default()
            .with_max_batch(1000)
            .with_max_wait(Duration::from_millis(10));
        let scheduler = BatchScheduler::start(scan_backend(50), &config);
        let rx = scheduler.submit(Vector::new(vec![7.0]), QueryType::knn(2));
        let reply = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("deadline flush");
        assert_eq!(reply.batch_size, 1);
        assert_eq!(reply.answers[0].id.0, 7);
    }

    #[test]
    fn full_batch_flushes_before_deadline() {
        let config = ServerConfig::default()
            .with_max_batch(3)
            .with_max_wait(Duration::from_secs(3600));
        let scheduler = BatchScheduler::start(scan_backend(50), &config);
        let rxs: Vec<_> = (0..3)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32]), QueryType::knn(1)))
            .collect();
        for rx in rxs {
            let reply = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("size-triggered flush despite huge max_wait");
            assert_eq!(reply.batch_size, 3);
            assert_eq!(reply.batch_id, 1);
        }
    }

    #[test]
    fn worker_pool_serves_every_client() {
        let config = ServerConfig::default()
            .with_max_batch(1)
            .with_max_wait(Duration::from_millis(1))
            .with_workers(3);
        let scheduler = BatchScheduler::start(scan_backend(100), &config);
        let rxs: Vec<_> = (0..12)
            .map(|i| scheduler.submit(Vector::new(vec![i as f32 * 5.0]), QueryType::knn(1)))
            .collect();
        let mut batch_ids = Vec::new();
        for (i, rx) in rxs.into_iter().enumerate() {
            let reply = rx.recv_timeout(Duration::from_secs(5)).expect("reply");
            assert_eq!(reply.answers[0].id.0, i as u32 * 5);
            batch_ids.push(reply.batch_id);
        }
        // One job per batch: ids are unique even across concurrent workers.
        batch_ids.sort_unstable();
        batch_ids.dedup();
        assert_eq!(batch_ids.len(), 12, "duplicate batch ids across workers");
        let m = scheduler.metrics();
        assert_eq!(m.queries, 12);
        assert_eq!(m.batches, 12);
    }

    #[test]
    fn pipelined_backend_agrees_with_sequential_across_batches() {
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 13.0 + 0.2]), QueryType::knn(3)))
            .collect();
        let plain = scan_backend(120).execute(queries.clone());
        let db = line_db(120);
        let scan = LinearScan::new(db.page_count());
        let pipelined = SingleEngineBackend::new(db, Box::new(scan), 0.10, true)
            .with_threads(2)
            .with_prefetch_depth(2)
            .with_leader(LeaderPolicy::NearestChain);
        // Two batches through the same backend: the persistent pool is
        // created once and must survive reuse.
        for round in 0..2 {
            let (answers, _) = pipelined.execute(queries.clone());
            for (qi, (a, b)) in plain.0.iter().zip(&answers).enumerate() {
                let ia: Vec<u32> = a.iter().map(|x| x.id.0).collect();
                let ib: Vec<u32> = b.iter().map(|x| x.id.0).collect();
                assert_eq!(ia, ib, "round {round}, query {qi}");
            }
        }
    }

    #[test]
    fn cluster_backend_agrees_with_single() {
        let db = line_db(120);
        let queries: Vec<(Vector, QueryType)> = (0..6)
            .map(|i| (Vector::new(vec![i as f32 * 17.0 + 0.4]), QueryType::knn(3)))
            .collect();
        let single = scan_backend(120).execute(queries.clone());
        let cluster = ClusterBackend::build(db.to_dataset().objects(), 3, 0.10, true, |ds| {
            let db = PagedDatabase::pack(ds, PageLayout::new(256, 16));
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        });
        let clustered = cluster.execute(queries);
        for (a, b) in single.0.iter().zip(&clustered.0) {
            let ia: Vec<u32> = a.iter().map(|x| x.id.0).collect();
            let ib: Vec<u32> = b.iter().map(|x| x.id.0).collect();
            assert_eq!(ia, ib);
        }
    }

    /// Stands in for any backend bug: panics when a query with the wrong
    /// dimensionality slips through.
    struct FussyBackend {
        inner: Box<dyn QueryBackend>,
    }

    impl QueryBackend for FussyBackend {
        fn execute(&self, queries: Vec<(Vector, QueryType)>) -> (Vec<Vec<Answer>>, ExecutionStats) {
            if queries.iter().any(|(v, _)| v.dim() != 1) {
                panic!("unexpected dimensionality reached the backend");
            }
            self.inner.execute(queries)
        }

        fn dimensions(&self) -> usize {
            1
        }

        fn describe(&self) -> String {
            "fussy test backend".into()
        }
    }

    #[test]
    fn worker_survives_backend_panic() {
        let config = ServerConfig::default()
            .with_max_batch(1)
            .with_max_wait(Duration::from_millis(1));
        let backend = Box::new(FussyBackend {
            inner: scan_backend(30),
        });
        let scheduler = BatchScheduler::start(backend, &config);
        let bad = scheduler.submit(Vector::new(vec![1.0, 2.0]), QueryType::knn(1));
        assert!(
            bad.recv_timeout(Duration::from_secs(5)).is_err(),
            "panicked batch must drop its reply channel"
        );
        let good = scheduler.submit(Vector::new(vec![7.0]), QueryType::knn(1));
        let reply = good
            .recv_timeout(Duration::from_secs(5))
            .expect("worker must keep serving after a backend panic");
        assert_eq!(reply.answers[0].id.0, 7);
    }

    #[test]
    fn shutdown_disconnects_pending_reply_channels() {
        let config = ServerConfig::default().with_max_batch(2);
        let scheduler = BatchScheduler::start(scan_backend(20), &config);
        let m0 = scheduler.metrics();
        assert_eq!(m0.queries, 0);
        drop(scheduler); // joins the worker without panicking
    }
}

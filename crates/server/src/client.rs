//! The client library: a blocking connection speaking the frame protocol,
//! plus a fault-tolerant wrapper that reconnects and resubmits.

use crate::protocol::{
    read_message, write_message, CollectionInfo, Message, ProtocolError, ServiceMetrics,
};
use mq_core::{Answer, ExecutionStats, QueryType};
use mq_metric::Vector;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Protocol(ProtocolError),
    /// The server answered with an error message.
    Server(String),
    /// Admission control rejected the request; retry no sooner than the
    /// hinted delay. Deliberately *not* retried by [`RetryingClient`] —
    /// instant resubmission is exactly what backpressure asks against.
    Overloaded {
        /// Server's suggested minimum wait before retrying.
        retry_after_ms: u64,
    },
    /// The server refused the request with a typed reason (see
    /// [`crate::protocol::refusal`] for the codes).
    Refused {
        /// Machine-readable refusal code.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// The server's protocol version.
        server: u16,
        /// The version this client sent.
        client: u16,
    },
    /// The server answered with the wrong message type.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ClientError::Refused { code, detail } => {
                write!(f, "server refused (code {code}): {detail}")
            }
            ClientError::VersionMismatch { server, client } => write!(
                f,
                "protocol version mismatch: server speaks v{server}, client sent v{client}"
            ),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The answers of one remote query plus its batch's shared statistics —
/// the client-side view of a server reply.
#[derive(Clone, Debug)]
pub struct RemoteAnswers {
    /// Identifier of the batch that carried this query.
    pub batch_id: u64,
    /// Queries that shared the batch (> 1 means the server amortized page
    /// reads across concurrent clients).
    pub batch_size: u32,
    /// Execution statistics of the whole batch.
    pub stats: ExecutionStats,
    /// The answers, ascending by distance.
    pub answers: Vec<Answer>,
}

/// One blocking connection to a query server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    /// Connects with a per-address connect timeout. Each resolved address
    /// is tried in turn until one connects within `timeout`.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let mut last_err = None;
        for sock_addr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock_addr, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Self { stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no addresses to connect to",
            )
        }))
    }

    /// Sets a read timeout on the connection: a reply that takes longer
    /// surfaces as [`ClientError::Protocol`] with a timeout I/O error.
    /// `None` blocks forever (the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn call(&mut self, request: &Message) -> Result<Message, ClientError> {
        write_message(&mut self.stream, request)?;
        let response = read_message(&mut self.stream)?;
        match response {
            Message::Error(m) => Err(ClientError::Server(m)),
            Message::Overloaded { retry_after_ms } => {
                Err(ClientError::Overloaded { retry_after_ms })
            }
            Message::Refused { code, detail } => Err(ClientError::Refused { code, detail }),
            Message::VersionMismatch { server, client } => {
                Err(ClientError::VersionMismatch { server, client })
            }
            other => Ok(other),
        }
    }

    /// Sends one similarity query against the default collection and
    /// blocks until its batch flushed on the server and the answers
    /// arrive.
    pub fn query(
        &mut self,
        object: &Vector,
        qtype: &QueryType,
    ) -> Result<RemoteAnswers, ClientError> {
        self.query_in("", "", object, qtype)
    }

    /// [`query`](Self::query) against a named collection, attributed to a
    /// tenant for quota accounting. Empty strings mean the default
    /// collection / the anonymous tenant.
    pub fn query_in(
        &mut self,
        collection: &str,
        tenant: &str,
        object: &Vector,
        qtype: &QueryType,
    ) -> Result<RemoteAnswers, ClientError> {
        let response = self.call(&Message::Query {
            object: object.clone(),
            qtype: *qtype,
            collection: collection.to_string(),
            tenant: tenant.to_string(),
        })?;
        match response {
            Message::Answers {
                batch_id,
                batch_size,
                stats,
                answers,
            } => Ok(RemoteAnswers {
                batch_id,
                batch_size,
                stats,
                answers,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the default collection's aggregate counters.
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        self.stats_for("")
    }

    /// Fetches a named collection's aggregate counters ("" = default).
    pub fn stats_for(&mut self, collection: &str) -> Result<ServiceMetrics, ClientError> {
        match self.call(&Message::Stats {
            collection: collection.to_string(),
        })? {
            Message::StatsReply(m) => Ok(m),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's metric registry as Prometheus text exposition.
    /// Empty when the server runs without an attached recorder.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Message::MetricsRequest {
            collection: String::new(),
        })? {
            Message::MetricsReply(text) => Ok(text),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Creates a collection. With `source == ""` the collection starts
    /// empty at the declared dimensionality; otherwise `source` is a
    /// *server-side* `.mqdb` dataset path to load. Returns the server's
    /// acknowledgement text.
    pub fn create_collection(
        &mut self,
        name: &str,
        dim: u32,
        metric: &str,
        source: &str,
    ) -> Result<String, ClientError> {
        match self.call(&Message::CreateCollection {
            name: name.to_string(),
            dim,
            metric: metric.to_string(),
            source: source.to_string(),
        })? {
            Message::Ack(detail) => Ok(detail),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Drops a collection (refused while it has queries in flight).
    pub fn drop_collection(&mut self, name: &str) -> Result<String, ClientError> {
        match self.call(&Message::DropCollection {
            name: name.to_string(),
        })? {
            Message::Ack(detail) => Ok(detail),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Lists every collection the server is serving.
    pub fn list_collections(&mut self) -> Result<Vec<CollectionInfo>, ClientError> {
        match self.call(&Message::ListCollections)? {
            Message::CollectionList(infos) => Ok(infos),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// Knobs of the fault-tolerant [`RetryingClient`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Per-address connect timeout of every (re)connection attempt.
    pub connect_timeout: Duration,
    /// Read timeout applied to every connection; `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Transport failures tolerated per call before the error surfaces.
    /// 0 behaves like a plain [`Client`] with timeouts.
    pub max_retries: u32,
    /// Base delay of the exponential backoff between attempts (doubles
    /// per retry).
    pub backoff_base: Duration,
    /// Upper bound of the backoff delay.
    pub backoff_cap: Duration,
    /// Seed of the deterministic jitter: each sleep is scaled into
    /// [50%, 100%] of the capped exponential delay by a seeded generator,
    /// so a replayed seed reproduces the exact retry schedule.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x006d_7172_6574_7279, // "mqretry"
        }
    }
}

impl RetryConfig {
    /// Sets the number of tolerated transport failures per call.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the per-address connect timeout.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-reply read timeout (`None` blocks forever).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the backoff base and cap.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the jitter seed (replay a failing schedule exactly).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// A fault-tolerant client: on a transport failure (connection refused,
/// reset, read timeout) it reconnects and resubmits the request, with
/// bounded exponential backoff and seeded jitter between attempts.
///
/// Resubmission is safe because the protocol is purely read-only — a query
/// executed twice server-side yields the same answers and mutates nothing
/// (at worst it lands in a different batch, which only the reported
/// `batch_id`/`batch_size` reflect). Server-side errors
/// ([`ClientError::Server`]) and codec errors are *not* retried: the
/// transport worked, so a retry would just repeat the refusal.
pub struct RetryingClient {
    addr: String,
    config: RetryConfig,
    conn: Option<Client>,
    /// xorshift64* state for the jitter; never zero.
    jitter_state: u64,
    retries_performed: u64,
}

impl RetryingClient {
    /// Creates a client of `addr`; connections are opened lazily, so this
    /// never fails even while the server is still down.
    pub fn new(addr: impl Into<String>, config: RetryConfig) -> Self {
        // splitmix64 scramble so that neighboring seeds (42 vs 43) still
        // yield unrelated jitter streams; `| 1` keeps xorshift alive.
        let mut z = config.jitter_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            addr: addr.into(),
            config,
            conn: None,
            jitter_state: (z ^ (z >> 31)) | 1,
            retries_performed: 0,
        }
    }

    /// Transport-level retries performed over the client's lifetime —
    /// 0 means every call succeeded on its first attempt.
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// Sends one similarity query, transparently reconnecting and
    /// resubmitting on transport failures within the retry budget.
    pub fn query(
        &mut self,
        object: &Vector,
        qtype: &QueryType,
    ) -> Result<RemoteAnswers, ClientError> {
        self.with_retries(|client| client.query(object, qtype))
    }

    /// [`query`](Self::query) against a named collection under a tenant.
    /// `Overloaded` and `Refused` replies surface immediately — the
    /// transport worked, and hammering a backpressure signal with instant
    /// retries would defeat it.
    pub fn query_in(
        &mut self,
        collection: &str,
        tenant: &str,
        object: &Vector,
        qtype: &QueryType,
    ) -> Result<RemoteAnswers, ClientError> {
        self.with_retries(|client| client.query_in(collection, tenant, object, qtype))
    }

    /// Fetches the server's aggregate counters, with the same retry
    /// behavior as [`query`](Self::query).
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        self.with_retries(|client| client.stats())
    }

    /// Fetches a named collection's counters, with the same retry
    /// behavior as [`query`](Self::query).
    pub fn stats_for(&mut self, collection: &str) -> Result<ServiceMetrics, ClientError> {
        self.with_retries(|client| client.stats_for(collection))
    }

    /// Fetches the server's metric exposition, with the same retry
    /// behavior as [`query`](Self::query).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.with_retries(|client| client.metrics())
    }

    /// Creates a collection, with the same retry behavior as
    /// [`query`](Self::query). Safe to resubmit: a create that actually
    /// succeeded before the reply was lost answers `COLLECTION_EXISTS` on
    /// the retry, which the caller can treat as confirmation.
    pub fn create_collection(
        &mut self,
        name: &str,
        dim: u32,
        metric: &str,
        source: &str,
    ) -> Result<String, ClientError> {
        self.with_retries(|client| client.create_collection(name, dim, metric, source))
    }

    /// Drops a collection, with the same retry behavior as
    /// [`query`](Self::query).
    pub fn drop_collection(&mut self, name: &str) -> Result<String, ClientError> {
        self.with_retries(|client| client.drop_collection(name))
    }

    /// Lists every collection, with the same retry behavior as
    /// [`query`](Self::query).
    pub fn list_collections(&mut self) -> Result<Vec<CollectionInfo>, ClientError> {
        self.with_retries(|client| client.list_collections())
    }

    fn with_retries<T>(
        &mut self,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self.connected().and_then(&mut call);
            match result {
                Ok(v) => return Ok(v),
                // Only transport failures are worth a reconnect: the
                // request may never have reached the server, or the reply
                // was lost. Anything else means the transport worked.
                Err(ClientError::Protocol(ProtocolError::Io(_)))
                    if attempt < self.config.max_retries =>
                {
                    self.conn = None; // the stream is in an unknown state
                    self.retries_performed += 1;
                    std::thread::sleep(self.backoff_delay(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The connection, (re)established on demand.
    fn connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let client = Client::connect_timeout(self.addr.as_str(), self.config.connect_timeout)
                .map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
            client
                .set_read_timeout(self.config.read_timeout)
                .map_err(|e| ClientError::Protocol(ProtocolError::Io(e)))?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Deterministic jittered backoff: `base * 2^attempt` capped at
    /// `backoff_cap`, scaled into [50%, 100%] by the seeded generator.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.config.backoff_cap);
        // xorshift64*: cheap, deterministic, never zero.
        let mut x = self.jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter_state = x;
        let unit = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let config = RetryConfig::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80))
            .with_jitter_seed(42);
        let mut a = RetryingClient::new("127.0.0.1:1", config);
        let mut b = RetryingClient::new("127.0.0.1:1", config);
        let delays: Vec<Duration> = (0..6).map(|i| a.backoff_delay(i)).collect();
        let replay: Vec<Duration> = (0..6).map(|i| b.backoff_delay(i)).collect();
        assert_eq!(delays, replay, "same seed, same schedule");
        for (i, d) in delays.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(80));
            assert!(*d >= exp.mul_f64(0.5) && *d <= exp, "attempt {i}: {d:?}");
        }
        // Different seed, different schedule.
        let mut c = RetryingClient::new("127.0.0.1:1", config.with_jitter_seed(43));
        let other: Vec<Duration> = (0..6).map(|i| c.backoff_delay(i)).collect();
        assert_ne!(delays, other);
    }

    #[test]
    fn exhausted_budget_surfaces_transport_error() {
        // Nothing listens on a reserved port of the discard range; each
        // attempt fails to connect, and the budget bounds the attempts.
        let config = RetryConfig::default()
            .with_max_retries(2)
            .with_connect_timeout(Duration::from_millis(50))
            .with_backoff(Duration::from_millis(1), Duration::from_millis(2));
        let mut client = RetryingClient::new("127.0.0.1:9", config);
        let err = client.query(&Vector::new(vec![1.0]), &QueryType::knn(1));
        assert!(matches!(
            err,
            Err(ClientError::Protocol(ProtocolError::Io(_)))
        ));
        assert_eq!(client.retries_performed(), 2);
    }
}

//! The client library: a blocking connection speaking the frame protocol.

use crate::protocol::{read_message, write_message, Message, ProtocolError, ServiceMetrics};
use mq_core::{Answer, ExecutionStats, QueryType};
use mq_metric::Vector;
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Protocol(ProtocolError),
    /// The server answered with an error message.
    Server(String),
    /// The server answered with the wrong message type.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The answers of one remote query plus its batch's shared statistics —
/// the client-side view of a server reply.
#[derive(Clone, Debug)]
pub struct RemoteAnswers {
    /// Identifier of the batch that carried this query.
    pub batch_id: u64,
    /// Queries that shared the batch (> 1 means the server amortized page
    /// reads across concurrent clients).
    pub batch_size: u32,
    /// Execution statistics of the whole batch.
    pub stats: ExecutionStats,
    /// The answers, ascending by distance.
    pub answers: Vec<Answer>,
}

/// One blocking connection to a query server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }

    fn call(&mut self, request: &Message) -> Result<Message, ClientError> {
        write_message(&mut self.stream, request)?;
        let response = read_message(&mut self.stream)?;
        if let Message::Error(m) = response {
            return Err(ClientError::Server(m));
        }
        Ok(response)
    }

    /// Sends one similarity query and blocks until its batch flushed on
    /// the server and the answers arrive.
    pub fn query(
        &mut self,
        object: &Vector,
        qtype: &QueryType,
    ) -> Result<RemoteAnswers, ClientError> {
        let response = self.call(&Message::Query {
            object: object.clone(),
            qtype: *qtype,
        })?;
        match response {
            Message::Answers {
                batch_id,
                batch_size,
                stats,
                answers,
            } => Ok(RemoteAnswers {
                batch_id,
                batch_size,
                stats,
                answers,
            }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the server's aggregate counters.
    pub fn stats(&mut self) -> Result<ServiceMetrics, ClientError> {
        match self.call(&Message::Stats)? {
            Message::StatsReply(m) => Ok(m),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

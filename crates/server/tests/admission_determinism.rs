//! Admission-control determinism: the same seed and the same offered
//! plan must produce the same admitted/rejected split at the quota
//! boundary, and a rejected request must never reach the engine — its
//! fingerprints (distance calculations, query counters) stay exactly
//! where they were.

use mq_core::QueryType;
use mq_index::LinearScan;
use mq_metric::{ObjectId, Vector};
use mq_obs::Recorder;
use mq_server::{
    AdmissionController, Client, ClientError, QueryServer, QuotaConfig, ServerConfig,
    SingleEngineBackend,
};
use mq_storage::{Dataset, PageLayout, PagedDatabase};
use std::time::Duration;

fn dataset(n: usize) -> Dataset<Vector> {
    let mut x = 0x51ed_270b_a2fc_e1f5u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    Dataset::new(
        (0..n)
            .map(|_| Vector::new((0..3).map(|_| (next() * 100.0) as f32).collect::<Vec<_>>()))
            .collect(),
    )
}

fn backend(ds: &Dataset<Vector>) -> Box<SingleEngineBackend> {
    let db = PagedDatabase::pack(ds, PageLayout::new(512, 16));
    let scan = LinearScan::new(db.page_count());
    Box::new(SingleEngineBackend::new(db, Box::new(scan), 0.05, true))
}

/// A deterministic offered plan: (tenant, logical arrival time).
fn offered_plan(seed: u64, n: usize) -> Vec<(String, Duration)> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut t = Duration::ZERO;
    (0..n)
        .map(|_| {
            let tenant = format!("tenant-{}", next() % 3);
            t += Duration::from_micros(500 + next() % 4_000);
            (tenant, t)
        })
        .collect()
}

/// Replays `plan` against a fresh controller, returning the admit/reject
/// outcome per request.
fn replay(plan: &[(String, Duration)], quota: QuotaConfig) -> Vec<bool> {
    let controller = AdmissionController::new(0, Some(quota));
    plan.iter()
        .map(|(tenant, at)| controller.admit(tenant, 0, *at, None).is_ok())
        .collect()
}

#[test]
fn same_seed_and_plan_give_identical_admission_split() {
    // The plan offers ~400 qps split over 3 tenants (~133 qps each); a
    // 50 qps per-tenant quota forces a genuine mix of outcomes.
    let quota = QuotaConfig {
        rate: 50.0,
        burst: 4.0,
    };
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let plan = offered_plan(seed, 300);
        let first = replay(&plan, quota);
        let second = replay(&plan, quota);
        assert_eq!(first, second, "seed {seed}: split not reproducible");

        let admitted = first.iter().filter(|&&a| a).count();
        assert!(
            admitted > 0 && admitted < plan.len(),
            "seed {seed}: plan must straddle the quota boundary \
             (admitted {admitted}/{})",
            plan.len()
        );
    }

    // Different seeds produce different offered plans, hence (almost
    // surely) different splits — guards against a controller that
    // ignores its inputs.
    let a = replay(&offered_plan(1, 300), quota);
    let b = replay(&offered_plan(2, 300), quota);
    assert_ne!(a, b, "independent plans gave identical splits");
}

#[test]
fn rejected_requests_never_touch_the_engine() {
    let ds = dataset(400);
    let recorder = Recorder::enabled();
    // burst 2, negligible refill: exactly two queries from one tenant get
    // through, the rest are rejected before scheduling.
    let config = ServerConfig::default()
        .with_max_batch(2)
        .with_max_wait(Duration::from_millis(5))
        .with_quota(Some(QuotaConfig {
            rate: 0.0001,
            burst: 2.0,
        }));
    let mut server =
        QueryServer::bind_with_recorder("127.0.0.1:0", backend(&ds), &config, &recorder)
            .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let q = ds.object(ObjectId(5)).clone();
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..10 {
        match client.query_in("", "metered", &q, &QueryType::knn(3)) {
            Ok(reply) => {
                admitted += 1;
                assert_eq!(reply.answers.len(), 3);
            }
            Err(ClientError::Overloaded { retry_after_ms }) => {
                rejected += 1;
                assert!(retry_after_ms >= 1, "retry hint must be positive");
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(admitted, 2, "burst of 2 admits exactly 2");
    assert_eq!(rejected, 8);

    // The engine only ever saw the admitted queries: the scheduler's
    // query counter and the admission counters agree, and no distance
    // work was billed for rejected requests.
    let metrics = server.metrics();
    assert_eq!(metrics.queries, admitted);
    assert!(
        metrics.totals.dist_calcs > 0,
        "admitted queries did real distance work"
    );

    let exposition = recorder.render();
    let series = |name: &str| -> u64 {
        exposition
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse::<f64>().ok())
            .map(|v| v as u64)
            .unwrap_or_else(|| panic!("series {name} missing from exposition"))
    };
    assert_eq!(series("mq_front_admitted_total"), admitted);
    assert_eq!(series("mq_front_rejected_total"), rejected);
    assert_eq!(series("mq_server_queries_total"), admitted);

    // Per-query distance-calc average stays what two admitted queries
    // cost; had rejected queries leaked into batches the counter would
    // be ~5x higher.
    let dist_per_query = metrics.totals.dist_calcs / admitted;
    assert!(
        metrics.totals.dist_calcs <= dist_per_query * admitted,
        "distance work exceeds the admitted-query budget"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn queue_depth_bound_rejects_with_retry_hint_over_the_wire() {
    let ds = dataset(300);
    // max_queue 1 with a long batch window: the first query parks in the
    // batch, the second hits the depth bound.
    let config = ServerConfig::default()
        .with_max_batch(8)
        .with_max_wait(Duration::from_secs(1))
        .with_max_queue(1);
    let mut server = QueryServer::bind("127.0.0.1:0", backend(&ds), &config).expect("bind");
    let addr = server.local_addr();

    let q = ds.object(ObjectId(2)).clone();
    std::thread::scope(|scope| {
        let parked = scope.spawn(|| {
            let mut c = Client::connect(addr).expect("connect");
            c.query(&q, &QueryType::knn(2)).expect("parked query")
        });

        // Wait until the parked query observably occupies the queue slot,
        // then the very next query must be rejected with a bounded hint.
        let deadline = std::time::Instant::now() + Duration::from_millis(800);
        while server.in_flight() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(100));
        }
        assert!(server.in_flight() >= 1, "parked query never showed up");

        let mut c = Client::connect(addr).expect("connect");
        match c.query(&q, &QueryType::knn(2)) {
            Err(ClientError::Overloaded { retry_after_ms }) => {
                assert!((1..=1000).contains(&retry_after_ms));
            }
            other => panic!("expected Overloaded at the depth bound, got {other:?}"),
        }
        parked.join().expect("parked thread");
    });

    server.shutdown();
}

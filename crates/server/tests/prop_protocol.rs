//! Property tests for the wire protocol: arbitrary messages survive an
//! encode→decode roundtrip, and the two canonical corruption modes —
//! truncated frames and bad magic — are always detected.

use mq_core::{Answer, AvoidanceStats, ExecutionStats, QueryType};
use mq_metric::{ObjectId, Vector};
use mq_server::protocol::{Message, ProtocolError, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use mq_storage::IoStats;
use proptest::prelude::*;
use std::time::Duration;

fn arb_vector() -> impl Strategy<Value = Vector> {
    prop::collection::vec(-1000.0f32..1000.0, 1..12).prop_map(Vector::new)
}

fn arb_qtype() -> impl Strategy<Value = QueryType> {
    prop_oneof![
        // Negative ranges are legal on the wire: dot-product "score at
        // least s" thresholds arrive as ε = -s.
        (-100.0f64..100.0).prop_map(QueryType::range),
        (1usize..50).prop_map(QueryType::knn),
        (1usize..50, 0.0f64..100.0).prop_map(|(k, eps)| QueryType::bounded_knn(k, eps)),
    ]
}

fn arb_stats() -> impl Strategy<Value = ExecutionStats> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000),
        0u64..1_000_000_000,
    )
        .prop_map(
            |((lr, bh, pr), (rr, sr, dc), (tr, av, co), (pf, ph), ns)| ExecutionStats {
                io: IoStats {
                    logical_reads: lr,
                    buffer_hits: bh,
                    physical_reads: pr,
                    random_reads: rr,
                    sequential_reads: sr,
                    prefetch_reads: pf,
                    prefetched_hits: ph,
                },
                dist_calcs: dc,
                avoidance: AvoidanceStats {
                    tries: tr,
                    avoided: av,
                    computed: co,
                },
                elapsed: Duration::from_nanos(ns),
            },
        )
}

fn arb_answers() -> impl Strategy<Value = Vec<Answer>> {
    prop::collection::vec(
        (0u32..100_000, 0.0f64..1e6).prop_map(|(id, distance)| Answer {
            id: ObjectId(id),
            distance,
        }),
        0..40,
    )
}

/// Collection/tenant names as they appear on the wire: the protocol
/// itself accepts any UTF-8 up to 64 KiB (registry-level validation is a
/// separate layer), so the roundtrip property exercises unicode and
/// punctuation too.
fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..6, 0..24).prop_map(|picks| {
        picks
            .iter()
            .map(|&c| match c {
                0 => 'a',
                1 => 'Z',
                2 => '7',
                3 => '-',
                4 => '.',
                _ => 'é',
            })
            .collect()
    })
}

fn arb_collection_info() -> impl Strategy<Value = mq_server::CollectionInfo> {
    (
        arb_name(),
        0u32..4096,
        arb_name(),
        0u64..1_000_000,
        0u64..512,
    )
        .prop_map(
            |(name, dim, metric, objects, in_flight)| mq_server::CollectionInfo {
                name,
                dim,
                metric,
                objects,
                in_flight,
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_vector(), arb_qtype(), arb_name(), arb_name()).prop_map(
            |(object, qtype, collection, tenant)| Message::Query {
                object,
                qtype,
                collection,
                tenant,
            }
        ),
        arb_name().prop_map(|collection| Message::Stats { collection }),
        arb_name().prop_map(|collection| Message::MetricsRequest { collection }),
        // v3 admin opcodes.
        (arb_name(), 0u32..4096, arb_name(), arb_name()).prop_map(|(name, dim, metric, source)| {
            Message::CreateCollection {
                name,
                dim,
                metric,
                source,
            }
        }),
        arb_name().prop_map(|name| Message::DropCollection { name }),
        Just(Message::ListCollections),
        prop::collection::vec(arb_collection_info(), 0..8).prop_map(Message::CollectionList),
        arb_name().prop_map(Message::Ack),
        (0u16..8, arb_name()).prop_map(|(code, detail)| Message::Refused { code, detail }),
        (0u64..1_000_000).prop_map(|retry_after_ms| Message::Overloaded { retry_after_ms }),
        (any::<u16>(), any::<u16>())
            .prop_map(|(server, client)| Message::VersionMismatch { server, client }),
        // Exposition-shaped and arbitrary text alike must survive the
        // roundtrip and every corruption property below.
        prop_oneof![
            Just(Message::MetricsReply(String::new())),
            Just(Message::MetricsReply(
                "# HELP mq_core_steps_total Steps.\n# TYPE mq_core_steps_total counter\n\
                 mq_core_steps_total 42\n"
                    .to_string()
            )),
            prop::collection::vec((0u8..5, any::<bool>()), 0..120).prop_map(|picks| {
                let text: String = picks
                    .iter()
                    .map(|&(c, b)| match (c, b) {
                        (0, _) => 'x',
                        (1, _) => 'é',
                        (2, true) => '\n',
                        (2, false) => '"',
                        (3, true) => '{',
                        (3, false) => '}',
                        (4, true) => ' ',
                        _ => '9',
                    })
                    .collect();
                Message::MetricsReply(text)
            }),
        ],
        (0u64..1_000_000, 1u32..200, arb_stats(), arb_answers()).prop_map(
            |(batch_id, batch_size, stats, answers)| Message::Answers {
                batch_id,
                batch_size,
                stats,
                answers,
            }
        ),
        (0u64..1_000_000, 0u64..1_000_000, 0u32..500, arb_stats()).prop_map(
            |(queries, batches, max_batch_size, totals)| {
                Message::StatsReply(mq_server::ServiceMetrics {
                    queries,
                    batches,
                    max_batch_size,
                    totals,
                })
            }
        ),
        prop::collection::vec(any::<bool>(), 0..64).prop_map(|bits| {
            let text: String = bits.iter().map(|&b| if b { 'x' } else { 'é' }).collect();
            Message::Error(text)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(msg in arb_message()) {
        let frame = msg.encode();
        let (decoded, used) = Message::decode(&frame).expect("well-formed frame must decode");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(used, frame.len());
    }

    #[test]
    fn every_truncation_is_detected(msg in arb_message(), cut_seed in 0usize..10_000) {
        let frame = msg.encode();
        // Any strict prefix must decode to Truncated — never to a wrong
        // message, never to a panic. (Prefixes shorter than the magic
        // can't be told apart from a foreign protocol and may also report
        // BadMagic; from the magic onward only Truncated is acceptable.)
        let cut = cut_seed % frame.len();
        match Message::decode(&frame[..cut]) {
            Err(ProtocolError::Truncated) => {}
            Err(ProtocolError::BadMagic(_)) => prop_assert!(cut < MAGIC.len()),
            other => prop_assert!(false, "prefix of {cut} bytes decoded to {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_detected(msg in arb_message(), pos in 0usize..4, bit in 0u8..8) {
        let mut frame = msg.encode().to_vec();
        frame[pos] ^= 1 << bit;
        prop_assert!(
            matches!(Message::decode(&frame), Err(ProtocolError::BadMagic(_))),
            "corrupted magic byte {pos} went undetected"
        );
    }

    #[test]
    fn payload_corruption_never_panics(msg in arb_message(), pos_seed in 0usize..10_000, byte in any::<u8>()) {
        let mut frame = msg.encode().to_vec();
        let header = 10;
        if frame.len() > header {
            let pos = header + pos_seed % (frame.len() - header);
            frame[pos] = byte;
            // Any outcome is fine — decoded (the flip may be benign or
            // produce another valid message) or a clean error — as long
            // as it does not panic or read out of bounds.
            let _ = Message::decode(&frame);
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation(
        extra in prop_oneof![Just(1u64), 1u64..1_000_000, Just(u32::MAX as u64 - MAX_PAYLOAD as u64)],
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A header that *claims* a payload beyond the limit must be
        // refused from the 10 header bytes alone — typed Malformed, no
        // attempt to read (or allocate) the declared gigabytes.
        let len = (MAX_PAYLOAD as u64 + extra) as u32;
        let mut frame = Vec::with_capacity(HEADER_LEN + tail.len());
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&tail);
        match Message::decode(&frame) {
            Err(ProtocolError::Malformed(reason)) => {
                prop_assert!(
                    reason.contains("exceeds"),
                    "oversized length must be named in the error: {reason}"
                );
            }
            other => prop_assert!(false, "declared {len} bytes decoded to {other:?}"),
        }
    }

    #[test]
    fn length_beyond_buffer_reads_as_truncated_never_over(
        declared in 1u32..10_000,
        provided_seed in 0usize..10_000,
    ) {
        // A well-formed header whose declared payload extends past the
        // buffer must report Truncated — decode may never read past the
        // bytes it was handed.
        let provided = provided_seed % declared as usize;
        let mut frame = Vec::with_capacity(HEADER_LEN + provided);
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&VERSION.to_le_bytes());
        frame.extend_from_slice(&declared.to_le_bytes());
        frame.resize(HEADER_LEN + provided, 0xAB);
        prop_assert!(
            matches!(Message::decode(&frame), Err(ProtocolError::Truncated)),
            "declared {declared}, provided {provided}: must be Truncated"
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic_and_never_over_read(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Fully random input: decode returns a typed error or a message,
        // and on success the consumed count stays within the input.
        if let Ok((_, used)) = Message::decode(&bytes) {
            prop_assert!(used <= bytes.len(), "consumed {used} of {} bytes", bytes.len());
        }
    }

    #[test]
    fn any_single_bit_flip_is_a_clean_outcome(
        msg in arb_message(),
        pos_seed in 0usize..100_000,
        bit in 0u8..8,
    ) {
        // Flip one bit anywhere — magic, version, length, or payload.
        // The decoder must produce a typed error or a (possibly different)
        // valid message; it must never panic and never consume more bytes
        // than the frame holds.
        let mut frame = msg.encode().to_vec();
        let pos = pos_seed % frame.len();
        frame[pos] ^= 1 << bit;
        match Message::decode(&frame) {
            Ok((_, used)) => prop_assert!(used <= frame.len()),
            Err(
                ProtocolError::BadMagic(_)
                | ProtocolError::BadVersion(_)
                | ProtocolError::Truncated
                | ProtocolError::UnknownKind(_)
                | ProtocolError::Malformed(_),
            ) => {}
            Err(other) => prop_assert!(false, "bit flip at {pos} gave unexpected error {other:?}"),
        }
    }
}

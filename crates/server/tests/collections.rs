//! Multi-collection loopback suite: admin opcodes racing live query
//! traffic. Creating and dropping collections must never perturb the
//! answers of in-flight batches on *other* collections (bit-identical
//! to a single-collection oracle), and dropping a busy collection must
//! fail with a typed error — never a partial answer.

use mq_core::{QueryEngine, QueryType};
use mq_index::LinearScan;
use mq_metric::{Euclidean, ObjectId, Vector};
use mq_server::{refusal, Client, ClientError, QueryServer, ServerConfig, SingleEngineBackend};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn dataset(n: usize, salt: u64) -> Dataset<Vector> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ salt;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    Dataset::new(
        (0..n)
            .map(|_| Vector::new((0..3).map(|_| (next() * 100.0) as f32).collect::<Vec<_>>()))
            .collect(),
    )
}

fn layout() -> PageLayout {
    PageLayout::new(512, 16)
}

fn backend(ds: &Dataset<Vector>) -> Box<SingleEngineBackend> {
    let db = PagedDatabase::pack(ds, layout());
    let scan = LinearScan::new(db.page_count());
    Box::new(SingleEngineBackend::new(db, Box::new(scan), 0.05, true))
}

fn bits(answers: &[mq_core::Answer]) -> Vec<(u32, u64)> {
    answers
        .iter()
        .map(|a| (a.id.0, a.distance.to_bits()))
        .collect()
}

#[test]
fn create_drop_churn_never_perturbs_in_flight_batches() {
    let ds = dataset(500, 1);
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(5));
    let mut server = QueryServer::bind("127.0.0.1:0", backend(&ds), &config).expect("bind");
    let addr = server.local_addr();

    // Single-collection oracle computed up front.
    let queries: Vec<(Vector, QueryType)> = (0..40)
        .map(|i| {
            let q = ds.object(ObjectId((i * 11) as u32)).clone();
            let t = if i % 2 == 0 {
                QueryType::knn(5)
            } else {
                QueryType::range(15.0)
            };
            (q, t)
        })
        .collect();
    let oracle: Vec<Vec<(u32, u64)>> = {
        let db = PagedDatabase::pack(&ds, layout());
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::new(db, 0.05);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        queries
            .iter()
            .map(|(q, t)| {
                engine
                    .similarity_query(q, t)
                    .as_slice()
                    .iter()
                    .map(|a| (a.id.0, a.distance.to_bits()))
                    .collect()
            })
            .collect()
    };

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Churn thread: create/drop scratch collections as fast as the
        // server will take them, racing the query batches below.
        let churn = scope.spawn(|| {
            let mut admin = Client::connect(addr).expect("connect admin");
            let mut cycles = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let name = format!("scratch-{}", cycles % 4);
                let _ = admin.create_collection(&name, 8, "euclidean", "");
                let _ = admin.drop_collection(&name);
                cycles += 1;
            }
            cycles
        });

        // Query threads on the default collection, compared to the oracle.
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let queries = &queries;
                let oracle = &oracle;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect worker");
                    for (i, (q, t)) in queries.iter().enumerate().skip(w).step_by(4) {
                        let reply = client.query(q, t).expect("query");
                        assert_eq!(
                            bits(&reply.answers),
                            oracle[i],
                            "answer {i} perturbed by collection churn"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
        let cycles = churn.join().expect("churn");
        assert!(cycles > 0, "churn thread never ran");
    });

    server.shutdown();
}

#[test]
fn dropping_a_busy_collection_is_a_typed_refusal_not_a_partial_answer() {
    let ds = dataset(4000, 2);
    // A wide batch window keeps queries in flight long enough for the
    // drop to race them deterministically.
    let config = ServerConfig::default()
        .with_max_batch(64)
        .with_max_wait(Duration::from_millis(400));
    let mut server = QueryServer::bind("127.0.0.1:0", backend(&ds), &config).expect("bind");
    let addr = server.local_addr();

    // Queries against the *default* collection are what hold it busy;
    // default is additionally protected as undropable, so use a second
    // collection for the busy-drop race.
    let mut admin = Client::connect(addr).expect("connect admin");
    admin
        .create_collection("busy", 3, "euclidean", "")
        .expect("create");

    std::thread::scope(|scope| {
        // A query into the empty "busy" collection sits in its batch
        // window for up to max_wait; the drop below races it.
        let querier = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect querier");
            client.query_in("busy", "", &Vector::new(vec![0.0; 3]), &QueryType::knn(1))
        });

        // Wait until the query is observably in flight, so the drop
        // below is guaranteed to hit a busy collection.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut in_flight = false;
        while std::time::Instant::now() < deadline && !in_flight {
            let listed = admin.list_collections().expect("list");
            in_flight = listed.iter().any(|c| c.name == "busy" && c.in_flight > 0);
        }
        assert!(in_flight, "query never showed up as in flight");

        // Dropping a busy collection must be a typed BUSY refusal.
        let err = admin
            .drop_collection("busy")
            .expect_err("drop of a busy collection must be refused");
        match err {
            ClientError::Refused { code, .. } => assert_eq!(code, refusal::COLLECTION_BUSY),
            other => panic!("expected Refused(BUSY), got {other:?}"),
        }

        // The in-flight query must complete with a full answer — never a
        // partial one, never a hang.
        let reply = querier.join().expect("querier thread");
        let reply = reply.expect("in-flight query must survive the refused drop");
        assert!(reply.answers.is_empty(), "empty collection answers nothing");

        // Once the traffic is gone the drop goes through.
        let mut dropped = false;
        for _ in 0..1000 {
            match admin.drop_collection("busy") {
                Ok(_) => {
                    dropped = true;
                    break;
                }
                Err(ClientError::Refused { code, .. }) if code == refusal::COLLECTION_BUSY => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(other) => panic!("unexpected drop error: {other:?}"),
            }
        }
        assert!(dropped, "idle collection never became dropable");
    });

    // Dropping the default collection is always refused.
    let err = admin
        .drop_collection("default")
        .expect_err("default is undropable");
    match err {
        ClientError::Refused { code, .. } => assert_eq!(code, refusal::BAD_COLLECTION_SPEC),
        other => panic!("expected Refused, got {other:?}"),
    }

    drop(admin);
    server.shutdown();
}

#[test]
fn collections_are_isolated_per_scheduler() {
    // Two collections with different datasets on one server: batches must
    // never mix them, so each stays bit-identical to its own oracle.
    let ds_a = dataset(300, 7);
    let ds_b = dataset(300, 8);
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(20));
    let mut server = QueryServer::bind("127.0.0.1:0", backend(&ds_a), &config).expect("bind");
    server
        .registry()
        .install("b", backend(&ds_b), &config, None)
        .expect("install second collection");
    let addr = server.local_addr();

    let oracle = |ds: &Dataset<Vector>, q: &Vector, t: &QueryType| -> Vec<(u32, u64)> {
        let db = PagedDatabase::pack(ds, layout());
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::new(db, 0.05);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        engine
            .similarity_query(q, t)
            .as_slice()
            .iter()
            .map(|a| (a.id.0, a.distance.to_bits()))
            .collect()
    };

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..6u32 {
            let (ds, name) = if i % 2 == 0 {
                (&ds_a, "")
            } else {
                (&ds_b, "b")
            };
            let q = ds.object(ObjectId(i * 17)).clone();
            let t = QueryType::knn(4);
            let want = oracle(ds, &q, &t);
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client.query_in(name, "", &q, &t).expect("query");
                assert_eq!(bits(&reply.answers), want, "collection {name:?} leaked");
            }));
        }
        for h in handles {
            h.join().expect("client");
        }
    });

    server.shutdown();
}

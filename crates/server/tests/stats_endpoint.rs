//! Persist-then-serve observability test: save a database to disk in the
//! MQDB format, load and serve it over loopback with a wired recorder,
//! push a batch of client queries through, then scrape the metrics
//! endpoint and check that the exposition parses and carries the series
//! every layer was supposed to register.

use mq_core::QueryType;
use mq_index::LinearScan;
use mq_metric::{ObjectId, Vector};
use mq_obs::{Recorder, Registry};
use mq_server::{
    build_backend_with_recorder, Client, ExecutionMode, QueryServer, ServerConfig, StoreChoice,
};
use mq_storage::{persist, Dataset, PageLayout, PagedDatabase, VectorCodec};
use std::sync::Arc;
use std::time::Duration;

fn dataset(n: usize) -> Dataset<Vector> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    Dataset::new(
        (0..n)
            .map(|_| Vector::new((0..3).map(|_| (next() * 100.0) as f32).collect::<Vec<_>>()))
            .collect(),
    )
}

/// Saves a fresh database under a unique temp path and loads it back —
/// the `mq generate` → `mq serve` workflow without the CLI.
fn persisted_db(tag: &str, n: usize) -> PagedDatabase<Vector> {
    let path = std::env::temp_dir().join(format!(
        "mq-stats-endpoint-{}-{tag}.mqdb",
        std::process::id()
    ));
    let ds = dataset(n);
    let db = PagedDatabase::pack(&ds, PageLayout::new(512, 16));
    persist::save(&db, &VectorCodec, &path).expect("save mqdb");
    let loaded = persist::load(&VectorCodec, &path).expect("load mqdb");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.object_count(), n);
    loaded
}

/// Every non-comment line of a Prometheus exposition is `series value`
/// with a parseable finite f64 value.
fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("no value separator in line: {line}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in line: {line}"));
        assert!(value.is_finite(), "non-finite value in line: {line}");
        samples.push((series.to_string(), value));
    }
    samples
}

fn value(samples: &[(String, f64)], series: &str) -> f64 {
    samples
        .iter()
        .find(|(s, _)| s == series)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("series {series} missing from scrape"))
}

fn sum_with_prefix(samples: &[(String, f64)], prefix: &str) -> f64 {
    samples
        .iter()
        .filter(|(s, _)| s.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

/// Fires `n` concurrent single-query clients so the scheduler actually
/// forms multi-query batches (the waiting clients are what the paper's
/// m-block batches online).
fn run_queries(addr: std::net::SocketAddr, db: &PagedDatabase<Vector>, n: usize) {
    std::thread::scope(|scope| {
        for i in 0..n {
            let q = db
                .object(ObjectId((i * 37 % db.object_count()) as u32))
                .clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .query(&q, &QueryType::knn(5))
                    .expect("query over loopback");
                assert_eq!(reply.answers.len(), 5);
            });
        }
    });
}

#[test]
fn persisted_database_serves_scrapeable_metrics() {
    let db = persisted_db("single", 600);
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(250))
        .with_threads(2)
        .with_prefetch_depth(2);
    let registry = Arc::new(Registry::new());
    let recorder = Recorder::new(Arc::clone(&registry));
    let layout = db.layout();
    let backend = build_backend_with_recorder(&db, &config, 0.10, &recorder, move |ds| {
        let db = PagedDatabase::pack(ds, layout);
        (Box::new(LinearScan::new(db.page_count())) as _, db)
    })
    .expect("backend");
    let mut server = QueryServer::bind_with_recorder("127.0.0.1:0", backend, &config, &recorder)
        .expect("bind loopback");

    run_queries(server.local_addr(), &db, 12);

    let text = Client::connect(server.local_addr())
        .expect("connect for scrape")
        .metrics()
        .expect("metrics scrape");
    let samples = parse_exposition(&text);

    // Distance calculations: performed vs. avoided, plus avoidance tries.
    let performed = value(
        &samples,
        "mq_core_distance_calculations_total{outcome=\"performed\"}",
    );
    assert!(performed > 0.0, "no distance calculations recorded");
    let avoided = value(
        &samples,
        "mq_core_distance_calculations_total{outcome=\"avoided\"}",
    );
    assert!(avoided > 0.0, "batched kNN should avoid some calculations");
    assert!(value(&samples, "mq_core_avoidance_tries_total") >= avoided);
    assert_eq!(value(&samples, "mq_core_queries_completed_total"), 12.0);

    // Buffer hit ratio: the derived gauge and its raw counters agree.
    let hits = value(
        &samples,
        "mq_storage_buffer_reads_total{outcome=\"hit\",policy=\"lru\"}",
    );
    let misses = value(
        &samples,
        "mq_storage_buffer_reads_total{outcome=\"miss\",policy=\"lru\"}",
    );
    assert!(hits + misses > 0.0);
    let ratio = value(&samples, "mq_storage_buffer_hit_ratio{policy=\"lru\"}");
    assert!((ratio - hits / (hits + misses)).abs() < 1e-9);

    // Prefetch hit ratio exists (depth 2 was configured).
    let prefetched = value(&samples, "mq_storage_prefetch_reads_total{policy=\"lru\"}");
    assert!(prefetched > 0.0, "prefetch depth 2 must stage pages");
    assert!(value(&samples, "mq_storage_prefetch_hit_ratio{policy=\"lru\"}") >= 0.0);

    // Scheduler batch-size histogram: its count equals the flush count
    // and the recorded queries match what the clients sent.
    let batch_count = value(&samples, "mq_server_batch_size_count");
    assert!(batch_count > 0.0);
    let flushes = sum_with_prefix(&samples, "mq_server_batches_total");
    assert_eq!(batch_count, flushes);
    assert_eq!(value(&samples, "mq_server_queries_total"), 12.0);
    assert!(value(&samples, "mq_server_queue_wait_seconds_count") == 12.0);

    // Worker pool: threads gauge and per-worker morsel counters. The
    // tiny test pages stay under the engine's parallel-work threshold, so
    // the counters are present but may legitimately still read zero.
    assert_eq!(value(&samples, "mq_pool_threads"), 2.0);
    for worker in 0..2 {
        assert!(
            value(
                &samples,
                &format!("mq_pool_morsels_claimed_total{{worker=\"{worker}\"}}"),
            ) >= 0.0
        );
    }

    // Stage spans fired.
    for stage in ["step", "page_fetch", "kernel_eval", "merge"] {
        let count = value(
            &samples,
            &format!("mq_core_stage_seconds_count{{stage=\"{stage}\"}}"),
        );
        assert!(count > 0.0, "stage {stage} never recorded");
    }

    // The in-process render agrees with the wire scrape modulo counters
    // still moving (it is taken after, so every counter is >=).
    assert!(!server.render_metrics().is_empty());
    server.shutdown();
}

#[test]
fn cluster_mode_scrape_reports_per_partition_counts() {
    let db = persisted_db("cluster", 600);
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(250))
        .with_mode(ExecutionMode::Cluster { servers: 3 });
    let registry = Arc::new(Registry::new());
    let recorder = Recorder::new(Arc::clone(&registry));
    let layout = db.layout();
    let backend = build_backend_with_recorder(&db, &config, 0.10, &recorder, move |ds| {
        let db = PagedDatabase::pack(ds, layout);
        (Box::new(LinearScan::new(db.page_count())) as _, db)
    })
    .expect("backend");
    let mut server = QueryServer::bind_with_recorder("127.0.0.1:0", backend, &config, &recorder)
        .expect("bind loopback");

    run_queries(server.local_addr(), &db, 9);

    let text = Client::connect(server.local_addr())
        .expect("connect for scrape")
        .metrics()
        .expect("metrics scrape");
    let samples = parse_exposition(&text);

    // Every query reached every reachable partition.
    for partition in 0..3 {
        let q = value(
            &samples,
            &format!("mq_cluster_partition_queries_total{{partition=\"{partition}\"}}"),
        );
        assert_eq!(q, 9.0, "partition {partition}");
        assert!(
            value(
                &samples,
                &format!(
                    "mq_cluster_partition_distance_calculations_total{{partition=\"{partition}\"}}"
                ),
            ) > 0.0
        );
    }
    server.shutdown();
}

#[test]
fn file_store_scrape_reports_store_series() {
    let db = persisted_db("filestore", 400);
    let dir = std::env::temp_dir().join(format!("mq-stats-endpoint-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig::default()
        .with_max_batch(2)
        .with_max_wait(Duration::from_millis(250))
        .with_store(StoreChoice::File(dir.clone()));
    let registry = Arc::new(Registry::new());
    let recorder = Recorder::new(Arc::clone(&registry));
    let layout = db.layout();
    let backend = build_backend_with_recorder(&db, &config, 0.10, &recorder, move |ds| {
        let db = PagedDatabase::pack(ds, layout);
        (Box::new(LinearScan::new(db.page_count())) as _, db)
    })
    .expect("backend");
    let mut server = QueryServer::bind_with_recorder("127.0.0.1:0", backend, &config, &recorder)
        .expect("bind loopback");

    run_queries(server.local_addr(), &db, 4);

    let text = Client::connect(server.local_addr())
        .expect("connect for scrape")
        .metrics()
        .expect("metrics scrape");
    let samples = parse_exposition(&text);

    // A fresh store was just created: the segment write fsync'd, and no
    // WAL record has ever been appended, replayed, or checkpointed away.
    assert!(value(&samples, "mq_store_fsyncs_total") >= 1.0);
    assert_eq!(value(&samples, "mq_store_wal_appends_total"), 0.0);
    assert_eq!(
        value(&samples, "mq_store_recovery_replayed_records_total"),
        0.0
    );
    assert_eq!(value(&samples, "mq_store_checkpoints_total"), 0.0);
    assert_eq!(value(&samples, "mq_store_page_rewrites_total"), 0.0);

    // The query path over the file store registers the same engine and
    // buffer series the simulated backend does.
    assert!(
        value(
            &samples,
            "mq_core_distance_calculations_total{outcome=\"performed\"}",
        ) > 0.0
    );
    assert!(
        sum_with_prefix(&samples, "mq_storage_buffer_reads_total") > 0.0,
        "file-backed reads must hit the same buffer accounting"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_without_recorder_returns_empty_exposition() {
    let db = persisted_db("plain", 200);
    let config = ServerConfig::default()
        .with_max_batch(2)
        .with_max_wait(Duration::from_millis(250));
    let layout = db.layout();
    let backend = mq_server::build_backend(&db, &config, 0.10, move |ds| {
        let db = PagedDatabase::pack(ds, layout);
        (Box::new(LinearScan::new(db.page_count())) as _, db)
    })
    .expect("backend");
    let mut server = QueryServer::bind("127.0.0.1:0", backend, &config).expect("bind loopback");
    run_queries(server.local_addr(), &db, 2);
    let text = Client::connect(server.local_addr())
        .expect("connect")
        .metrics()
        .expect("metrics");
    assert!(text.is_empty(), "no recorder, no series: {text:?}");
    server.shutdown();
}

//! End-to-end loopback test: an in-process server, N concurrent clients,
//! answers identical to serial `QueryEngine::similarity_query`, at least
//! one flushed batch of size > 1, and fewer total page reads than the
//! per-query sum.

use mq_core::{QueryEngine, QueryType};
use mq_index::LinearScan;
use mq_metric::{Euclidean, ObjectId, Vector};
use mq_server::{
    build_backend, Client, ExecutionMode, QueryServer, ServerConfig, SingleEngineBackend,
};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::time::Duration;

const N_CLIENTS: usize = 6;

fn dataset(n: usize) -> Dataset<Vector> {
    // Deterministic scattered 3-d points (xorshift), no external RNG.
    let mut x = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    Dataset::new(
        (0..n)
            .map(|_| Vector::new((0..3).map(|_| (next() * 100.0) as f32).collect::<Vec<_>>()))
            .collect(),
    )
}

fn layout() -> PageLayout {
    PageLayout::new(512, 16)
}

fn client_queries(ds: &Dataset<Vector>) -> Vec<(Vector, QueryType)> {
    (0..N_CLIENTS)
        .map(|i| {
            let q = ds.object(ObjectId((i * 53) as u32)).clone();
            let t = if i % 2 == 0 {
                QueryType::knn(5)
            } else {
                QueryType::range(12.0)
            };
            (q, t)
        })
        .collect()
}

#[test]
fn concurrent_clients_get_serial_answers_with_shared_reads() {
    let ds = dataset(600);
    let db = PagedDatabase::pack(&ds, layout());
    let pages = db.page_count();
    let scan = LinearScan::new(pages);
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.05, true);

    // max_batch = N with a generous deadline: all clients fire at once,
    // so the first flush should carry the whole wave.
    let config = ServerConfig::default()
        .with_max_batch(N_CLIENTS)
        .with_max_wait(Duration::from_secs(2));
    let mut server =
        QueryServer::bind("127.0.0.1:0", Box::new(backend), &config).expect("bind loopback");
    let addr = server.local_addr();

    let queries = client_queries(&ds);
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|(q, t)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.query(q, t).expect("query")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Serial reference: same data, same index, fresh disk.
    let ref_db = PagedDatabase::pack(&ds, layout());
    let ref_scan = LinearScan::new(ref_db.page_count());
    let ref_disk = SimulatedDisk::new(ref_db, 0.05);
    let engine = QueryEngine::new(&ref_disk, &ref_scan, Euclidean);
    ref_disk.reset_stats();
    for ((q, t), reply) in queries.iter().zip(&replies) {
        let serial = engine.similarity_query(q, t);
        let want: Vec<(u32, f64)> = serial
            .as_slice()
            .iter()
            .map(|a| (a.id.0, a.distance))
            .collect();
        let got: Vec<(u32, f64)> = reply.answers.iter().map(|a| (a.id.0, a.distance)).collect();
        assert_eq!(got, want, "server answers differ from serial engine");
    }
    let serial_reads = ref_disk.stats().logical_reads;

    // At least one flushed batch carried more than one query.
    assert!(
        replies.iter().any(|r| r.batch_size > 1),
        "no batch formed: sizes {:?}",
        replies.iter().map(|r| r.batch_size).collect::<Vec<_>>()
    );

    // The batched server read fewer pages than the per-query sum (§5.1:
    // the scan shares one pass across the whole batch).
    let metrics = server.metrics();
    assert_eq!(metrics.queries, N_CLIENTS as u64);
    assert!(
        metrics.totals.io.logical_reads < serial_reads,
        "batching saved nothing: server {} vs serial {serial_reads}",
        metrics.totals.io.logical_reads
    );

    // The stats request reports the same counters over the wire.
    let mut stats_client = Client::connect(addr).expect("connect");
    let remote = stats_client.stats().expect("stats");
    assert_eq!(remote.queries, N_CLIENTS as u64);
    assert_eq!(remote.max_batch_size, metrics.max_batch_size);
    drop(stats_client);

    server.shutdown();
}

#[test]
fn cluster_mode_agrees_with_single_mode() {
    let ds = dataset(400);
    let db = PagedDatabase::pack(&ds, layout());
    let build_index = |ds: &Dataset<Vector>| {
        let db = PagedDatabase::pack(ds, layout());
        (
            Box::new(LinearScan::new(db.page_count()))
                as Box<dyn mq_index::SimilarityIndex<Vector>>,
            db,
        )
    };

    let single_cfg = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(100));
    let cluster_cfg = single_cfg
        .clone()
        .with_mode(ExecutionMode::Cluster { servers: 3 });

    let single_backend = build_backend(&db, &single_cfg, 0.10, build_index).expect("backend");
    let cluster_backend = build_backend(&db, &cluster_cfg, 0.10, build_index).expect("backend");
    let mut single_server =
        QueryServer::bind("127.0.0.1:0", single_backend, &single_cfg).expect("bind");
    let mut cluster_server =
        QueryServer::bind("127.0.0.1:0", cluster_backend, &cluster_cfg).expect("bind");

    let queries = client_queries(&ds);
    let mut a = Client::connect(single_server.local_addr()).expect("connect");
    let mut b = Client::connect(cluster_server.local_addr()).expect("connect");
    for (q, t) in &queries {
        let ra = a.query(q, t).expect("single");
        let rb = b.query(q, t).expect("cluster");
        let ia: Vec<u32> = ra.answers.iter().map(|x| x.id.0).collect();
        let ib: Vec<u32> = rb.answers.iter().map(|x| x.id.0).collect();
        assert_eq!(ia, ib, "cluster answers diverge for {t}");
    }
    drop((a, b));
    single_server.shutdown();
    cluster_server.shutdown();
}

#[test]
fn malformed_frame_gets_error_reply() {
    let ds = dataset(60);
    let db = PagedDatabase::pack(&ds, layout());
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.10, true);
    let mut server = QueryServer::bind(
        "127.0.0.1:0",
        Box::new(backend),
        &ServerConfig::default().with_max_wait(Duration::from_millis(1)),
    )
    .expect("bind");

    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    // The server answers with an Error frame, then closes the connection.
    let mut response = Vec::new();
    let _ = raw.read_to_end(&mut response);
    let (msg, _) = mq_server::Message::decode(&response).expect("error frame");
    assert!(matches!(msg, mq_server::Message::Error(_)), "got {msg:?}");

    server.shutdown();
}

#[test]
fn client_dropped_mid_batch_leaks_no_slot_and_others_complete() {
    let ds = dataset(300);
    let db = PagedDatabase::pack(&ds, layout());
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.10, true);
    // max_batch = 3: one doomed client plus two survivors fill a batch.
    let config = ServerConfig::default()
        .with_max_batch(3)
        .with_max_wait(Duration::from_millis(200));
    let mut server =
        QueryServer::bind("127.0.0.1:0", Box::new(backend), &config).expect("bind loopback");
    let addr = server.local_addr();

    // The doomed client: writes a complete, valid Query frame and then
    // drops the connection before the batch flushes. Its reply has
    // nowhere to go; the server must shrug, not stall or leak the slot.
    {
        use std::io::Write;
        let doomed_query = mq_server::Message::Query {
            object: ds.object(ObjectId(7)).clone(),
            qtype: QueryType::knn(3),
            collection: String::new(),
            tenant: String::new(),
        };
        let mut raw = std::net::TcpStream::connect(addr).expect("connect doomed");
        raw.write_all(&doomed_query.encode()).expect("write frame");
        // Dropped here — socket closes while the query sits in the batch.
    }

    // Two survivors joining the same batch window must both complete.
    let survivors: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let q = ds.object(ObjectId((i * 31 + 1) as u32)).clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect survivor");
                    client
                        .query(&q, &QueryType::knn(4))
                        .expect("survivor query")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("survivor thread"))
            .collect()
    });
    for reply in &survivors {
        assert_eq!(reply.answers.len(), 4, "survivor got a full kNN answer");
    }

    // A later, unrelated query must still be served: if the dead client
    // leaked a batch slot the admission queue would wedge.
    let mut late = Client::connect(addr).expect("connect late");
    let reply = late
        .query(ds.object(ObjectId(9)), &QueryType::knn(1))
        .expect("service must survive the dropped client");
    assert_eq!(reply.answers[0].id.0, 9);
    drop(late);

    // The doomed query was still *executed* — only its reply was lost.
    let metrics = server.metrics();
    assert!(
        metrics.queries >= 4,
        "all submitted queries ran, got {}",
        metrics.queries
    );

    server.shutdown();
}

#[test]
fn dimension_mismatch_is_rejected_and_server_keeps_serving() {
    let ds = dataset(80);
    let db = PagedDatabase::pack(&ds, layout());
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.10, true);
    let mut server = QueryServer::bind(
        "127.0.0.1:0",
        Box::new(backend),
        &ServerConfig::default().with_max_wait(Duration::from_millis(1)),
    )
    .expect("bind");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    // The database is 3-d; a 2-d query must be rejected without reaching
    // (and crashing) the backend.
    let err = client
        .query(&Vector::new(vec![1.0, 2.0]), &QueryType::knn(2))
        .expect_err("mismatched dimensionality must be rejected");
    match err {
        mq_server::ClientError::Server(msg) => {
            assert!(msg.contains("dimension mismatch"), "got: {msg}")
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    // Same connection, corrected query: the service must still work.
    let good = ds.object(ObjectId(5)).clone();
    let reply = client.query(&good, &QueryType::knn(1)).expect("recovery");
    assert_eq!(reply.answers[0].id.0, 5);

    drop(client);
    server.shutdown();
}

//! Workload-replay determinism: the same seed must produce a
//! byte-identical request sequence and an identical arrival schedule,
//! independent of wall clock and thread interleaving.
//!
//! The suite runs under an optional `MQ_LOADGEN_SEED` environment
//! variable (CI exercises three values): it perturbs the *generated*
//! seeds, so every CI lane checks a different region of seed space while
//! each lane stays internally deterministic.

use mq_core::QueryType;
use mq_loadgen::{Mode, RequestPlan, WorkloadSpec};
use mq_metric::Vector;
use proptest::prelude::*;
use std::time::Duration;

/// CI seed lane: mixed into every generated seed.
fn lane() -> u64 {
    std::env::var("MQ_LOADGEN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn arb_qtype() -> impl Strategy<Value = QueryType> {
    prop_oneof![
        (1usize..20).prop_map(QueryType::knn),
        (0.1f64..50.0).prop_map(QueryType::range),
        (1usize..10, 0.1f64..50.0).prop_map(|(k, e)| QueryType::bounded_knn(k, e)),
    ]
}

fn arb_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        (10.0f64..5000.0).prop_map(|offered_qps| Mode::Open { offered_qps }),
        (1usize..12, 0u64..5_000_000).prop_map(|(sessions, think_ns)| Mode::Closed {
            sessions,
            think: Duration::from_nanos(think_ns),
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        arb_mode(),
        1usize..200,
        arb_qtype(),
        (1usize..24, 1usize..8),
        0.0f64..1.5,
        any::<u64>(),
    )
        .prop_map(|(mode, requests, qtype, (pool_n, dim), skew, seed)| {
            let pool = (0..pool_n)
                .map(|i| {
                    Vector::new(
                        (0..dim)
                            .map(|d| (i * 31 + d) as f32 * 0.25)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            WorkloadSpec {
                mode,
                requests,
                qtype,
                pool,
                skew,
                seed: seed ^ lane(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same spec ⇒ byte-identical encoding and fingerprint, even when the
    /// two materializations happen on different threads at different
    /// times.
    #[test]
    fn same_seed_replays_byte_identical(spec in arb_spec()) {
        let here = RequestPlan::materialize(&spec);
        // Materialize again on two concurrent threads: plan building must
        // not depend on interleaving or wall clock.
        let (there, elsewhere) = std::thread::scope(|s| {
            let a = s.spawn(|| RequestPlan::materialize(&spec));
            let b = s.spawn(|| RequestPlan::materialize(&spec));
            (a.join().expect("thread a"), b.join().expect("thread b"))
        });
        prop_assert_eq!(here.encode(), there.encode());
        prop_assert_eq!(here.encode(), elsewhere.encode());
        prop_assert_eq!(here.fingerprint(), there.fingerprint());
    }

    /// The arrival schedule is part of the determinism contract: same
    /// seed ⇒ the exact same offsets; and in open-loop mode they are
    /// strictly increasing (the driver replays them in order).
    #[test]
    fn arrival_schedule_is_identical_and_ordered(spec in arb_spec()) {
        let a = RequestPlan::materialize(&spec);
        let b = RequestPlan::materialize(&spec);
        let offsets_a: Vec<_> = a.requests.iter().map(|r| r.offset).collect();
        let offsets_b: Vec<_> = b.requests.iter().map(|r| r.offset).collect();
        prop_assert_eq!(&offsets_a, &offsets_b);
        if let Mode::Open { .. } = spec.mode {
            prop_assert!(offsets_a.windows(2).all(|w| w[0] < w[1]));
        } else {
            prop_assert!(offsets_a.iter().all(|o| o.is_zero()));
        }
    }

    /// A different seed almost surely changes the stream (with at least a
    /// handful of requests and more than one pool object, the Zipf draw
    /// and the arrival gaps both move).
    #[test]
    fn different_seed_different_stream(spec in arb_spec()) {
        let mut spec = spec;
        // The property needs room for the seed to express itself: at
        // least 16 requests and a pool with a real choice in it.
        spec.requests = spec.requests.max(16);
        if spec.pool.len() < 2 {
            spec.pool.push(Vector::new(vec![99.0]));
        }
        let a = RequestPlan::materialize(&spec);
        let mut other = spec.clone();
        other.seed = spec.seed.wrapping_add(1);
        let b = RequestPlan::materialize(&other);
        prop_assert_ne!(a.encode(), b.encode());
    }
}

/// The fingerprint is a pure function of the stream: flipping one
/// component of one pool vector must change it.
#[test]
fn fingerprint_sees_pool_bytes() {
    let base = WorkloadSpec {
        mode: Mode::Open { offered_qps: 100.0 },
        requests: 32,
        qtype: QueryType::knn(5),
        pool: vec![Vector::new(vec![1.0, 2.0]), Vector::new(vec![3.0, 4.0])],
        skew: 0.5,
        seed: 42 ^ lane(),
    };
    let a = RequestPlan::materialize(&base);
    let mut tweaked = base.clone();
    tweaked.pool[1] = Vector::new(vec![3.0, 4.000001]);
    let b = RequestPlan::materialize(&tweaked);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

//! Stats scrapes racing in-flight load: while a closed-loop run hammers
//! an in-process server, the main thread scrapes the metrics endpoint
//! repeatedly. Every mid-load exposition must parse, counter-style
//! series must be monotonically non-decreasing across scrapes, and after
//! a drain the scheduler's query counter must equal the number of
//! requests the plan issued.

use mq_core::QueryType;
use mq_datagen::uniform_vectors;
use mq_index::LinearScan;
use mq_loadgen::{run, Mode, RequestPlan, RunOptions, WorkloadSpec};
use mq_obs::{Recorder, Snapshot};
use mq_server::{Client, QueryServer, ServerConfig, SingleEngineBackend};
use mq_storage::{Dataset, PageLayout, PagedDatabase};
use std::time::Duration;

const REQUESTS: usize = 240;

/// Counter-style exposition series (`_total`, `_count`, `_sum`,
/// `_bucket`) may only grow; gauges may move either way.
fn is_counterish(series: &str) -> bool {
    let name = series.split('{').next().unwrap_or(series);
    name.ends_with("_total")
        || name.ends_with("_count")
        || name.ends_with("_sum")
        || name.ends_with("_bucket")
}

#[test]
fn concurrent_scrapes_parse_and_counters_stay_monotonic() {
    let vectors = uniform_vectors(400, 3, 0xC0FFEE);
    let ds = Dataset::new(vectors.clone());
    let db = PagedDatabase::pack(&ds, PageLayout::new(512, 16));
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.0, true);
    let recorder = Recorder::enabled();
    // Small batches with a short deadline: many flushes, so the scraped
    // counters actually move while the run is in flight.
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(2));
    let server =
        QueryServer::bind_with_recorder("127.0.0.1:0", Box::new(backend), &config, &recorder)
            .expect("bind loopback server");
    let addr = server.local_addr().to_string();

    let spec = WorkloadSpec {
        mode: Mode::Closed {
            sessions: 4,
            think: Duration::ZERO,
        },
        requests: REQUESTS,
        qtype: QueryType::knn(5),
        pool: vectors[..16].to_vec(),
        skew: 0.9,
        seed: 0x0D15_EA5E,
    };
    let plan = RequestPlan::materialize(&spec);

    let (report, mut scrapes) = std::thread::scope(|scope| {
        let load = scope.spawn(|| run(&plan, &addr, &RunOptions::default()));
        // Race scrapes against the in-flight load from this thread: each
        // one must be a complete, parseable exposition even though the
        // scheduler is mutating every series underneath it.
        let mut scrapes = Vec::new();
        while !load.is_finished() {
            let mut scraper = Client::connect(addr.as_str()).expect("connect scraper");
            let text = scraper.metrics().expect("scrape mid-load");
            scrapes.push(Snapshot::from_exposition(&text).expect("parse mid-load exposition"));
            std::thread::sleep(Duration::from_millis(1));
        }
        (load.join().expect("load thread"), scrapes)
    });

    assert_eq!(report.ok as usize, REQUESTS, "every request must succeed");
    assert_eq!(report.errors, 0);
    assert_eq!(report.timeouts, 0);
    assert_eq!(
        report.fingerprint,
        plan.fingerprint(),
        "the report must carry the plan's stream fingerprint"
    );

    // The run has returned every reply, so nothing is in flight; the
    // drain hook must confirm that promptly.
    assert!(
        server.drain(Duration::from_secs(5)),
        "server still reports in-flight work after all replies arrived"
    );

    // One more scrape after the drain: the scheduler has now counted
    // every query the plan issued.
    let mut scraper = Client::connect(addr.as_str()).expect("connect final scraper");
    let text = scraper.metrics().expect("final scrape");
    let last = Snapshot::from_exposition(&text).expect("parse final exposition");
    assert_eq!(
        last.value("mq_server_queries_total"),
        REQUESTS as f64,
        "queries_total must equal the requests issued"
    );
    scrapes.push(last);

    // Monotonicity: no counter-style series may ever decrease between
    // consecutive scrapes, and no series may vanish.
    for pair in scrapes.windows(2) {
        for (series, value) in pair[0].iter() {
            let after = pair[1]
                .get(series)
                .unwrap_or_else(|| panic!("series {series} vanished between scrapes"));
            if is_counterish(series) {
                assert!(
                    after >= value,
                    "counter {series} went backwards: {value} -> {after}"
                );
            }
        }
    }
}

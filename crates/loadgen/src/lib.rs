#![warn(missing_docs)]
//! # mq-loadgen — the end-to-end latency harness
//!
//! After eight PRs of kernels, batching, durability and an approximate
//! tier, this crate is the instrument that measures what a client of
//! `mq serve` actually experiences: it replays **seed-deterministic**
//! open-loop (Poisson arrivals, Zipf hot-key skew) and closed-loop
//! (N sessions, think time) traffic against a live endpoint, records
//! per-request latency from monotonic timestamps into HDR-style
//! log-bucketed histograms, scrapes the server's metrics endpoint
//! before and after, and reports p50/p95/p99/p999, achieved-vs-offered
//! throughput, and error/timeout/retry counts.
//!
//! The pipeline is split so determinism is testable in isolation:
//!
//! * [`WorkloadSpec`] → [`RequestPlan::materialize`] — the whole request
//!   sequence (vectors, query types, sessions, arrival offsets) as plain
//!   data, a pure function of one seed. [`RequestPlan::encode`] is its
//!   canonical byte form; [`RequestPlan::fingerprint`] the FNV-1a hash
//!   `BENCH_server.json` records, so two runs can prove they offered the
//!   same stream even when their latency numbers differ.
//! * [`run`] — the only wall-clock-touching stage: sender threads
//!   (`RetryingClient` underneath, so transport faults retry with seeded
//!   jitter) replay the plan and fill a [`RunReport`].
//!
//! Consumers: the `bench_server` binary (CI's `server-load` gate),
//! `mq loadgen <ADDR>` in the CLI, and the FlakyProxy-under-load suite
//! in `mq-testkit`.

pub mod driver;
pub mod plan;
pub mod report;

pub use driver::{run, RunOptions};
pub use plan::{Mode, RampSegment, Request, RequestPlan, WorkloadSpec};
pub use report::{json_num, AnswerSet, CapturedAnswers, RunReport, ServerWindow, StepReport};

//! Workload materialization: every request a run will send — query
//! vector, query type, session assignment, arrival offset — computed up
//! front as plain data from one seed.
//!
//! Nothing here touches the wall clock or spawns a thread, which is the
//! whole point: the byte encoding of a plan ([`RequestPlan::encode`]) is
//! a pure function of its [`WorkloadSpec`], so the replay-determinism
//! suite can pin "same seed ⇒ byte-identical request sequence" without
//! ever opening a socket.

use mq_core::{QueryKind, QueryType};
use mq_datagen::{poisson_arrival_offsets, zipf_indices};
use mq_metric::Vector;
use std::time::Duration;

/// How requests are paced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// Open loop: requests arrive on a Poisson schedule at `offered_qps`,
    /// regardless of how fast the server answers (arrival times are
    /// independent of completions, so queueing delay is *measured*, not
    /// hidden — no coordinated omission).
    Open {
        /// Offered aggregate arrival rate, queries per second.
        offered_qps: f64,
    },
    /// Closed loop: `sessions` concurrent clients, each waiting for its
    /// answer and then thinking for `think` before the next request —
    /// the paper's c-concurrent-users exploration shape.
    Closed {
        /// Number of concurrent client sessions.
        sessions: usize,
        /// Think time between a reply and the session's next request.
        think: Duration,
    },
    /// Stepped open loop: the request budget is split into `steps` equal
    /// segments whose offered rates interpolate linearly from
    /// `start_qps` to `end_qps`. Driving the ramp past server capacity
    /// locates the saturation knee — the first step where rejections
    /// appear or throughput stops tracking the offered rate.
    Ramp {
        /// Offered rate of the first step, queries per second.
        start_qps: f64,
        /// Offered rate of the last step, queries per second.
        end_qps: f64,
        /// Number of rate steps (≥ 1).
        steps: usize,
    },
}

/// One segment of a [`Mode::Ramp`] plan: a contiguous slice of the
/// request sequence offered at one rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RampSegment {
    /// Index of the segment's first request in the global sequence.
    pub start_index: usize,
    /// Requests in the segment.
    pub len: usize,
    /// Offered rate of the segment, queries per second.
    pub rate_qps: f64,
}

/// Everything that determines a workload, and nothing else.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Pacing model.
    pub mode: Mode,
    /// Total requests in the run.
    pub requests: usize,
    /// Query type every request carries.
    pub qtype: QueryType,
    /// The pool of query objects; requests draw from it under Zipf skew.
    pub pool: Vec<Vector>,
    /// Zipf exponent of the hot-key skew (0 = uniform, ~1 = heavily hot).
    pub skew: f64,
    /// Master seed; arrival and key streams derive from it.
    pub seed: u64,
}

/// One planned request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Position in the global request sequence.
    pub index: usize,
    /// Owning session (closed loop; 0 in open loop).
    pub session: usize,
    /// Intended start offset from the beginning of the run (open loop;
    /// zero in closed loop, where pacing is reply + think time).
    pub offset: Duration,
    /// Index into the plan's query pool.
    pub pool_slot: usize,
    /// The query type.
    pub qtype: QueryType,
}

/// A fully materialized workload: the pool plus every request in order.
#[derive(Clone, Debug)]
pub struct RequestPlan {
    /// Pacing model the driver will follow.
    pub mode: Mode,
    /// Master seed the plan was derived from.
    pub seed: u64,
    /// Query-object pool shared by the requests.
    pub pool: Vec<Vector>,
    /// The request sequence, ascending by `index` (and by `offset` in
    /// open-loop mode).
    pub requests: Vec<Request>,
}

/// splitmix64 — derives independent sub-streams from the master seed so
/// the arrival schedule, key choices and per-session jitter never share
/// state (the workspace's standard seed-scrambling idiom).
fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Splits `total` requests into `steps` contiguous segments with rates
/// interpolated linearly from `start_qps` to `end_qps` (the remainder of
/// an uneven split lands in the last segment).
fn ramp_segments(total: usize, start_qps: f64, end_qps: f64, steps: usize) -> Vec<RampSegment> {
    let per_step = total / steps;
    (0..steps)
        .map(|i| {
            let rate_qps = if steps == 1 {
                start_qps
            } else {
                start_qps + (end_qps - start_qps) * i as f64 / (steps - 1) as f64
            };
            let start_index = i * per_step;
            let len = if i == steps - 1 {
                total - start_index
            } else {
                per_step
            };
            RampSegment {
                start_index,
                len,
                rate_qps,
            }
        })
        .collect()
}

impl RequestPlan {
    /// Materializes the full request sequence from a spec.
    ///
    /// # Panics
    /// Panics on an empty pool, zero closed-loop sessions, or a
    /// non-positive open-loop rate.
    pub fn materialize(spec: &WorkloadSpec) -> Self {
        assert!(!spec.pool.is_empty(), "workload pool must not be empty");
        let slots = zipf_indices(
            spec.pool.len(),
            spec.skew,
            spec.requests,
            derive_seed(spec.seed, 1),
        );
        let offsets: Vec<Duration> = match spec.mode {
            Mode::Open { offered_qps } => {
                poisson_arrival_offsets(spec.requests, offered_qps, derive_seed(spec.seed, 2))
            }
            Mode::Closed { sessions, .. } => {
                assert!(sessions > 0, "closed loop needs at least one session");
                vec![Duration::ZERO; spec.requests]
            }
            Mode::Ramp {
                start_qps,
                end_qps,
                steps,
            } => {
                assert!(steps > 0, "ramp needs at least one step");
                assert!(
                    start_qps > 0.0 && end_qps > 0.0,
                    "ramp rates must be positive"
                );
                // Each segment gets its own independent Poisson stream
                // (seed stream 2000+i) at its own rate, shifted to start
                // where the previous segment's arrivals actually ended —
                // offsets stay strictly ascending across the whole ramp.
                let mut offsets = Vec::with_capacity(spec.requests);
                let mut base = Duration::ZERO;
                for seg in ramp_segments(spec.requests, start_qps, end_qps, steps) {
                    let seg_offsets = poisson_arrival_offsets(
                        seg.len,
                        seg.rate_qps,
                        derive_seed(spec.seed, 2000 + seg.start_index as u64),
                    );
                    let mut last = Duration::ZERO;
                    for off in seg_offsets {
                        offsets.push(base + off);
                        last = off;
                    }
                    base += last;
                }
                offsets
            }
        };
        let sessions = match spec.mode {
            Mode::Open { .. } | Mode::Ramp { .. } => 1,
            Mode::Closed { sessions, .. } => sessions,
        };
        let requests = (0..spec.requests)
            .map(|i| Request {
                index: i,
                session: i % sessions,
                offset: offsets[i],
                pool_slot: slots[i],
                qtype: spec.qtype,
            })
            .collect();
        Self {
            mode: spec.mode,
            seed: spec.seed,
            pool: spec.pool.clone(),
            requests,
        }
    }

    /// The query vector of one request.
    pub fn query(&self, r: &Request) -> &Vector {
        &self.pool[r.pool_slot]
    }

    /// Number of sessions the driver should run.
    pub fn sessions(&self) -> usize {
        match self.mode {
            Mode::Open { .. } | Mode::Ramp { .. } => 1,
            Mode::Closed { sessions, .. } => sessions,
        }
    }

    /// The ramp's segments (`None` unless the plan is [`Mode::Ramp`]).
    pub fn ramp_segments(&self) -> Option<Vec<RampSegment>> {
        match self.mode {
            Mode::Ramp {
                start_qps,
                end_qps,
                steps,
            } => Some(ramp_segments(
                self.requests.len(),
                start_qps,
                end_qps,
                steps,
            )),
            _ => None,
        }
    }

    /// The ramp segment a request index belongs to (`None` off-ramp).
    pub fn ramp_step_of(&self, index: usize) -> Option<usize> {
        self.ramp_segments().map(|segs| {
            segs.iter()
                .position(|s| index < s.start_index + s.len)
                .unwrap_or(segs.len().saturating_sub(1))
        })
    }

    /// A canonical byte encoding of the whole plan: mode, seed, pool
    /// vectors (exact f32 bits) and every request's fields, all
    /// little-endian. Two plans send identical traffic if and only if
    /// their encodings are identical.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.requests.len() * 40);
        out.extend_from_slice(b"MQLG\x01");
        match self.mode {
            Mode::Open { offered_qps } => {
                out.push(0);
                out.extend_from_slice(&offered_qps.to_bits().to_le_bytes());
            }
            Mode::Closed { sessions, think } => {
                out.push(1);
                out.extend_from_slice(&(sessions as u64).to_le_bytes());
                out.extend_from_slice(&(think.as_nanos() as u64).to_le_bytes());
            }
            Mode::Ramp {
                start_qps,
                end_qps,
                steps,
            } => {
                out.push(2);
                out.extend_from_slice(&start_qps.to_bits().to_le_bytes());
                out.extend_from_slice(&end_qps.to_bits().to_le_bytes());
                out.extend_from_slice(&(steps as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.pool.len() as u64).to_le_bytes());
        for v in &self.pool {
            out.extend_from_slice(&(v.dim() as u64).to_le_bytes());
            for c in v.components() {
                out.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.requests.len() as u64).to_le_bytes());
        for r in &self.requests {
            out.extend_from_slice(&(r.index as u64).to_le_bytes());
            out.extend_from_slice(&(r.session as u64).to_le_bytes());
            out.extend_from_slice(&(r.offset.as_nanos() as u64).to_le_bytes());
            out.extend_from_slice(&(r.pool_slot as u64).to_le_bytes());
            out.push(match r.qtype.kind {
                QueryKind::Range => 0,
                QueryKind::KNearestNeighbor => 1,
                QueryKind::BoundedKNearestNeighbor => 2,
            });
            out.extend_from_slice(&r.qtype.range.to_bits().to_le_bytes());
            out.extend_from_slice(&(r.qtype.cardinality as u64).to_le_bytes());
        }
        out
    }

    /// FNV-1a fingerprint of [`encode`](Self::encode) — the value
    /// `BENCH_server.json` records so two runs can prove they sent the
    /// same request stream.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.encode() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::new(vec![i as f32, (i * i) as f32]))
            .collect()
    }

    fn spec(mode: Mode, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            mode,
            requests: 64,
            qtype: QueryType::knn(3),
            pool: pool(8),
            skew: 0.8,
            seed,
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        for mode in [
            Mode::Open { offered_qps: 500.0 },
            Mode::Closed {
                sessions: 4,
                think: Duration::from_millis(1),
            },
        ] {
            let a = RequestPlan::materialize(&spec(mode, 7));
            let b = RequestPlan::materialize(&spec(mode, 7));
            assert_eq!(a.encode(), b.encode());
            assert_eq!(a.fingerprint(), b.fingerprint());
            let c = RequestPlan::materialize(&spec(mode, 8));
            assert_ne!(a.encode(), c.encode(), "seed must matter");
        }
    }

    #[test]
    fn open_loop_offsets_sorted_closed_loop_zero() {
        let open = RequestPlan::materialize(&spec(Mode::Open { offered_qps: 100.0 }, 3));
        assert!(open.requests.windows(2).all(|w| w[0].offset < w[1].offset));
        let closed = RequestPlan::materialize(&spec(
            Mode::Closed {
                sessions: 4,
                think: Duration::ZERO,
            },
            3,
        ));
        assert!(closed.requests.iter().all(|r| r.offset == Duration::ZERO));
        // Sessions partition the sequence round-robin.
        assert!(closed.requests.iter().all(|r| r.session == r.index % 4));
    }

    #[test]
    fn skew_streams_differ_from_arrival_streams() {
        // Same master seed: key choices and offsets must not be correlated
        // copies of one stream — crude check: the first few pool slots are
        // not simply the offsets' low bits.
        let plan = RequestPlan::materialize(&spec(Mode::Open { offered_qps: 100.0 }, 11));
        let slots: Vec<usize> = plan.requests.iter().take(8).map(|r| r.pool_slot).collect();
        assert!(
            slots.iter().any(|&s| s != slots[0]),
            "skewed but not constant"
        );
    }

    #[test]
    #[should_panic(expected = "pool must not be empty")]
    fn empty_pool_rejected() {
        let mut s = spec(Mode::Open { offered_qps: 1.0 }, 1);
        s.pool.clear();
        let _ = RequestPlan::materialize(&s);
    }

    #[test]
    fn ramp_is_deterministic_sorted_and_segmented() {
        let mode = Mode::Ramp {
            start_qps: 100.0,
            end_qps: 1000.0,
            steps: 4,
        };
        let a = RequestPlan::materialize(&spec(mode, 21));
        let b = RequestPlan::materialize(&spec(mode, 21));
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.encode(),
            RequestPlan::materialize(&spec(mode, 22)).encode(),
            "seed must matter"
        );

        // Offsets ascend across segment boundaries too.
        assert!(a.requests.windows(2).all(|w| w[0].offset <= w[1].offset));

        // Segments cover the sequence exactly, rates interpolate
        // linearly from start to end.
        let segs = a.ramp_segments().expect("ramp segments");
        assert_eq!(segs.len(), 4);
        assert_eq!(segs.iter().map(|s| s.len).sum::<usize>(), a.requests.len());
        assert_eq!(segs[0].rate_qps, 100.0);
        assert_eq!(segs[3].rate_qps, 1000.0);
        assert!(segs.windows(2).all(|w| w[0].rate_qps < w[1].rate_qps));
        assert_eq!(
            segs[1].start_index,
            segs[0].start_index + segs[0].len,
            "segments are contiguous"
        );

        // Step lookup matches the segment table.
        assert_eq!(a.ramp_step_of(0), Some(0));
        assert_eq!(a.ramp_step_of(a.requests.len() - 1), Some(3));
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(a.ramp_step_of(seg.start_index), Some(i));
        }

        // Later (faster) segments pack their arrivals more densely.
        let seg_span = |seg: &RampSegment| {
            let first = a.requests[seg.start_index].offset;
            let last = a.requests[seg.start_index + seg.len - 1].offset;
            (last - first).as_secs_f64() / seg.len as f64
        };
        assert!(
            seg_span(&segs[0]) > seg_span(&segs[3]),
            "mean inter-arrival must shrink as the rate ramps up"
        );
    }

    #[test]
    fn ramp_encoding_is_mode_distinct() {
        // A ramp plan and an open plan over the same seed/pool must not
        // collide in their byte encodings.
        let ramp = RequestPlan::materialize(&spec(
            Mode::Ramp {
                start_qps: 500.0,
                end_qps: 500.0,
                steps: 1,
            },
            7,
        ));
        let open = RequestPlan::materialize(&spec(Mode::Open { offered_qps: 500.0 }, 7));
        assert_ne!(ramp.encode(), open.encode());
    }
}

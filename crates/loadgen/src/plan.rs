//! Workload materialization: every request a run will send — query
//! vector, query type, session assignment, arrival offset — computed up
//! front as plain data from one seed.
//!
//! Nothing here touches the wall clock or spawns a thread, which is the
//! whole point: the byte encoding of a plan ([`RequestPlan::encode`]) is
//! a pure function of its [`WorkloadSpec`], so the replay-determinism
//! suite can pin "same seed ⇒ byte-identical request sequence" without
//! ever opening a socket.

use mq_core::{QueryKind, QueryType};
use mq_datagen::{poisson_arrival_offsets, zipf_indices};
use mq_metric::Vector;
use std::time::Duration;

/// How requests are paced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// Open loop: requests arrive on a Poisson schedule at `offered_qps`,
    /// regardless of how fast the server answers (arrival times are
    /// independent of completions, so queueing delay is *measured*, not
    /// hidden — no coordinated omission).
    Open {
        /// Offered aggregate arrival rate, queries per second.
        offered_qps: f64,
    },
    /// Closed loop: `sessions` concurrent clients, each waiting for its
    /// answer and then thinking for `think` before the next request —
    /// the paper's c-concurrent-users exploration shape.
    Closed {
        /// Number of concurrent client sessions.
        sessions: usize,
        /// Think time between a reply and the session's next request.
        think: Duration,
    },
}

/// Everything that determines a workload, and nothing else.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Pacing model.
    pub mode: Mode,
    /// Total requests in the run.
    pub requests: usize,
    /// Query type every request carries.
    pub qtype: QueryType,
    /// The pool of query objects; requests draw from it under Zipf skew.
    pub pool: Vec<Vector>,
    /// Zipf exponent of the hot-key skew (0 = uniform, ~1 = heavily hot).
    pub skew: f64,
    /// Master seed; arrival and key streams derive from it.
    pub seed: u64,
}

/// One planned request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Position in the global request sequence.
    pub index: usize,
    /// Owning session (closed loop; 0 in open loop).
    pub session: usize,
    /// Intended start offset from the beginning of the run (open loop;
    /// zero in closed loop, where pacing is reply + think time).
    pub offset: Duration,
    /// Index into the plan's query pool.
    pub pool_slot: usize,
    /// The query type.
    pub qtype: QueryType,
}

/// A fully materialized workload: the pool plus every request in order.
#[derive(Clone, Debug)]
pub struct RequestPlan {
    /// Pacing model the driver will follow.
    pub mode: Mode,
    /// Master seed the plan was derived from.
    pub seed: u64,
    /// Query-object pool shared by the requests.
    pub pool: Vec<Vector>,
    /// The request sequence, ascending by `index` (and by `offset` in
    /// open-loop mode).
    pub requests: Vec<Request>,
}

/// splitmix64 — derives independent sub-streams from the master seed so
/// the arrival schedule, key choices and per-session jitter never share
/// state (the workspace's standard seed-scrambling idiom).
fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RequestPlan {
    /// Materializes the full request sequence from a spec.
    ///
    /// # Panics
    /// Panics on an empty pool, zero closed-loop sessions, or a
    /// non-positive open-loop rate.
    pub fn materialize(spec: &WorkloadSpec) -> Self {
        assert!(!spec.pool.is_empty(), "workload pool must not be empty");
        let slots = zipf_indices(
            spec.pool.len(),
            spec.skew,
            spec.requests,
            derive_seed(spec.seed, 1),
        );
        let offsets: Vec<Duration> = match spec.mode {
            Mode::Open { offered_qps } => {
                poisson_arrival_offsets(spec.requests, offered_qps, derive_seed(spec.seed, 2))
            }
            Mode::Closed { sessions, .. } => {
                assert!(sessions > 0, "closed loop needs at least one session");
                vec![Duration::ZERO; spec.requests]
            }
        };
        let sessions = match spec.mode {
            Mode::Open { .. } => 1,
            Mode::Closed { sessions, .. } => sessions,
        };
        let requests = (0..spec.requests)
            .map(|i| Request {
                index: i,
                session: i % sessions,
                offset: offsets[i],
                pool_slot: slots[i],
                qtype: spec.qtype,
            })
            .collect();
        Self {
            mode: spec.mode,
            seed: spec.seed,
            pool: spec.pool.clone(),
            requests,
        }
    }

    /// The query vector of one request.
    pub fn query(&self, r: &Request) -> &Vector {
        &self.pool[r.pool_slot]
    }

    /// Number of sessions the driver should run.
    pub fn sessions(&self) -> usize {
        match self.mode {
            Mode::Open { .. } => 1,
            Mode::Closed { sessions, .. } => sessions,
        }
    }

    /// A canonical byte encoding of the whole plan: mode, seed, pool
    /// vectors (exact f32 bits) and every request's fields, all
    /// little-endian. Two plans send identical traffic if and only if
    /// their encodings are identical.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.requests.len() * 40);
        out.extend_from_slice(b"MQLG\x01");
        match self.mode {
            Mode::Open { offered_qps } => {
                out.push(0);
                out.extend_from_slice(&offered_qps.to_bits().to_le_bytes());
            }
            Mode::Closed { sessions, think } => {
                out.push(1);
                out.extend_from_slice(&(sessions as u64).to_le_bytes());
                out.extend_from_slice(&(think.as_nanos() as u64).to_le_bytes());
            }
        }
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.pool.len() as u64).to_le_bytes());
        for v in &self.pool {
            out.extend_from_slice(&(v.dim() as u64).to_le_bytes());
            for c in v.components() {
                out.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.requests.len() as u64).to_le_bytes());
        for r in &self.requests {
            out.extend_from_slice(&(r.index as u64).to_le_bytes());
            out.extend_from_slice(&(r.session as u64).to_le_bytes());
            out.extend_from_slice(&(r.offset.as_nanos() as u64).to_le_bytes());
            out.extend_from_slice(&(r.pool_slot as u64).to_le_bytes());
            out.push(match r.qtype.kind {
                QueryKind::Range => 0,
                QueryKind::KNearestNeighbor => 1,
                QueryKind::BoundedKNearestNeighbor => 2,
            });
            out.extend_from_slice(&r.qtype.range.to_bits().to_le_bytes());
            out.extend_from_slice(&(r.qtype.cardinality as u64).to_le_bytes());
        }
        out
    }

    /// FNV-1a fingerprint of [`encode`](Self::encode) — the value
    /// `BENCH_server.json` records so two runs can prove they sent the
    /// same request stream.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.encode() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::new(vec![i as f32, (i * i) as f32]))
            .collect()
    }

    fn spec(mode: Mode, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            mode,
            requests: 64,
            qtype: QueryType::knn(3),
            pool: pool(8),
            skew: 0.8,
            seed,
        }
    }

    #[test]
    fn same_seed_same_bytes() {
        for mode in [
            Mode::Open { offered_qps: 500.0 },
            Mode::Closed {
                sessions: 4,
                think: Duration::from_millis(1),
            },
        ] {
            let a = RequestPlan::materialize(&spec(mode, 7));
            let b = RequestPlan::materialize(&spec(mode, 7));
            assert_eq!(a.encode(), b.encode());
            assert_eq!(a.fingerprint(), b.fingerprint());
            let c = RequestPlan::materialize(&spec(mode, 8));
            assert_ne!(a.encode(), c.encode(), "seed must matter");
        }
    }

    #[test]
    fn open_loop_offsets_sorted_closed_loop_zero() {
        let open = RequestPlan::materialize(&spec(Mode::Open { offered_qps: 100.0 }, 3));
        assert!(open.requests.windows(2).all(|w| w[0].offset < w[1].offset));
        let closed = RequestPlan::materialize(&spec(
            Mode::Closed {
                sessions: 4,
                think: Duration::ZERO,
            },
            3,
        ));
        assert!(closed.requests.iter().all(|r| r.offset == Duration::ZERO));
        // Sessions partition the sequence round-robin.
        assert!(closed.requests.iter().all(|r| r.session == r.index % 4));
    }

    #[test]
    fn skew_streams_differ_from_arrival_streams() {
        // Same master seed: key choices and offsets must not be correlated
        // copies of one stream — crude check: the first few pool slots are
        // not simply the offsets' low bits.
        let plan = RequestPlan::materialize(&spec(Mode::Open { offered_qps: 100.0 }, 11));
        let slots: Vec<usize> = plan.requests.iter().take(8).map(|r| r.pool_slot).collect();
        assert!(
            slots.iter().any(|&s| s != slots[0]),
            "skewed but not constant"
        );
    }

    #[test]
    #[should_panic(expected = "pool must not be empty")]
    fn empty_pool_rejected() {
        let mut s = spec(Mode::Open { offered_qps: 1.0 }, 1);
        s.pool.clear();
        let _ = RequestPlan::materialize(&s);
    }
}

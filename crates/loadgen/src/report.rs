//! Run results and their `BENCH_server.json` serialization.
//!
//! The JSON is hand-assembled (the workspace has no serde); numbers are
//! emitted with Rust's shortest-roundtrip `f64` formatting, and
//! non-finite values become `null` so the file always parses.

use mq_obs::Snapshot;

/// One request's answers as `(object id, distance bits)` pairs — bits,
/// not floats, so oracle comparisons are exact.
pub type AnswerSet = Vec<(u32, u64)>;

/// Captured answers of a whole run, indexed by request; `None` entries
/// are requests that failed.
pub type CapturedAnswers = Vec<Option<AnswerSet>>;

/// The server-side view of one run window: deltas of the scheduler's
/// counters between the before- and after-run scrapes.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerWindow {
    /// Queries the scheduler accepted into flushed batches.
    pub queries: f64,
    /// Batches flushed (all reasons).
    pub batches: f64,
    /// Mean queries per batch over the window.
    pub mean_batch_size: f64,
    /// p99 of the in-window queue-wait distribution, seconds (absent if
    /// the window saw no queue-wait observations).
    pub queue_wait_p99: Option<f64>,
}

impl ServerWindow {
    /// Builds the window from the two scrapes, if both exist.
    pub fn from_scrapes(before: Option<&Snapshot>, after: Option<&Snapshot>) -> Option<Self> {
        let (before, after) = (before?, after?);
        let delta = after.delta(before);
        let queries = delta.value("mq_server_queries_total");
        let batches = delta.value("mq_server_batches_total{reason=\"full\"}")
            + delta.value("mq_server_batches_total{reason=\"deadline\"}")
            + delta.value("mq_server_batches_total{reason=\"closed\"}");
        Some(Self {
            queries,
            batches,
            mean_batch_size: if batches > 0.0 {
                queries / batches
            } else {
                0.0
            },
            queue_wait_p99: delta.quantile("mq_server_queue_wait_seconds", 0.99),
        })
    }
}

/// One step of a ramp run: its offered rate and what came back.
#[derive(Clone, Debug, PartialEq)]
pub struct StepReport {
    /// Offered rate of the step, queries per second.
    pub offered_qps: f64,
    /// Requests budgeted to the step.
    pub requests: usize,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests refused with a typed `Overloaded` reply.
    pub rejected: u64,
    /// Requests that failed with transport errors or timeouts.
    pub failed: u64,
    /// 99th-percentile latency of the step's successful requests,
    /// seconds.
    pub p99: f64,
}

/// Everything one run produced: client-side latency distribution and
/// throughput, error/timeout/retry counts, the request-stream
/// fingerprint, and the server-side window.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// `"open"`, `"closed"` or `"ramp"`.
    pub mode: &'static str,
    /// Requests the plan contained.
    pub requests: usize,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests that failed after exhausting retries (excluding
    /// timeouts).
    pub errors: u64,
    /// Requests whose final failure was a read/connect timeout.
    pub timeouts: u64,
    /// Requests the server refused with a typed `Overloaded` reply —
    /// admission control doing its job, not a transport failure.
    pub rejected: u64,
    /// Transport-level retries performed across all clients.
    pub retries: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
    /// Offered rate (open loop only).
    pub offered_qps: Option<f64>,
    /// Successful answers per wall-clock second.
    pub achieved_qps: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
    /// 99.9th-percentile latency, seconds.
    pub p999: f64,
    /// Mean latency, seconds.
    pub mean_latency: f64,
    /// Largest single latency observed, seconds.
    pub max_latency: f64,
    /// FNV-1a fingerprint of the plan's byte encoding: equal
    /// fingerprints ⇒ identical request streams.
    pub fingerprint: u64,
    /// Per-step windows (ramp mode only).
    pub steps: Option<Vec<StepReport>>,
    /// Offered rate of the saturation knee — the first ramp step that
    /// saw rejections or delivered under 90% of its budget (`None` if
    /// the ramp never saturated, or off-ramp).
    pub knee_qps: Option<f64>,
    /// Server-side window delta (absent if the server has no recorder).
    pub server: Option<ServerWindow>,
    /// Per-request answers as `(object id, distance bits)`, only when
    /// [`RunOptions::capture_answers`](crate::RunOptions) was set.
    pub answers: Option<CapturedAnswers>,
}

/// A finite `f64` as a JSON number, `null` otherwise.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl RunReport {
    /// The run as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("    \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("    \"requests\": {},\n", self.requests));
        out.push_str(&format!("    \"ok\": {},\n", self.ok));
        out.push_str(&format!("    \"errors\": {},\n", self.errors));
        out.push_str(&format!("    \"timeouts\": {},\n", self.timeouts));
        out.push_str(&format!("    \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("    \"retries\": {},\n", self.retries));
        out.push_str(&format!(
            "    \"wall_secs\": {},\n",
            json_num(self.wall_secs)
        ));
        out.push_str(&format!(
            "    \"offered_qps\": {},\n",
            self.offered_qps.map_or("null".into(), json_num)
        ));
        out.push_str(&format!(
            "    \"achieved_qps\": {},\n",
            json_num(self.achieved_qps)
        ));
        out.push_str(&format!(
            "    \"latency_seconds\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"mean\": {}, \"max\": {} }},\n",
            json_num(self.p50),
            json_num(self.p95),
            json_num(self.p99),
            json_num(self.p999),
            json_num(self.mean_latency),
            json_num(self.max_latency),
        ));
        out.push_str(&format!(
            "    \"request_stream_fingerprint\": \"{:016x}\",\n",
            self.fingerprint
        ));
        if let Some(steps) = &self.steps {
            out.push_str("    \"ramp\": {\n      \"steps\": [\n");
            for (i, s) in steps.iter().enumerate() {
                out.push_str(&format!(
                    "        {{ \"offered_qps\": {}, \"requests\": {}, \"ok\": {}, \
                     \"rejected\": {}, \"failed\": {}, \"p99\": {} }}{}\n",
                    json_num(s.offered_qps),
                    s.requests,
                    s.ok,
                    s.rejected,
                    s.failed,
                    json_num(s.p99),
                    if i + 1 < steps.len() { "," } else { "" },
                ));
            }
            out.push_str(&format!(
                "      ],\n      \"knee_qps\": {}\n    }},\n",
                self.knee_qps.map_or("null".into(), json_num)
            ));
        }
        match &self.server {
            Some(w) => out.push_str(&format!(
                "    \"server\": {{ \"queries\": {}, \"batches\": {}, \"mean_batch_size\": {}, \"queue_wait_p99\": {} }}\n",
                json_num(w.queries),
                json_num(w.batches),
                json_num(w.mean_batch_size),
                w.queue_wait_p99.map_or("null".into(), json_num),
            )),
            None => out.push_str("    \"server\": null\n"),
        }
        out.push_str("  }");
        out
    }

    /// One-paragraph human summary for terminal output.
    pub fn summary(&self) -> String {
        let offered = self
            .offered_qps
            .map(|r| format!(" of {r:.0} offered"))
            .unwrap_or_default();
        let mut text = format!(
            "{} loop: {}/{} ok ({} rejected, {} errors, {} timeouts, {} retries) in {:.2}s — \
             {:.1} qps{offered}\n  latency p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  \
             p999 {:.2}ms  max {:.2}ms",
            self.mode,
            self.ok,
            self.requests,
            self.rejected,
            self.errors,
            self.timeouts,
            self.retries,
            self.wall_secs,
            self.achieved_qps,
            self.p50 * 1e3,
            self.p95 * 1e3,
            self.p99 * 1e3,
            self.p999 * 1e3,
            self.max_latency * 1e3,
        );
        if let Some(steps) = &self.steps {
            for (i, s) in steps.iter().enumerate() {
                text.push_str(&format!(
                    "\n  step {i}: {:.0} qps offered — {} ok, {} rejected, {} failed, \
                     p99 {:.2}ms",
                    s.offered_qps,
                    s.ok,
                    s.rejected,
                    s.failed,
                    s.p99 * 1e3,
                ));
            }
            text.push_str(&match self.knee_qps {
                Some(knee) => format!("\n  saturation knee at ~{knee:.0} qps offered"),
                None => "\n  no saturation knee within the ramp".to_string(),
            });
        }
        text
    }
}

//! The run loop: replays a [`RequestPlan`] against a live server and
//! measures what a client actually experiences.
//!
//! Latency is recorded per request from monotonic timestamps
//! ([`std::time::Instant`]) into an HDR-style log-bucketed `mq-obs`
//! [`Histogram`] (constant relative error per bucket from 10 µs to
//! 60 s). Open-loop latency is measured from the request's *intended*
//! start, not from when a sender thread got around to it — queueing
//! delay under overload is part of the answer, never silently dropped
//! (the coordinated-omission trap).
//!
//! Before and after the run, the driver scrapes the server's metrics
//! endpoint; the delta over the run window (batches flushed, mean batch
//! size, queue-wait quantiles) lands in the [`RunReport`] next to the
//! client-side numbers.

use crate::plan::{Mode, RequestPlan};
use crate::report::{AnswerSet, RunReport, ServerWindow};
use mq_obs::{log_bounds, Histogram, Snapshot};
use mq_server::{ClientError, ProtocolError, RetryConfig, RetryingClient};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of one run that are not part of the workload itself.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Sender threads in open-loop mode (closed-loop spawns one thread
    /// per session instead). Bounds the in-flight requests; if all
    /// senders are busy past an arrival's due time, the wait shows up as
    /// measured latency.
    pub connections: usize,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-reply read timeout (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Transport retries per request before it counts as an error.
    pub max_retries: u32,
    /// Record every request's answers (id + distance bits) for oracle
    /// comparison — memory-heavy, test-suite use only.
    pub capture_answers: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            connections: 8,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            max_retries: 3,
            capture_answers: false,
        }
    }
}

/// Shared measurement state all sender threads write into.
struct Measure {
    latency: Histogram,
    ok: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    /// Max observed latency in f64 bits (CAS loop; latencies are
    /// non-negative so the bit pattern ordering matches the value
    /// ordering).
    max_bits: AtomicU64,
    answers: Option<Mutex<crate::report::CapturedAnswers>>,
}

impl Measure {
    fn new(n: usize, capture: bool) -> Self {
        Self {
            // 10 µs .. 60 s at 20 buckets per decade: relative error per
            // bucket ~12%, 136-ish buckets — the HDR-style layout.
            latency: Histogram::new(&log_bounds(1e-5, 60.0, 20)),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
            answers: capture.then(|| Mutex::new(vec![None; n])),
        }
    }

    fn record(&self, index: usize, outcome: Result<AnswerSet, ClientError>, latency: f64) {
        match outcome {
            Ok(answers) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency.observe(latency);
                let mut seen = self.max_bits.load(Ordering::Relaxed);
                let bits = latency.max(0.0).to_bits();
                while bits > seen {
                    match self.max_bits.compare_exchange_weak(
                        seen,
                        bits,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => seen = now,
                    }
                }
                if let Some(slot) = &self.answers {
                    slot.lock().expect("answers lock")[index] = Some(answers);
                }
            }
            Err(e) => {
                if is_timeout(&e) {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn is_timeout(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Protocol(ProtocolError::Io(io))
            if io.kind() == std::io::ErrorKind::TimedOut
                || io.kind() == std::io::ErrorKind::WouldBlock
    )
}

fn retry_config(opts: &RunOptions, plan_seed: u64, stream: u64) -> RetryConfig {
    RetryConfig::default()
        .with_max_retries(opts.max_retries)
        .with_connect_timeout(opts.connect_timeout)
        .with_read_timeout(opts.read_timeout)
        .with_jitter_seed(plan_seed ^ (0xB0B0 + stream))
}

/// Replays `plan` against the server at `addr` and reports what the
/// clients measured plus the server-side window delta.
pub fn run(plan: &RequestPlan, addr: &str, opts: &RunOptions) -> RunReport {
    let before = scrape(addr, opts);
    let measure = Measure::new(plan.requests.len(), opts.capture_answers);
    let retries = AtomicU64::new(0);

    let start = Instant::now();
    match plan.mode {
        Mode::Open { .. } => run_open(plan, addr, opts, &measure, &retries, start),
        Mode::Closed { think, .. } => run_closed(plan, addr, opts, &measure, &retries, think),
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let after = scrape(addr, opts);
    let ok = measure.ok.load(Ordering::Relaxed);
    let offered_qps = match plan.mode {
        Mode::Open { offered_qps } => Some(offered_qps),
        Mode::Closed { .. } => None,
    };
    let q = |p: f64| measure.latency.quantile(p).unwrap_or(0.0);
    let count = measure.latency.count();
    RunReport {
        mode: match plan.mode {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
        },
        requests: plan.requests.len(),
        ok,
        errors: measure.errors.load(Ordering::Relaxed),
        timeouts: measure.timeouts.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        wall_secs: wall,
        offered_qps,
        achieved_qps: ok as f64 / wall,
        p50: q(0.50),
        p95: q(0.95),
        p99: q(0.99),
        p999: q(0.999),
        mean_latency: if count == 0 {
            0.0
        } else {
            measure.latency.sum() / count as f64
        },
        max_latency: f64::from_bits(measure.max_bits.load(Ordering::Relaxed)),
        fingerprint: plan.fingerprint(),
        server: ServerWindow::from_scrapes(before.as_ref(), after.as_ref()),
        answers: measure
            .answers
            .map(|m| m.into_inner().expect("answers lock")),
    }
}

/// Open loop: workers pull the next request index, sleep until its due
/// time, and measure from the due time.
fn run_open(
    plan: &RequestPlan,
    addr: &str,
    opts: &RunOptions,
    measure: &Measure,
    retries: &AtomicU64,
    start: Instant,
) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..opts.connections.max(1) {
            let next = &next;
            scope.spawn(move || {
                let mut client = RetryingClient::new(addr, retry_config(opts, plan.seed, w as u64));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = plan.requests.get(i) else {
                        break;
                    };
                    let due = start + request.offset;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let outcome = client
                        .query(plan.query(request), &request.qtype)
                        .map(|reply| {
                            reply
                                .answers
                                .iter()
                                .map(|a| (a.id.0, a.distance.to_bits()))
                                .collect()
                        });
                    // Latency from the *intended* start: sender-side
                    // queueing under overload is measured, not omitted.
                    let latency = due.elapsed().as_secs_f64();
                    measure.record(request.index, outcome, latency);
                }
                retries.fetch_add(client.retries_performed(), Ordering::Relaxed);
            });
        }
    });
}

/// Closed loop: one thread per session, each pacing itself with think
/// time between reply and next request.
fn run_closed(
    plan: &RequestPlan,
    addr: &str,
    opts: &RunOptions,
    measure: &Measure,
    retries: &AtomicU64,
    think: Duration,
) {
    std::thread::scope(|scope| {
        for s in 0..plan.sessions() {
            scope.spawn(move || {
                let mut client =
                    RetryingClient::new(addr, retry_config(opts, plan.seed, 1000 + s as u64));
                let mut first = true;
                for request in plan.requests.iter().filter(|r| r.session == s) {
                    if !first && !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    first = false;
                    let t0 = Instant::now();
                    let outcome = client
                        .query(plan.query(request), &request.qtype)
                        .map(|reply| {
                            reply
                                .answers
                                .iter()
                                .map(|a| (a.id.0, a.distance.to_bits()))
                                .collect()
                        });
                    let latency = t0.elapsed().as_secs_f64();
                    measure.record(request.index, outcome, latency);
                }
                retries.fetch_add(client.retries_performed(), Ordering::Relaxed);
            });
        }
    });
}

/// One metrics scrape, parsed; `None` when the server has no recorder
/// (empty exposition) or the scrape fails.
fn scrape(addr: &str, opts: &RunOptions) -> Option<Snapshot> {
    let mut client = RetryingClient::new(addr, retry_config(opts, 0, 0x5C4A));
    let text = client.metrics().ok()?;
    let snapshot = Snapshot::from_exposition(&text).ok()?;
    (!snapshot.is_empty()).then_some(snapshot)
}

//! The run loop: replays a [`RequestPlan`] against a live server and
//! measures what a client actually experiences.
//!
//! Latency is recorded per request from monotonic timestamps
//! ([`std::time::Instant`]) into an HDR-style log-bucketed `mq-obs`
//! [`Histogram`] (constant relative error per bucket from 10 µs to
//! 60 s). Open-loop latency is measured from the request's *intended*
//! start, not from when a sender thread got around to it — queueing
//! delay under overload is part of the answer, never silently dropped
//! (the coordinated-omission trap).
//!
//! Before and after the run, the driver scrapes the server's metrics
//! endpoint; the delta over the run window (batches flushed, mean batch
//! size, queue-wait quantiles) lands in the [`RunReport`] next to the
//! client-side numbers.

use crate::plan::{Mode, RequestPlan};
use crate::report::{AnswerSet, RunReport, ServerWindow, StepReport};
use mq_obs::{log_bounds, Histogram, Snapshot};
use mq_server::{ClientError, ProtocolError, RetryConfig, RetryingClient};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of one run that are not part of the workload itself.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Sender threads in open-loop mode (closed-loop spawns one thread
    /// per session instead). Bounds the in-flight requests; if all
    /// senders are busy past an arrival's due time, the wait shows up as
    /// measured latency.
    pub connections: usize,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-reply read timeout (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Transport retries per request before it counts as an error.
    pub max_retries: u32,
    /// Record every request's answers (id + distance bits) for oracle
    /// comparison — memory-heavy, test-suite use only.
    pub capture_answers: bool,
    /// Target collection; empty = the server's default collection.
    pub collection: String,
    /// Tenant the requests are attributed to for quota accounting;
    /// empty = the anonymous tenant.
    pub tenant: String,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            connections: 8,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(10)),
            max_retries: 3,
            capture_answers: false,
            collection: String::new(),
            tenant: String::new(),
        }
    }
}

/// Per-ramp-step measurement slice.
struct StepMeasure {
    latency: Histogram,
    ok: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

impl StepMeasure {
    fn new() -> Self {
        Self {
            latency: Histogram::new(&log_bounds(1e-5, 60.0, 20)),
            ok: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }
}

/// Shared measurement state all sender threads write into.
struct Measure {
    latency: Histogram,
    ok: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    /// Requests the server refused with a typed `Overloaded` reply —
    /// backpressure working as designed, counted apart from transport
    /// errors and excluded from the latency distribution.
    rejected: AtomicU64,
    /// Max observed latency in f64 bits (CAS loop; latencies are
    /// non-negative so the bit pattern ordering matches the value
    /// ordering).
    max_bits: AtomicU64,
    answers: Option<Mutex<crate::report::CapturedAnswers>>,
    /// One slice per ramp segment (ramp mode only).
    steps: Vec<StepMeasure>,
}

impl Measure {
    fn new(n: usize, capture: bool, ramp_steps: usize) -> Self {
        Self {
            // 10 µs .. 60 s at 20 buckets per decade: relative error per
            // bucket ~12%, 136-ish buckets — the HDR-style layout.
            latency: Histogram::new(&log_bounds(1e-5, 60.0, 20)),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
            answers: capture.then(|| Mutex::new(vec![None; n])),
            steps: (0..ramp_steps).map(|_| StepMeasure::new()).collect(),
        }
    }

    fn record(
        &self,
        index: usize,
        step: Option<usize>,
        outcome: Result<AnswerSet, ClientError>,
        latency: f64,
    ) {
        let step = step.and_then(|s| self.steps.get(s));
        match outcome {
            Ok(answers) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                self.latency.observe(latency);
                if let Some(s) = step {
                    s.ok.fetch_add(1, Ordering::Relaxed);
                    s.latency.observe(latency);
                }
                let mut seen = self.max_bits.load(Ordering::Relaxed);
                let bits = latency.max(0.0).to_bits();
                while bits > seen {
                    match self.max_bits.compare_exchange_weak(
                        seen,
                        bits,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => seen = now,
                    }
                }
                if let Some(slot) = &self.answers {
                    slot.lock().expect("answers lock")[index] = Some(answers);
                }
            }
            Err(ClientError::Overloaded { .. }) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = step {
                    s.rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => {
                if is_timeout(&e) {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(s) = step {
                    s.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn is_timeout(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Protocol(ProtocolError::Io(io))
            if io.kind() == std::io::ErrorKind::TimedOut
                || io.kind() == std::io::ErrorKind::WouldBlock
    )
}

fn retry_config(opts: &RunOptions, plan_seed: u64, stream: u64) -> RetryConfig {
    RetryConfig::default()
        .with_max_retries(opts.max_retries)
        .with_connect_timeout(opts.connect_timeout)
        .with_read_timeout(opts.read_timeout)
        .with_jitter_seed(plan_seed ^ (0xB0B0 + stream))
}

/// Replays `plan` against the server at `addr` and reports what the
/// clients measured plus the server-side window delta.
pub fn run(plan: &RequestPlan, addr: &str, opts: &RunOptions) -> RunReport {
    let before = scrape(addr, opts);
    let segments = plan.ramp_segments();
    let measure = Measure::new(
        plan.requests.len(),
        opts.capture_answers,
        segments.as_ref().map(|s| s.len()).unwrap_or(0),
    );
    let retries = AtomicU64::new(0);

    let start = Instant::now();
    match plan.mode {
        // Ramp pacing lives entirely in the plan's arrival offsets, so
        // the open-loop sender drives both.
        Mode::Open { .. } | Mode::Ramp { .. } => {
            run_open(plan, addr, opts, &measure, &retries, start)
        }
        Mode::Closed { think, .. } => run_closed(plan, addr, opts, &measure, &retries, think),
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let after = scrape(addr, opts);
    let ok = measure.ok.load(Ordering::Relaxed);
    let offered_qps = match plan.mode {
        Mode::Open { offered_qps } => Some(offered_qps),
        Mode::Closed { .. } | Mode::Ramp { .. } => None,
    };

    // Per-step windows and the saturation knee: the first step where the
    // server rejected work or delivered under 90% of its budget.
    let steps: Option<Vec<StepReport>> = segments.map(|segs| {
        segs.iter()
            .zip(&measure.steps)
            .map(|(seg, m)| StepReport {
                offered_qps: seg.rate_qps,
                requests: seg.len,
                ok: m.ok.load(Ordering::Relaxed),
                rejected: m.rejected.load(Ordering::Relaxed),
                failed: m.failed.load(Ordering::Relaxed),
                p99: m.latency.quantile(0.99).unwrap_or(0.0),
            })
            .collect()
    });
    let knee_qps = steps.as_ref().and_then(|steps| {
        steps
            .iter()
            .find(|s| s.rejected > 0 || (s.ok as f64) < 0.9 * s.requests as f64)
            .map(|s| s.offered_qps)
    });

    let q = |p: f64| measure.latency.quantile(p).unwrap_or(0.0);
    let count = measure.latency.count();
    RunReport {
        mode: match plan.mode {
            Mode::Open { .. } => "open",
            Mode::Closed { .. } => "closed",
            Mode::Ramp { .. } => "ramp",
        },
        requests: plan.requests.len(),
        ok,
        errors: measure.errors.load(Ordering::Relaxed),
        timeouts: measure.timeouts.load(Ordering::Relaxed),
        rejected: measure.rejected.load(Ordering::Relaxed),
        retries: retries.load(Ordering::Relaxed),
        wall_secs: wall,
        offered_qps,
        achieved_qps: ok as f64 / wall,
        p50: q(0.50),
        p95: q(0.95),
        p99: q(0.99),
        p999: q(0.999),
        mean_latency: if count == 0 {
            0.0
        } else {
            measure.latency.sum() / count as f64
        },
        max_latency: f64::from_bits(measure.max_bits.load(Ordering::Relaxed)),
        fingerprint: plan.fingerprint(),
        steps,
        knee_qps,
        server: ServerWindow::from_scrapes(before.as_ref(), after.as_ref()),
        answers: measure
            .answers
            .map(|m| m.into_inner().expect("answers lock")),
    }
}

/// Open loop: workers pull the next request index, sleep until its due
/// time, and measure from the due time.
fn run_open(
    plan: &RequestPlan,
    addr: &str,
    opts: &RunOptions,
    measure: &Measure,
    retries: &AtomicU64,
    start: Instant,
) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..opts.connections.max(1) {
            let next = &next;
            scope.spawn(move || {
                let mut client = RetryingClient::new(addr, retry_config(opts, plan.seed, w as u64));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = plan.requests.get(i) else {
                        break;
                    };
                    let due = start + request.offset;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let outcome = client
                        .query_in(
                            &opts.collection,
                            &opts.tenant,
                            plan.query(request),
                            &request.qtype,
                        )
                        .map(|reply| {
                            reply
                                .answers
                                .iter()
                                .map(|a| (a.id.0, a.distance.to_bits()))
                                .collect()
                        });
                    // Latency from the *intended* start: sender-side
                    // queueing under overload is measured, not omitted.
                    let latency = due.elapsed().as_secs_f64();
                    measure.record(
                        request.index,
                        plan.ramp_step_of(request.index),
                        outcome,
                        latency,
                    );
                }
                retries.fetch_add(client.retries_performed(), Ordering::Relaxed);
            });
        }
    });
}

/// Closed loop: one thread per session, each pacing itself with think
/// time between reply and next request.
fn run_closed(
    plan: &RequestPlan,
    addr: &str,
    opts: &RunOptions,
    measure: &Measure,
    retries: &AtomicU64,
    think: Duration,
) {
    std::thread::scope(|scope| {
        for s in 0..plan.sessions() {
            scope.spawn(move || {
                let mut client =
                    RetryingClient::new(addr, retry_config(opts, plan.seed, 1000 + s as u64));
                let mut first = true;
                for request in plan.requests.iter().filter(|r| r.session == s) {
                    if !first && !think.is_zero() {
                        std::thread::sleep(think);
                    }
                    first = false;
                    let t0 = Instant::now();
                    let outcome = client
                        .query_in(
                            &opts.collection,
                            &opts.tenant,
                            plan.query(request),
                            &request.qtype,
                        )
                        .map(|reply| {
                            reply
                                .answers
                                .iter()
                                .map(|a| (a.id.0, a.distance.to_bits()))
                                .collect()
                        });
                    let latency = t0.elapsed().as_secs_f64();
                    measure.record(request.index, None, outcome, latency);
                }
                retries.fetch_add(client.retries_performed(), Ordering::Relaxed);
            });
        }
    });
}

/// One metrics scrape, parsed; `None` when the server has no recorder
/// (empty exposition) or the scrape fails.
fn scrape(addr: &str, opts: &RunOptions) -> Option<Snapshot> {
    let mut client = RetryingClient::new(addr, retry_config(opts, 0, 0x5C4A));
    let text = client.metrics().ok()?;
    let snapshot = Snapshot::from_exposition(&text).ok()?;
    (!snapshot.is_empty()).then_some(snapshot)
}

//! The handle the runtime crates actually thread around.

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram};
use crate::registry::{Registry, Snapshot};
use std::sync::Arc;

/// A cloneable handle to a [`Registry`] — or to nothing.
///
/// Layers accept a `&Recorder` at wiring time, register their instruments
/// through it, and keep the returned `Option<Arc<...>>` handles. With
/// [`Recorder::disabled`] every registration returns `None`, so the hot
/// path degenerates to a single `Option` discriminant check and no
/// atomics are touched: the equivalence suites prove answers stay
/// bit-identical with observability on or off, and this is why.
#[derive(Clone, Default)]
pub struct Recorder {
    registry: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder backed by `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            registry: Some(registry),
        }
    }

    /// A recorder backed by a fresh private registry (convenient in
    /// tests).
    pub fn enabled() -> Self {
        Self::new(Arc::new(Registry::new()))
    }

    /// The no-op recorder: every registration returns `None` and nothing
    /// is ever recorded.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Registers a [`Counter`] series (`None` when disabled).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Option<Arc<Counter>> {
        self.registry
            .as_ref()
            .map(|r| r.counter(name, help, labels))
    }

    /// Registers a [`FloatCounter`] series (`None` when disabled).
    pub fn float_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Option<Arc<FloatCounter>> {
        self.registry
            .as_ref()
            .map(|r| r.float_counter(name, help, labels))
    }

    /// Registers a [`Gauge`] series (`None` when disabled).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Option<Arc<Gauge>> {
        self.registry.as_ref().map(|r| r.gauge(name, help, labels))
    }

    /// Registers a [`Histogram`] series (`None` when disabled).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Option<Arc<Histogram>> {
        self.registry
            .as_ref()
            .map(|r| r.histogram(name, help, labels, bounds))
    }

    /// Registers a derived gauge (no-op when disabled).
    pub fn derived_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        if let Some(r) = self.registry.as_ref() {
            r.derived_gauge(name, help, labels, f);
        }
    }

    /// Renders the backing registry (empty string when disabled).
    pub fn render(&self) -> String {
        self.registry
            .as_ref()
            .map(|r| r.render())
            .unwrap_or_default()
    }

    /// Snapshots the backing registry (empty snapshot when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.registry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_registers_nothing() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.counter("mq_x_total", "x", &[]).is_none());
        assert!(r.histogram("mq_y_seconds", "y", &[], &[1.0]).is_none());
        assert!(r.render().is_empty());
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn enabled_recorder_shares_its_registry_across_clones() {
        let r = Recorder::enabled();
        let c1 = r.counter("mq_x_total", "x", &[]).unwrap();
        let c2 = r.clone().counter("mq_x_total", "x", &[]).unwrap();
        c1.add(2);
        c2.add(3);
        assert_eq!(r.snapshot().value("mq_x_total"), 5.0);
    }
}

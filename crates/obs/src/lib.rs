//! `mq-obs`: a zero-dependency observability core for the mquery workspace.
//!
//! The paper's whole argument is quantitative — §4 splits query cost into
//! `C_io` (page reads) and `C_cpu` (distance calculations) and §5's
//! optimizations are judged by how much they shave off each term — so the
//! runtime needs those numbers continuously, per layer, while it serves
//! traffic, not just as end-of-run [`ExecutionStats`] summaries.
//!
//! This crate provides the three pieces every layer shares:
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`FloatCounter`],
//!   [`Histogram`]) — lock-free atomics, safe to hammer from the worker
//!   pool's hot loops.
//! * **A [`Registry`]** — named, labelled families with cheap
//!   [`snapshot`](Registry::snapshot)/[`Snapshot::delta`] and a
//!   Prometheus-style text [`render`](Registry::render) served over the
//!   MQNW `STATS` opcode.
//! * **A [`Recorder`] handle** — the only type the runtime crates touch.
//!   [`Recorder::disabled`] carries no registry, so every instrumentation
//!   site collapses to a single `Option` check and the equivalence suites
//!   (`parallel_equivalence`, `oracle_equivalence`) stay bit-identical with
//!   observability on or off.
//!
//! Span-level tracing is a [`Histogram`] of elapsed seconds plus the
//! [`SpanTimer`] drop guard from [`Histogram::start_timer`]; stages like
//! *engine step*, *page fetch*, *kernel eval* and *merge* each get one.
//!
//! The crate is deliberately dependency-free (std only): every runtime
//! crate links it, so it must never widen the build graph.
//!
//! [`ExecutionStats`]: https://docs.rs/mq-core

#![warn(missing_docs)]

mod metrics;
mod recorder;
mod registry;

pub use metrics::{log_bounds, Counter, FloatCounter, Gauge, Histogram, SpanTimer};
pub use recorder::Recorder;
pub use registry::{MetricKind, Registry, Snapshot};

/// Default bucket upper bounds (in seconds) for stage/span latency
/// histograms: log-ish spacing from 10 µs to 10 s.
pub const DURATION_BOUNDS: [f64; 14] = [
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
];

/// Default bucket upper bounds for small-count histograms (batch sizes,
/// queue depths): powers of two up to 256.
pub const SIZE_BOUNDS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

//! The four instrument types. All of them are plain atomics: incrementing
//! a counter from the worker pool's inner loop costs one relaxed
//! fetch-add, and none of them ever block.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can go up and down (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` counter (total seconds spent idle,
/// summed span durations). Stored as bit-cast `f64` in an `AtomicU64`,
/// updated with a CAS loop — contention on these is low (one add per
/// condvar wake or span end, not per distance calculation).
#[derive(Debug, Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    /// Creates a float counter starting at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Adds `v` (negative or non-finite values are ignored so the counter
    /// stays monotone).
    pub fn add(&self, v: f64) {
        if !v.is_finite() || v <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram: `bounds` are strictly increasing bucket
/// upper limits, with an implicit `+Inf` overflow bucket at the end.
/// Buckets are stored non-cumulatively so an observation touches exactly
/// one bucket; [`Registry::render`](crate::Registry::render) accumulates
/// them into Prometheus `le` form.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    sum: FloatCounter,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds. Bounds must
    /// be finite and strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets,
            sum: FloatCounter::new(),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// Records the seconds elapsed since `start`.
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_secs_f64());
    }

    /// Starts a span: the returned guard records the elapsed seconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> SpanTimer<'_> {
        SpanTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// The configured bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) observation counts, including the final
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }
}

/// Drop guard from [`Histogram::start_timer`]: records the span's elapsed
/// seconds into the histogram when it goes out of scope.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl SpanTimer<'_> {
    /// Seconds elapsed so far (the span keeps running).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.observe_since(self.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.sub(2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn float_counter_accumulates_and_stays_monotone() {
        let f = FloatCounter::new();
        f.add(1.5);
        f.add(2.25);
        f.add(-7.0); // ignored
        f.add(f64::NAN); // ignored
        assert_eq!(f.get(), 3.75);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        // 0.5 and 1.0 fall in le=1 (bound is inclusive), 3.0 in le=5,
        // 7.0 in le=10, 100.0 overflows.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 111.5).abs() < 1e-9);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new(&[1000.0]);
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }
}

//! The four instrument types. All of them are plain atomics: incrementing
//! a counter from the worker pool's inner loop costs one relaxed
//! fetch-add, and none of them ever block.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can go up and down (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` counter (total seconds spent idle,
/// summed span durations). Stored as bit-cast `f64` in an `AtomicU64`,
/// updated with a CAS loop — contention on these is low (one add per
/// condvar wake or span end, not per distance calculation).
#[derive(Debug, Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    /// Creates a float counter starting at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Adds `v` (negative or non-finite values are ignored so the counter
    /// stays monotone).
    pub fn add(&self, v: f64) {
        if !v.is_finite() || v <= 0.0 {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram: `bounds` are strictly increasing bucket
/// upper limits, with an implicit `+Inf` overflow bucket at the end.
/// Buckets are stored non-cumulatively so an observation touches exactly
/// one bucket; [`Registry::render`](crate::Registry::render) accumulates
/// them into Prometheus `le` form.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    sum: FloatCounter,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds. Bounds must
    /// be finite and strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.into(),
            buckets,
            sum: FloatCounter::new(),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// Records the seconds elapsed since `start`.
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_secs_f64());
    }

    /// Starts a span: the returned guard records the elapsed seconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> SpanTimer<'_> {
        SpanTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// The configured bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) observation counts, including the final
    /// overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated from the bucket
    /// counts, or `None` if the histogram is empty.
    ///
    /// The estimate uses rank selection with linear interpolation inside
    /// the chosen bucket, so an observation stream placed exactly on the
    /// bucket boundaries is recovered exactly: bounds are *inclusive*
    /// upper limits (`observe(b)` lands in the `le = b` bucket), and the
    /// interpolation reaches the bucket's upper bound when the target
    /// rank is the bucket's last observation. Two clamps keep the result
    /// meaningful at the edges:
    ///
    /// * a rank that falls in the overflow (`+Inf`) bucket reports the
    ///   largest *finite* bound — the histogram cannot resolve beyond its
    ///   range, and `+Inf` would poison downstream arithmetic;
    /// * the first bucket's lower edge is `min(0, bounds[0])`, so
    ///   non-negative quantities (latencies) never interpolate below 0.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.bounds, &self.bucket_counts(), q)
    }
}

/// Rank-selection quantile over non-cumulative bucket `counts` (one more
/// entry than `bounds`: the overflow bucket last). Shared by
/// [`Histogram::quantile`] and `Snapshot::quantile`.
pub(crate) fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || !q.is_finite() {
        return None;
    }
    // The rank of the selected observation, 1-based: q <= 0 selects the
    // first, q >= 1 the last.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if cumulative + count >= rank {
            let Some(&upper) = bounds.get(i) else {
                // Overflow bucket: clamp to the largest finite bound.
                return Some(bounds.last().copied().unwrap_or(f64::INFINITY));
            };
            let lower = if i == 0 {
                bounds[0].min(0.0)
            } else {
                bounds[i - 1]
            };
            let within = (rank - cumulative) as f64 / count as f64;
            return Some(lower + within * (upper - lower));
        }
        cumulative += count;
    }
    None
}

/// Log-spaced histogram bounds: `per_decade` bucket upper limits per
/// factor of ten, from `lo` up to (at least) `hi` — the HDR-style layout
/// the load generator uses for request latencies, where relative error
/// per bucket is constant across six orders of magnitude.
///
/// # Panics
/// Panics unless `0 < lo < hi` (both finite) and `per_decade > 0`.
pub fn log_bounds(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
    assert!(
        lo.is_finite() && hi.is_finite() && lo > 0.0 && lo < hi && per_decade > 0,
        "log_bounds requires 0 < lo < hi and per_decade > 0"
    );
    let step = 10f64.powf(1.0 / per_decade as f64);
    let mut bounds = vec![lo];
    while *bounds.last().unwrap() < hi {
        let next = bounds.last().unwrap() * step;
        bounds.push(next);
    }
    bounds
}

/// Drop guard from [`Histogram::start_timer`]: records the span's elapsed
/// seconds into the histogram when it goes out of scope.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl SpanTimer<'_> {
    /// Seconds elapsed so far (the span keeps running).
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.observe_since(self.start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.sub(2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn float_counter_accumulates_and_stays_monotone() {
        let f = FloatCounter::new();
        f.add(1.5);
        f.add(2.25);
        f.add(-7.0); // ignored
        f.add(f64::NAN); // ignored
        assert_eq!(f.get(), 3.75);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[1.0, 5.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 7.0, 100.0] {
            h.observe(v);
        }
        // 0.5 and 1.0 fall in le=1 (bound is inclusive), 3.0 in le=5,
        // 7.0 in le=10, 100.0 overflows.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 111.5).abs() < 1e-9);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new(&[1000.0]);
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0.0);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(&[1.0, 1.0]);
    }

    #[test]
    fn quantile_is_exact_on_boundary_aligned_observations() {
        // One bound per integer 1..=100, one observation on each bound:
        // every percentile is known exactly, and because bounds are
        // inclusive upper limits each observation occupies precisely its
        // own bucket.
        let bounds: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = Histogram::new(&bounds);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.50), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        assert_eq!(h.quantile(0.0), Some(1.0), "q=0 selects the minimum");
        assert_eq!(h.quantile(0.001), Some(1.0));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 4 observations in (2, 4]: ranks 1..=4 interpolate the bucket.
        for v in [2.5, 3.0, 3.5, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.25), Some(2.5));
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn quantile_value_on_boundary_never_spills_into_next_bucket() {
        // 100 observations of exactly 2.0 (a bound): every quantile must
        // report at most 2.0 — the old temptation is to place boundary
        // values in the *next* bucket, which would report p99 = 8.
        let h = Histogram::new(&[1.0, 2.0, 8.0]);
        for _ in 0..100 {
            h.observe(2.0);
        }
        let p99 = h.quantile(0.99).unwrap();
        assert!(
            p99 > 1.0 && p99 <= 2.0,
            "p99 = {p99} escaped the le=2 bucket"
        );
        assert_eq!(h.quantile(1.0), Some(2.0));
        assert_eq!(
            h.quantile(0.5),
            Some(1.5),
            "mid-rank interpolates from the lower edge"
        );
    }

    #[test]
    fn quantile_clamps_overflow_to_last_finite_bound() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(5.0);
        h.observe(1e9); // overflow bucket
        h.observe(1e9);
        let p99 = h.quantile(0.99).unwrap();
        assert_eq!(
            p99, 10.0,
            "overflow reports the largest finite bound, not +Inf"
        );
        assert!(h.quantile(0.99).unwrap().is_finite());
    }

    #[test]
    fn quantile_empty_and_bad_inputs() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        h.observe(0.5);
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn quantile_first_bucket_lower_edge_is_zero_for_positive_bounds() {
        let h = Histogram::new(&[8.0, 16.0]);
        h.observe(4.0);
        h.observe(4.0);
        // Rank 1 of 2 in bucket (0, 8]: interpolates to 4, not -something.
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert!(h.quantile(0.0).unwrap() >= 0.0);
    }

    #[test]
    fn log_bounds_cover_range_with_constant_ratio() {
        let b = log_bounds(1e-5, 10.0, 5);
        assert!(b[0] == 1e-5 && *b.last().unwrap() >= 10.0);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        for w in b.windows(2) {
            let ratio = w[1] / w[0];
            assert!((ratio - 10f64.powf(0.2)).abs() < 1e-9);
        }
        // 6 decades at 5 buckets per decade: 31 bounds (32 if the final
        // step lands a hair under `hi` in floating point).
        assert!(b.len() == 31 || b.len() == 32, "got {} bounds", b.len());
    }

    #[test]
    #[should_panic(expected = "log_bounds requires")]
    fn log_bounds_rejects_bad_range() {
        let _ = log_bounds(0.0, 1.0, 4);
    }
}

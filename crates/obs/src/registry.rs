//! The named metric registry: families of labelled series, text
//! exposition, and cheap snapshot/delta arithmetic.

use crate::metrics::{Counter, FloatCounter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

type LabelSet = Vec<(String, String)>;
type DerivedFn = Arc<dyn Fn() -> f64 + Send + Sync>;

/// The Prometheus-style type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing ([`Counter`], [`FloatCounter`]).
    Counter,
    /// Goes up and down ([`Gauge`] and derived gauges).
    Gauge,
    /// Fixed-boundary distribution ([`Histogram`]).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    FloatCounter(Arc<FloatCounter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Computed at snapshot/render time from other instruments (hit
    /// ratios). The closure must not call back into the registry — it runs
    /// with the registry lock held.
    Derived(DerivedFn),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) | Instrument::FloatCounter(_) => MetricKind::Counter,
            Instrument::Gauge(_) | Instrument::Derived(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<LabelSet, Instrument>,
}

/// A registry of named metric families. Registration takes a lock; the
/// returned `Arc` handles are lock-free thereafter, so layers register
/// their instruments once at wiring time and only touch atomics on the
/// hot path.
///
/// Registering the same `(name, labels)` pair again returns the existing
/// instrument, so independent components (e.g. every server of a
/// [`SharedNothingCluster`]) can share one series. Registering a name with
/// a conflicting kind panics — metric names are compile-time constants in
/// this workspace, so that is a programming error, not an input error.
///
/// [`SharedNothingCluster`]: https://docs.rs/mq-parallel
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        extract: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name {name:?} contains characters outside [a-zA-Z0-9_:]"
        );
        let mut owned: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        owned.sort();
        let mut families = self.families.lock().unwrap();
        let instrument = make();
        let kind = instrument.kind();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} registered twice with conflicting kinds ({:?} vs {kind:?})",
            family.kind
        );
        let slot = family.series.entry(owned).or_insert(instrument);
        extract(slot).expect("series kind matches family kind")
    }

    /// Registers (or fetches) a [`Counter`] series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a [`FloatCounter`] series (rendered as a
    /// Prometheus counter).
    pub fn float_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<FloatCounter> {
        self.register(
            name,
            help,
            labels,
            || Instrument::FloatCounter(Arc::new(FloatCounter::new())),
            |i| match i {
                Instrument::FloatCounter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a [`Gauge`] series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) a [`Histogram`] series with the given bucket
    /// bounds. If the series already exists its original bounds win.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::new(bounds))),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Registers a derived gauge: `f` is evaluated at every snapshot or
    /// render (with the registry lock held — it must not call back into
    /// the registry). Used for ratio metrics like buffer hit rate. A
    /// second registration for the same series replaces the closure.
    pub fn derived_gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let mut owned: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        owned.sort();
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind: MetricKind::Gauge,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == MetricKind::Gauge,
            "metric {name} registered twice with conflicting kinds ({:?} vs Gauge)",
            family.kind
        );
        family
            .series
            .insert(owned, Instrument::Derived(Arc::new(f)));
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (`# HELP`/`# TYPE` comments, one sample per line, histograms
    /// as cumulative `_bucket{le=...}` series plus `_sum` and `_count`).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, instrument) in &family.series {
                for (sample_name, extra, value) in flatten(name, instrument) {
                    let _ = writeln!(
                        out,
                        "{sample_name}{} {value}",
                        format_labels(labels, extra.as_deref())
                    );
                }
            }
        }
        out
    }

    /// Captures every sample as a flat `series -> value` map, keyed
    /// exactly like the exposition lines (`name{label="v"}`). Histograms
    /// flatten to their `_bucket`/`_sum`/`_count` samples.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().unwrap();
        let mut samples = BTreeMap::new();
        for (name, family) in families.iter() {
            for (labels, instrument) in &family.series {
                for (sample_name, extra, value) in flatten(name, instrument) {
                    let key = format!("{sample_name}{}", format_labels(labels, extra.as_deref()));
                    samples.insert(key, value);
                }
            }
        }
        Snapshot { samples }
    }
}

/// Expands one instrument into `(sample_name, optional le label, value)`
/// triples: a single sample for scalar instruments, the cumulative bucket
/// series plus `_sum`/`_count` for histograms.
fn flatten(name: &str, instrument: &Instrument) -> Vec<(String, Option<String>, f64)> {
    match instrument {
        Instrument::Counter(c) => vec![(name.to_string(), None, c.get() as f64)],
        Instrument::FloatCounter(c) => vec![(name.to_string(), None, c.get())],
        Instrument::Gauge(g) => vec![(name.to_string(), None, g.get() as f64)],
        Instrument::Derived(f) => vec![(name.to_string(), None, f())],
        Instrument::Histogram(h) => {
            let counts = h.bucket_counts();
            let mut out = Vec::with_capacity(counts.len() + 2);
            let mut cumulative = 0u64;
            for (i, count) in counts.iter().enumerate() {
                cumulative += count;
                let le = match h.bounds().get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                out.push((format!("{name}_bucket"), Some(le), cumulative as f64));
            }
            out.push((format!("{name}_sum"), None, h.sum()));
            out.push((format!("{name}_count"), None, cumulative as f64));
            out
        }
    }
}

/// Formats a label set as `{k="v",...}` (empty string when there are no
/// labels), escaping backslashes, quotes and newlines in values. The
/// histogram `le` label, when present, is appended last per Prometheus
/// convention.
fn format_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(le.map(|v| ("le", v)))
    {
        if !first {
            out.push(',');
        }
        first = false;
        let escaped = v
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

/// A point-in-time capture of every sample in a [`Registry`], keyed like
/// the exposition lines. Supports [`delta`](Snapshot::delta) arithmetic
/// for windowed reporting (the periodic server log prints
/// `now.delta(&last)` each interval).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    samples: BTreeMap<String, f64>,
}

impl Snapshot {
    /// The value of one series (e.g. `mq_core_steps_total` or
    /// `mq_server_batch_size_bucket{le="4"}`), if present.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.samples.get(series).copied()
    }

    /// Like [`get`](Snapshot::get) but defaults to `0.0` for missing
    /// series, which is the natural reading for counters.
    pub fn value(&self, series: &str) -> f64 {
        self.get(series).unwrap_or(0.0)
    }

    /// `self - earlier`, per series. Series missing from `earlier` count
    /// as zero there; series missing from `self` are omitted.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let samples = self
            .samples
            .iter()
            .map(|(k, v)| (k.clone(), v - earlier.value(k)))
            .collect();
        Snapshot { samples }
    }

    /// Iterates over `(series, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.samples.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Parses a Prometheus text exposition (what
    /// [`Registry::render`](crate::Registry::render) produces and the
    /// MQNW `STATS` opcode serves) back into a snapshot. `# HELP`/`# TYPE`
    /// comments and blank lines are skipped; any other unparseable line is
    /// an error — a scrape that fails here is torn or corrupt.
    pub fn from_exposition(text: &str) -> Result<Snapshot, String> {
        let mut samples = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, raw) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("sample line without a value: {line:?}"))?;
            let value: f64 = raw
                .parse()
                .map_err(|_| format!("unparseable sample value in line: {line:?}"))?;
            if samples.insert(series.to_string(), value).is_some() {
                return Err(format!("duplicate series in exposition: {series:?}"));
            }
        }
        Ok(Snapshot { samples })
    }

    /// The `q`-quantile of the histogram family `name`, reconstructed
    /// from its cumulative `_bucket{le=...}` samples; `None` if the
    /// family is absent or empty. When the family has several label sets
    /// (e.g. per-partition series) their buckets are summed, so the
    /// result is the aggregate distribution's quantile.
    ///
    /// Same estimator and edge-case behavior as
    /// [`Histogram::quantile`](crate::Histogram::quantile): linear
    /// interpolation within the selected bucket, overflow mass clamped to
    /// the largest finite bound.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        // Collect cumulative counts per `le` bound, summed across label
        // sets. Keys look like `name_bucket{le="0.5"}` or
        // `name_bucket{shard="3",le="0.5"}` — `le` is always last.
        let prefix = format!("{name}_bucket{{");
        let mut by_bound: Vec<(f64, f64)> = Vec::new();
        let mut overflow = 0.0f64;
        for (key, value) in self.samples.range(prefix.clone()..) {
            if !key.starts_with(&prefix) {
                break;
            }
            let le = key
                .rsplit_once("le=\"")
                .and_then(|(_, rest)| rest.strip_suffix("\"}"))?;
            if le == "+Inf" {
                overflow += *value;
            } else {
                let bound: f64 = le.parse().ok()?;
                match by_bound.iter_mut().find(|(b, _)| *b == bound) {
                    Some((_, v)) => *v += *value,
                    None => by_bound.push((bound, *value)),
                }
            }
        }
        if overflow == 0.0 && by_bound.is_empty() {
            return None;
        }
        by_bound.sort_by(|a, b| a.0.total_cmp(&b.0));
        // De-cumulate into per-bucket counts (the exposition is
        // cumulative), appending the overflow bucket's own mass.
        let bounds: Vec<f64> = by_bound.iter().map(|(b, _)| *b).collect();
        let mut counts = Vec::with_capacity(bounds.len() + 1);
        let mut prev = 0.0f64;
        for (_, cumulative) in &by_bound {
            counts.push((cumulative - prev).max(0.0).round() as u64);
            prev = *cumulative;
        }
        counts.push((overflow - prev).max(0.0).round() as u64);
        crate::metrics::quantile_from_buckets(&bounds, &counts, q)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the snapshot holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("mq_test_total", "help", &[("who", "a")]);
        let b = r.counter("mq_test_total", "help", &[("who", "a")]);
        a.add(3);
        assert_eq!(b.get(), 3, "same series must share one instrument");
        let other = r.counter("mq_test_total", "help", &[("who", "b")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "conflicting kinds")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("mq_test_total", "help", &[]);
        let _ = r.gauge("mq_test_total", "help", &[]);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let r = Registry::new();
        r.counter("mq_a_total", "a counter", &[("k", "v")]).add(7);
        r.gauge("mq_b", "a gauge", &[]).set(-2);
        let h = r.histogram("mq_c_seconds", "a histogram", &[], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(9.0);
        let text = r.render();
        assert!(text.contains("# TYPE mq_a_total counter"));
        assert!(text.contains("mq_a_total{k=\"v\"} 7"));
        assert!(text.contains("# TYPE mq_b gauge"));
        assert!(text.contains("mq_b -2"));
        assert!(text.contains("mq_c_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("mq_c_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("mq_c_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mq_c_seconds_count 3"));
        assert!(text.contains("mq_c_seconds_sum 10"));
    }

    #[test]
    fn derived_gauges_compute_at_render_time() {
        let r = Registry::new();
        let hits = r.counter("mq_hits_total", "hits", &[]);
        let misses = r.counter("mq_misses_total", "misses", &[]);
        let (h, m) = (Arc::clone(&hits), Arc::clone(&misses));
        r.derived_gauge("mq_hit_ratio", "hit ratio", &[], move || {
            let (h, m) = (h.get() as f64, m.get() as f64);
            if h + m == 0.0 {
                0.0
            } else {
                h / (h + m)
            }
        });
        hits.add(3);
        misses.add(1);
        assert_eq!(r.snapshot().value("mq_hit_ratio"), 0.75);
        assert!(r.render().contains("mq_hit_ratio 0.75"));
    }

    #[test]
    fn snapshot_delta_subtracts_per_series() {
        let r = Registry::new();
        let c = r.counter("mq_x_total", "x", &[]);
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        let after = r.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.value("mq_x_total"), 7.0);
        assert_eq!(after.value("mq_x_total"), 12.0);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("mq_esc_total", "esc", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains("mq_esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn exposition_roundtrips_through_from_exposition() {
        let r = Registry::new();
        r.counter("mq_rt_total", "rt", &[("k", "v")]).add(3);
        let h = r.histogram("mq_rt_seconds", "rt", &[], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(2.0);
        let direct = r.snapshot();
        let parsed = Snapshot::from_exposition(&r.render()).expect("parse rendered exposition");
        assert_eq!(direct, parsed, "render/parse must round-trip exactly");
        assert!(Snapshot::from_exposition("garbage without value\n").is_err());
        assert!(Snapshot::from_exposition("mq_x notafloat\n").is_err());
    }

    #[test]
    fn snapshot_quantile_matches_histogram_quantile() {
        let r = Registry::new();
        let bounds: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let h = r.histogram("mq_lat_seconds", "lat", &[], &bounds);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let snap = r.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(
                snap.quantile("mq_lat_seconds", q),
                h.quantile(q),
                "snapshot and histogram disagree at q={q}"
            );
        }
        assert_eq!(snap.quantile("mq_lat_seconds", 0.5), Some(50.0));
        assert_eq!(snap.quantile("mq_absent_seconds", 0.5), None);
    }

    #[test]
    fn snapshot_quantile_aggregates_label_sets_and_clamps_overflow() {
        let r = Registry::new();
        let a = r.histogram("mq_m_seconds", "m", &[("shard", "0")], &[1.0, 10.0]);
        let b = r.histogram("mq_m_seconds", "m", &[("shard", "1")], &[1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(1e6); // overflow
        let snap = r.snapshot();
        // 3 observations total: p50 is in (1, 10], p100 clamps to 10.
        let p50 = snap.quantile("mq_m_seconds", 0.5).unwrap();
        assert!(p50 > 1.0 && p50 <= 10.0, "p50 = {p50}");
        assert_eq!(snap.quantile("mq_m_seconds", 1.0), Some(10.0));
        // A quantile entirely inside the overflow mass stays finite.
        assert!(snap.quantile("mq_m_seconds", 0.999).unwrap().is_finite());
    }

    #[test]
    fn every_sample_line_parses() {
        let r = Registry::new();
        r.counter("mq_p_total", "p", &[("a", "b")]).add(2);
        let h = r.histogram("mq_q_seconds", "q", &[], &crate::DURATION_BOUNDS);
        h.observe(0.003);
        for line in r.render().lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample line: {line}"
            );
        }
    }
}

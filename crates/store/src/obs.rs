//! Durability counters ([`StoreStats`]) and their observability mirror
//! ([`StoreObs`]).
//!
//! The atomic counters are the source of truth and tick from the store's
//! construction; attaching a [`mq_obs::Recorder`] later registers the
//! `mq_store_*` series and *catches them up* to the current totals, so
//! recovery work done before the registry existed (WAL records replayed
//! during `open`) is still visible in `mq stats`.

use mq_obs::{Counter, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of a store's durability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL records appended (one per insert/delete).
    pub wal_appends: u64,
    /// `fsync`/`fdatasync` calls issued (WAL, segment, directory).
    pub fsyncs: u64,
    /// Checkpoints completed (including the implicit one after recovery).
    pub checkpoints: u64,
    /// Complete WAL records replayed by `open`.
    pub recovery_replayed_records: u64,
    /// In-place frame rewrites (one per insert/delete).
    pub page_rewrites: u64,
}

/// Interior-mutable counters shared by the store and its obs mirror.
#[derive(Debug, Default)]
pub struct StoreCounters {
    wal_appends: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    recovery_replayed_records: AtomicU64,
    page_rewrites: AtomicU64,
}

impl StoreCounters {
    /// One WAL record appended.
    pub fn count_wal_append(&self) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// One `fsync`-class call issued.
    pub fn count_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// One checkpoint completed.
    pub fn count_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` WAL records replayed during recovery.
    pub fn count_replayed(&self, n: u64) {
        self.recovery_replayed_records
            .fetch_add(n, Ordering::Relaxed);
    }

    /// One frame rewritten in place.
    pub fn count_page_rewrite(&self) {
        self.page_rewrites.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovery_replayed_records: self.recovery_replayed_records.load(Ordering::Relaxed),
            page_rewrites: self.page_rewrites.load(Ordering::Relaxed),
        }
    }
}

/// Registry-side mirror of [`StoreCounters`].
///
/// `sync` raises each registry counter to the store's current total
/// (registry counters are monotonic, so only the positive delta is
/// added). With several per-partition stores attached to one registry the
/// series aggregate — each store contributes its own deltas.
#[derive(Debug)]
pub struct StoreObs {
    wal_appends: Arc<Counter>,
    fsyncs: Arc<Counter>,
    checkpoints: Arc<Counter>,
    recovery_replayed_records: Arc<Counter>,
    page_rewrites: Arc<Counter>,
    /// Totals already pushed to the registry by *this* mirror, so shared
    /// counters never double-count and never go backwards.
    pushed: StoreCounters,
}

impl StoreObs {
    /// Registers (or looks up) the `mq_store_*` series.
    pub fn register(registry: &Arc<Registry>) -> Self {
        Self {
            wal_appends: registry.counter(
                "mq_store_wal_appends_total",
                "WAL records appended by the file-backed page store",
                &[],
            ),
            fsyncs: registry.counter(
                "mq_store_fsyncs_total",
                "fsync-class calls issued by the file-backed page store",
                &[],
            ),
            checkpoints: registry.counter(
                "mq_store_checkpoints_total",
                "Segment checkpoints completed by the file-backed page store",
                &[],
            ),
            recovery_replayed_records: registry.counter(
                "mq_store_recovery_replayed_records_total",
                "Complete WAL records replayed during crash recovery",
                &[],
            ),
            page_rewrites: registry.counter(
                "mq_store_page_rewrites_total",
                "In-place page-frame rewrites (one per insert/delete)",
                &[],
            ),
            pushed: StoreCounters::default(),
        }
    }

    /// Pushes the delta between `counters` and what this mirror already
    /// pushed.
    pub fn sync(&self, counters: &StoreCounters) {
        let now = counters.snapshot();
        let pushed = self.pushed.snapshot();
        let push = |c: &Counter, now: u64, pushed: u64, record: &AtomicU64| {
            if now > pushed {
                c.add(now - pushed);
                record.fetch_add(now - pushed, Ordering::Relaxed);
            }
        };
        push(
            &self.wal_appends,
            now.wal_appends,
            pushed.wal_appends,
            &self.pushed.wal_appends,
        );
        push(&self.fsyncs, now.fsyncs, pushed.fsyncs, &self.pushed.fsyncs);
        push(
            &self.checkpoints,
            now.checkpoints,
            pushed.checkpoints,
            &self.pushed.checkpoints,
        );
        push(
            &self.recovery_replayed_records,
            now.recovery_replayed_records,
            pushed.recovery_replayed_records,
            &self.pushed.recovery_replayed_records,
        );
        push(
            &self.page_rewrites,
            now.page_rewrites,
            pushed.page_rewrites,
            &self.pushed.page_rewrites,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_moves_with_ticks() {
        let c = StoreCounters::default();
        c.count_wal_append();
        c.count_wal_append();
        c.count_fsync();
        c.count_checkpoint();
        c.count_replayed(5);
        c.count_page_rewrite();
        let s = c.snapshot();
        assert_eq!(
            s,
            StoreStats {
                wal_appends: 2,
                fsyncs: 1,
                checkpoints: 1,
                recovery_replayed_records: 5,
                page_rewrites: 1,
            }
        );
    }

    #[test]
    fn sync_pushes_only_deltas() {
        let registry = Arc::new(Registry::new());
        let obs = StoreObs::register(&registry);
        let c = StoreCounters::default();
        c.count_replayed(3);
        c.count_wal_append();
        obs.sync(&c);
        obs.sync(&c); // idempotent: no delta, no double count
        assert_eq!(obs.recovery_replayed_records.get(), 3);
        assert_eq!(obs.wal_appends.get(), 1);
        c.count_wal_append();
        obs.sync(&c);
        assert_eq!(obs.wal_appends.get(), 2);
    }

    #[test]
    fn two_stores_aggregate_into_one_registry() {
        let registry = Arc::new(Registry::new());
        let obs_a = StoreObs::register(&registry);
        let obs_b = StoreObs::register(&registry);
        let (a, b) = (StoreCounters::default(), StoreCounters::default());
        a.count_wal_append();
        b.count_wal_append();
        b.count_wal_append();
        obs_a.sync(&a);
        obs_b.sync(&b);
        // Same unlabeled series, summed across partitions.
        assert_eq!(obs_a.wal_appends.get(), 3);
    }
}

//! On-disk formats of the durable store: the segment file and the WAL.
//!
//! **Segment file** (`segment.mqsg`) — fixed-size page frames at computed
//! offsets, so a page rewrite is a single positioned write:
//!
//! ```text
//! header (36 B):
//!   MQSG | version:u16 | pad:u16 | block:u32 | rec_header:u32
//!        | frame_bytes:u32 | page_count:u32 | id_space:u32
//!        | max_rec:u32 | capacity:u32
//! frame i at 36 + i·frame_bytes:
//!   rec_count:u32 | checksum:u64 | rec_count × (oid:u32, len:u32, payload)
//!   | zero padding to frame_bytes
//! ```
//!
//! The frame checksum is [`mq_storage::page_checksum`] over the frame's
//! record ids — the *same* value the simulated disk precomputes per page,
//! so both backends agree on what "this page is intact" means.
//!
//! **Write-ahead log** (`wal.mqwl`) — an append-only run of length-prefixed,
//! CRC-guarded records, each carrying the full post-image of one rewritten
//! page (physiological logging; replay is idempotent, latest write wins):
//!
//! ```text
//! header (8 B): MQWL | version:u16 | pad:u16
//! record: len:u32 | fnv1a64(payload):u64 | payload
//! payload: op:u8 (1=insert, 2=delete) | oid:u32 | page:u32
//!        | page_count_after:u32 | id_space_after:u32
//!        | rec_count:u32 | rec_count × (oid:u32, len:u32, payload)
//! ```
//!
//! A torn tail (crash mid-append) is detected by a short length prefix, a
//! short payload, or a CRC mismatch — recovery stops at the last complete
//! record, exactly the paper-adjacent "replay to the last complete record"
//! contract.

use crate::error::StoreError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mq_metric::ObjectId;
use mq_storage::{page_checksum, ObjectCodec, PageId, StorageObject};

/// Segment magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"MQSG";
/// WAL magic.
pub const WAL_MAGIC: &[u8; 4] = b"MQWL";
/// Shared format version.
pub const VERSION: u16 = 1;
/// Segment header size in bytes.
pub const SEGMENT_HEADER_LEN: u64 = 36;
/// WAL header size in bytes.
pub const WAL_HEADER_LEN: u64 = 8;
/// Frame prefix: `rec_count:u32 | checksum:u64`.
pub const FRAME_PREFIX_LEN: usize = 12;
/// Per-record frame overhead: `oid:u32 | len:u32`.
pub const RECORD_HEADER_LEN: usize = 8;

/// The fixed geometry of one segment file, persisted in its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Logical block size the database was packed with.
    pub block_bytes: u32,
    /// Logical per-record header the database was packed with.
    pub record_header_bytes: u32,
    /// Physical bytes per frame.
    pub frame_bytes: u32,
    /// Frames in the segment at the last checkpoint.
    pub page_count: u32,
    /// Object-id space (live + tombstoned) at the last checkpoint.
    pub id_space: u32,
    /// Maximum encoded payload bytes per record.
    pub max_rec: u32,
    /// Maximum records per page.
    pub capacity: u32,
}

impl SegmentMeta {
    /// Physical frame size for a given record-slot geometry.
    pub fn frame_bytes_for(capacity: u32, max_rec: u32) -> u32 {
        FRAME_PREFIX_LEN as u32 + capacity * (RECORD_HEADER_LEN as u32 + max_rec)
    }

    /// Byte offset of frame `id` in the segment file.
    pub fn frame_offset(&self, id: PageId) -> u64 {
        SEGMENT_HEADER_LEN + id.index() as u64 * self.frame_bytes as u64
    }

    /// Serializes the 36-byte segment header.
    pub fn encode_header(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
        buf.put_slice(SEGMENT_MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u32_le(self.block_bytes);
        buf.put_u32_le(self.record_header_bytes);
        buf.put_u32_le(self.frame_bytes);
        buf.put_u32_le(self.page_count);
        buf.put_u32_le(self.id_space);
        buf.put_u32_le(self.max_rec);
        buf.put_u32_le(self.capacity);
        debug_assert_eq!(buf.len() as u64, SEGMENT_HEADER_LEN);
        buf
    }

    /// Parses and validates a segment header.
    pub fn decode_header(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < SEGMENT_HEADER_LEN as usize {
            return Err(StoreError::Format("segment header truncated".into()));
        }
        let mut buf = Bytes::copy_from_slice(&bytes[..SEGMENT_HEADER_LEN as usize]);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != SEGMENT_MAGIC {
            return Err(StoreError::Format("not an mq-store segment file".into()));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported segment version {version}"
            )));
        }
        let _pad = buf.get_u16_le();
        let meta = SegmentMeta {
            block_bytes: buf.get_u32_le(),
            record_header_bytes: buf.get_u32_le(),
            frame_bytes: buf.get_u32_le(),
            page_count: buf.get_u32_le(),
            id_space: buf.get_u32_le(),
            max_rec: buf.get_u32_le(),
            capacity: buf.get_u32_le(),
        };
        if meta.capacity == 0
            || meta.frame_bytes != Self::frame_bytes_for(meta.capacity, meta.max_rec)
        {
            return Err(StoreError::Format(format!(
                "impossible segment geometry: frame_bytes={} capacity={} max_rec={}",
                meta.frame_bytes, meta.capacity, meta.max_rec
            )));
        }
        Ok(meta)
    }
}

/// Encodes one page's records into a fixed-size frame (zero-padded).
pub fn encode_frame<O: StorageObject, C: ObjectCodec<O>>(
    meta: &SegmentMeta,
    page: PageId,
    records: &[(ObjectId, O)],
    codec: &C,
) -> Result<Vec<u8>, StoreError> {
    assert!(
        records.len() <= meta.capacity as usize,
        "page {page:?} holds {} records, frame capacity is {}",
        records.len(),
        meta.capacity
    );
    let mut buf = Vec::with_capacity(meta.frame_bytes as usize);
    buf.put_u32_le(records.len() as u32);
    buf.put_u64_le(page_checksum(
        page,
        records.iter().map(|r| r.0.index() as u32),
    ));
    for (oid, object) in records {
        let mut payload = BytesMut::new();
        codec.encode(object, &mut payload);
        if payload.len() > meta.max_rec as usize {
            return Err(StoreError::Oversized {
                bytes: payload.len(),
                max: meta.max_rec as usize,
            });
        }
        buf.put_u32_le(oid.index() as u32);
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload.as_slice());
    }
    buf.resize(meta.frame_bytes as usize, 0);
    Ok(buf)
}

/// Decodes a frame back into records, verifying the embedded checksum.
/// Returns `Err` for any damage — the caller decides whether a WAL
/// post-image covers it.
pub fn decode_frame<O: StorageObject, C: ObjectCodec<O>>(
    meta: &SegmentMeta,
    page: PageId,
    frame: &[u8],
    codec: &C,
) -> Result<Vec<(ObjectId, O)>, StoreError> {
    if frame.len() < FRAME_PREFIX_LEN {
        return Err(StoreError::Corrupt {
            page: page.0,
            detail: "frame truncated".into(),
        });
    }
    let mut buf = Bytes::copy_from_slice(frame);
    let rec_count = buf.get_u32_le();
    let stored = buf.get_u64_le();
    if rec_count > meta.capacity {
        return Err(StoreError::Corrupt {
            page: page.0,
            detail: format!(
                "record count {rec_count} exceeds capacity {}",
                meta.capacity
            ),
        });
    }
    let mut records = Vec::with_capacity(rec_count as usize);
    for _ in 0..rec_count {
        if buf.remaining() < RECORD_HEADER_LEN {
            return Err(StoreError::Corrupt {
                page: page.0,
                detail: "record header truncated".into(),
            });
        }
        let oid = ObjectId(buf.get_u32_le());
        let len = buf.get_u32_le() as usize;
        if len > meta.max_rec as usize || buf.remaining() < len {
            return Err(StoreError::Corrupt {
                page: page.0,
                detail: format!("record payload of {len} B overruns frame"),
            });
        }
        let mut payload = buf.split_to(len);
        let object = codec
            .decode(&mut payload)
            .map_err(|e| StoreError::Corrupt {
                page: page.0,
                detail: format!("record decode failed: {e}"),
            })?;
        records.push((oid, object));
    }
    let computed = page_checksum(page, records.iter().map(|r| r.0.index() as u32));
    if computed != stored {
        return Err(StoreError::Corrupt {
            page: page.0,
            detail: format!("checksum mismatch: stored {stored:#x}, computed {computed:#x}"),
        });
    }
    Ok(records)
}

/// FNV-1a 64-bit, guarding each WAL record's payload.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One logical WAL record: the full post-image of a rewritten page.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord<O> {
    /// 1 = insert, 2 = delete.
    pub op: u8,
    /// The object the mutation concerns.
    pub oid: ObjectId,
    /// The rewritten page.
    pub page: PageId,
    /// Total pages after the mutation (inserts may add a page).
    pub page_count_after: u32,
    /// Object-id space after the mutation.
    pub id_space_after: u32,
    /// The page's full record list after the mutation.
    pub records: Vec<(ObjectId, O)>,
}

/// Insert opcode.
pub const OP_INSERT: u8 = 1;
/// Delete opcode.
pub const OP_DELETE: u8 = 2;

/// Serializes one WAL record, length prefix and CRC included.
pub fn encode_wal_record<O: StorageObject, C: ObjectCodec<O>>(
    record: &WalRecord<O>,
    codec: &C,
) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.put_u8(record.op);
    payload.put_u32_le(record.oid.index() as u32);
    payload.put_u32_le(record.page.0);
    payload.put_u32_le(record.page_count_after);
    payload.put_u32_le(record.id_space_after);
    payload.put_u32_le(record.records.len() as u32);
    for (oid, object) in &record.records {
        let mut body = BytesMut::new();
        codec.encode(object, &mut body);
        payload.put_u32_le(oid.index() as u32);
        payload.put_u32_le(body.len() as u32);
        payload.put_slice(body.as_slice());
    }
    let mut out = Vec::with_capacity(12 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_u64_le(fnv1a64(&payload));
    out.put_slice(&payload);
    out
}

/// Parses every *complete* record out of a WAL byte run (header excluded).
///
/// Returns the records and the number of bytes consumed by them; trailing
/// bytes past the last complete record — a torn append — are reported in
/// `torn_tail_bytes` and simply ignored, never an error.
pub struct WalReplay<O> {
    /// All complete records, in append order.
    pub records: Vec<WalRecord<O>>,
    /// Bytes of torn tail discarded after the last complete record.
    pub torn_tail_bytes: usize,
}

/// Decodes a WAL body (everything after the 8-byte header).
pub fn decode_wal<O: StorageObject, C: ObjectCodec<O>>(
    body: &[u8],
    codec: &C,
) -> Result<WalReplay<O>, StoreError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while body.len() - offset >= 12 {
        let mut prefix = &body[offset..offset + 12];
        let len = prefix.get_u32_le() as usize;
        let crc = prefix.get_u64_le();
        if body.len() - offset - 12 < len {
            break; // torn: length prefix outruns the file
        }
        let payload = &body[offset + 12..offset + 12 + len];
        if fnv1a64(payload) != crc {
            break; // torn: the append itself was interrupted
        }
        records.push(decode_wal_payload(payload, codec)?);
        offset += 12 + len;
    }
    Ok(WalReplay {
        records,
        torn_tail_bytes: body.len() - offset,
    })
}

fn decode_wal_payload<O: StorageObject, C: ObjectCodec<O>>(
    payload: &[u8],
    codec: &C,
) -> Result<WalRecord<O>, StoreError> {
    let mut buf = Bytes::copy_from_slice(payload);
    if buf.remaining() < 21 {
        return Err(StoreError::Format("WAL record payload truncated".into()));
    }
    let op = buf.get_u8();
    if op != OP_INSERT && op != OP_DELETE {
        return Err(StoreError::Format(format!("unknown WAL opcode {op}")));
    }
    let oid = ObjectId(buf.get_u32_le());
    let page = PageId(buf.get_u32_le());
    let page_count_after = buf.get_u32_le();
    let id_space_after = buf.get_u32_le();
    let rec_count = buf.get_u32_le() as usize;
    let mut records = Vec::with_capacity(rec_count.min(1024));
    for _ in 0..rec_count {
        if buf.remaining() < RECORD_HEADER_LEN {
            return Err(StoreError::Format("WAL post-image truncated".into()));
        }
        let roid = ObjectId(buf.get_u32_le());
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(StoreError::Format(
                "WAL post-image payload truncated".into(),
            ));
        }
        let mut body = buf.split_to(len);
        let object = codec
            .decode(&mut body)
            .map_err(|e| StoreError::Format(format!("WAL record decode failed: {e}")))?;
        records.push((roid, object));
    }
    Ok(WalRecord {
        op,
        oid,
        page,
        page_count_after,
        id_space_after,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::Vector;
    use mq_storage::VectorCodec;

    fn meta() -> SegmentMeta {
        SegmentMeta {
            block_bytes: 256,
            record_header_bytes: 16,
            frame_bytes: SegmentMeta::frame_bytes_for(4, 12),
            page_count: 2,
            id_space: 8,
            max_rec: 12,
            capacity: 4,
        }
    }

    fn v(x: f32) -> Vector {
        Vector::new(vec![x, x + 1.0])
    }

    #[test]
    fn segment_header_roundtrips() {
        let m = meta();
        let back = SegmentMeta::decode_header(&m.encode_header()).expect("decode");
        assert_eq!(back, m);
    }

    #[test]
    fn segment_header_rejects_damage() {
        let m = meta();
        let mut h = m.encode_header();
        h[0] = b'X';
        assert!(matches!(
            SegmentMeta::decode_header(&h),
            Err(StoreError::Format(_))
        ));
        let mut h = m.encode_header();
        h[4] = 0xFF; // version
        assert!(SegmentMeta::decode_header(&h).is_err());
        assert!(SegmentMeta::decode_header(&h[..10]).is_err());
        let mut h = m.encode_header();
        h[16] ^= 0x40; // frame_bytes no longer matches the geometry
        assert!(SegmentMeta::decode_header(&h).is_err());
    }

    #[test]
    fn frame_roundtrips_and_is_fixed_size() {
        let m = meta();
        let records = vec![(ObjectId(0), v(1.0)), (ObjectId(5), v(2.0))];
        let frame = encode_frame(&m, PageId(1), &records, &VectorCodec).expect("encode");
        assert_eq!(frame.len(), m.frame_bytes as usize);
        let back = decode_frame(&m, PageId(1), &frame, &VectorCodec).expect("decode");
        assert_eq!(back, records);
    }

    #[test]
    fn empty_frame_is_valid() {
        let m = meta();
        let frame = encode_frame::<Vector, _>(&m, PageId(0), &[], &VectorCodec).expect("encode");
        let back = decode_frame::<Vector, _>(&m, PageId(0), &frame, &VectorCodec).expect("decode");
        assert!(back.is_empty());
    }

    #[test]
    fn frame_checksum_detects_bit_flips() {
        let m = meta();
        let records = vec![(ObjectId(0), v(1.0))];
        let mut frame = encode_frame(&m, PageId(0), &records, &VectorCodec).expect("encode");
        frame[0] ^= 0x01; // rec_count now disagrees with the checksum
        assert!(matches!(
            decode_frame::<Vector, _>(&m, PageId(0), &frame, &VectorCodec),
            Err(StoreError::Corrupt { page: 0, .. })
        ));
    }

    #[test]
    fn frame_checksum_binds_the_page_id() {
        let m = meta();
        let records = vec![(ObjectId(0), v(1.0))];
        let frame = encode_frame(&m, PageId(0), &records, &VectorCodec).expect("encode");
        // The same bytes presented as a different page must not verify.
        assert!(decode_frame::<Vector, _>(&m, PageId(1), &frame, &VectorCodec).is_err());
    }

    #[test]
    fn oversized_record_is_rejected_at_encode_time() {
        let m = meta(); // max_rec = 12 B; a 3-d vector needs 16 B
        let records = vec![(ObjectId(0), Vector::new(vec![1.0, 2.0, 3.0]))];
        assert!(matches!(
            encode_frame(&m, PageId(0), &records, &VectorCodec),
            Err(StoreError::Oversized { bytes: 16, max: 12 })
        ));
    }

    fn wal_record(op: u8) -> WalRecord<Vector> {
        WalRecord {
            op,
            oid: ObjectId(3),
            page: PageId(1),
            page_count_after: 2,
            id_space_after: 9,
            records: vec![(ObjectId(2), v(0.5)), (ObjectId(3), v(1.5))],
        }
    }

    #[test]
    fn wal_records_roundtrip() {
        let a = wal_record(OP_INSERT);
        let b = wal_record(OP_DELETE);
        let mut body = encode_wal_record(&a, &VectorCodec);
        body.extend(encode_wal_record(&b, &VectorCodec));
        let replay = decode_wal::<Vector, _>(&body, &VectorCodec).expect("decode");
        assert_eq!(replay.records, vec![a, b]);
        assert_eq!(replay.torn_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let a = wal_record(OP_INSERT);
        let full = encode_wal_record(&a, &VectorCodec);
        for cut in [1, 5, 12, full.len() - 1] {
            let mut body = full.clone();
            body.extend(full[..cut].iter()); // second append interrupted
            let replay = decode_wal::<Vector, _>(&body, &VectorCodec).expect("decode");
            assert_eq!(replay.records.len(), 1, "cut at {cut}");
            assert_eq!(replay.torn_tail_bytes, cut);
        }
    }

    #[test]
    fn crc_mismatch_ends_the_replay() {
        let a = wal_record(OP_INSERT);
        let mut body = encode_wal_record(&a, &VectorCodec);
        let n = body.len();
        body[n - 1] ^= 0x80; // damage inside the first record's payload
        let replay = decode_wal::<Vector, _>(&body, &VectorCodec).expect("decode");
        assert!(replay.records.is_empty());
        assert_eq!(replay.torn_tail_bytes, n);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}

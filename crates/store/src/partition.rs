//! Partition manifest — the sidecar that makes a clustered store's
//! global-id mapping explicit instead of positional.
//!
//! A shared-nothing cluster keeps one [`FilePageStore`] per partition
//! directory (`part-0/` … `part-S-1/`). Each partition's answers carry
//! *local* ids that the cluster maps back to global ids. Deriving that
//! mapping positionally on reopen (local `j` of partition `p` ↦
//! `j·S + p`) is only valid while every mutation preserved strict
//! round-robin declustering — an offline `mq insert` against a single
//! partition directory silently breaks it, and answers then name the
//! wrong objects.
//!
//! The manifest removes the guesswork: at creation every partition
//! directory gets a [`PartitionManifest`] recording the partition count,
//! its own index, and the **explicit** local→global id mapping. Reopen
//! reads the mapping back and validates it against the recovered store
//! (length, cross-partition uniqueness); any drift is a typed error, not
//! a silent remap.
//!
//! ```text
//! partition.mqpt:
//!   "MQPT" | version:u16 | pad:u16 | parts:u32 | partition:u32
//!   | count:u32 | count × gid:u32 | fnv1a64(all previous bytes):u64
//! ```
//!
//! [`FilePageStore`]: crate::FilePageStore

use crate::error::StoreError;
use crate::format::{fnv1a64, VERSION};
use bytes::{Buf, BufMut};
use mq_metric::ObjectId;
use std::io::Write;
use std::path::Path;

/// Manifest file name inside a partition's store directory.
pub const PARTITION_MANIFEST_FILE: &str = "partition.mqpt";
/// Partition-manifest magic.
pub const PARTITION_MAGIC: &[u8; 4] = b"MQPT";

/// One partition's place in a clustered store: which partition it is, how
/// many exist, and the explicit local→global id mapping (entry `j` is the
/// global id of local id `j`, tombstoned slots included).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionManifest {
    /// Total partitions in the cluster.
    pub parts: u32,
    /// This partition's index in `0..parts`.
    pub partition: u32,
    /// Global id of every local id, in local-id order.
    pub global_ids: Vec<ObjectId>,
}

impl PartitionManifest {
    /// Serializes the manifest, trailing checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20 + self.global_ids.len() * 4 + 8);
        buf.put_slice(PARTITION_MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u32_le(self.parts);
        buf.put_u32_le(self.partition);
        buf.put_u32_le(self.global_ids.len() as u32);
        for gid in &self.global_ids {
            buf.put_u32_le(gid.index() as u32);
        }
        let crc = fnv1a64(&buf);
        buf.put_u64_le(crc);
        buf
    }

    /// Parses and validates a manifest (magic, version, length, checksum,
    /// partition index within range).
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 28 {
            return Err(StoreError::Format("partition manifest truncated".into()));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
        if fnv1a64(body) != stored {
            return Err(StoreError::Format(
                "partition manifest checksum mismatch".into(),
            ));
        }
        let mut buf = body;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != PARTITION_MAGIC {
            return Err(StoreError::Format("not a partition manifest".into()));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(StoreError::Format(format!(
                "unsupported partition manifest version {version}"
            )));
        }
        let _pad = buf.get_u16_le();
        let parts = buf.get_u32_le();
        let partition = buf.get_u32_le();
        let count = buf.get_u32_le() as usize;
        if partition >= parts {
            return Err(StoreError::Format(format!(
                "partition {partition} outside its own partition count {parts}"
            )));
        }
        if buf.remaining() != count * 4 {
            return Err(StoreError::Format(format!(
                "partition manifest declares {count} ids but carries {} bytes of them",
                buf.remaining()
            )));
        }
        let global_ids = (0..count).map(|_| ObjectId(buf.get_u32_le())).collect();
        Ok(Self {
            parts,
            partition,
            global_ids,
        })
    }

    /// Durably writes the manifest into `dir` (tmp file + `fsync` +
    /// atomic rename).
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join("partition.mqpt.tmp");
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        std::fs::rename(&tmp, dir.join(PARTITION_MANIFEST_FILE))?;
        std::fs::File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Reads the manifest from `dir`; `Ok(None)` when the directory holds
    /// none (a standalone, non-clustered store).
    pub fn load(dir: &Path) -> Result<Option<Self>, StoreError> {
        match std::fs::read(dir.join(PARTITION_MANIFEST_FILE)) {
            Ok(bytes) => Self::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> PartitionManifest {
        PartitionManifest {
            parts: 3,
            partition: 1,
            global_ids: vec![ObjectId(1), ObjectId(4), ObjectId(7), ObjectId(10)],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = manifest();
        assert_eq!(PartitionManifest::decode(&m.encode()).expect("decode"), m);
    }

    #[test]
    fn manifest_rejects_damage() {
        let m = manifest();
        let good = m.encode();
        // Truncation, bit flips anywhere, and a bad magic are all typed
        // format errors — the checksum guards the whole body.
        assert!(PartitionManifest::decode(&good[..10]).is_err());
        for i in [0usize, 5, 9, 14, 21, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            assert!(
                PartitionManifest::decode(&bad).is_err(),
                "flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn manifest_rejects_partition_outside_parts() {
        let mut m = manifest();
        m.partition = 3;
        assert!(matches!(
            PartitionManifest::decode(&m.encode()),
            Err(StoreError::Format(_))
        ));
    }

    #[test]
    fn save_load_roundtrips_and_absence_is_none() {
        let dir = std::env::temp_dir().join(format!("mq-part-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(PartitionManifest::load(&dir).expect("load empty").is_none());
        let m = manifest();
        m.save(&dir).expect("save");
        assert_eq!(PartitionManifest::load(&dir).expect("load"), Some(m));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! [`FilePageStore`] — the durable backend behind the [`PageStore`] trait.
//!
//! The store keeps the whole database resident (exactly like
//! [`SimulatedDisk`], whose accounting it reuses verbatim) and mirrors it
//! onto two real files in its directory:
//!
//! * `segment.mqsg` — fixed-size page frames (see [`crate::format`]);
//! * `wal.mqwl` — the write-ahead log of page post-images.
//!
//! **Write path.** A mutation appends one WAL record and `fsync`s it
//! *before* the affected frame is rewritten in place. A crash between the
//! two leaves a stale frame that the WAL post-image repairs on reopen; a
//! crash mid-append leaves a torn WAL tail that reopen discards. Either
//! way, reopen recovers checksum-valid state equal to the last checkpoint
//! plus every completely-appended record.
//!
//! **Read path.** All metering — buffer hits, physical reads, the
//! random/sequential split, prefetch accounting, fault injection — is
//! delegated to an inner [`SimulatedDisk`] over the recovered database, so
//! the testkit's oracle-equivalence matrix holds bit-identically across
//! backends by construction. On every read that misses the buffer the
//! store additionally reads the page's frame back from the segment file
//! and verifies its embedded checksum (the same
//! [`mq_storage::page_checksum`] the simulated disk precomputes), so
//! on-disk rot surfaces as [`DiskError::CorruptPage`] at the first
//! would-be physical read.

use crate::error::StoreError;
use crate::format::{
    decode_frame, decode_wal, encode_frame, encode_wal_record, SegmentMeta, WalRecord,
    FRAME_PREFIX_LEN, OP_DELETE, OP_INSERT, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN, VERSION,
    WAL_HEADER_LEN, WAL_MAGIC,
};
use crate::obs::{StoreCounters, StoreObs, StoreStats};
use bytes::{Buf, BytesMut};
use mq_metric::ObjectId;
use mq_obs::Recorder;
use mq_storage::{
    DiskError, FaultPlan, FaultStats, IoStats, ObjectCodec, Page, PageId, PageLayout, PageStore,
    PagedDatabase, SimulatedDisk, StorageObject,
};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Segment file name inside the store directory.
pub const SEGMENT_FILE: &str = "segment.mqsg";
/// WAL file name inside the store directory.
pub const WAL_FILE: &str = "wal.mqwl";
/// Lock file name inside the store directory.
pub const LOCK_FILE: &str = "lock.mqlk";

/// Exclusive advisory ownership of a store directory, backed by a lock
/// file holding the owner's pid.
///
/// The store is single-writer: a second opener could checkpoint away the
/// first's un-checkpointed WAL or interleave frame writes, so
/// [`FilePageStore::create`]/[`open`](FilePageStore::open) acquire this
/// first and fail fast with [`StoreError::Locked`] when the directory is
/// already owned. The file is removed on drop; after a crash (`kill -9`)
/// the pid it names is dead, which the next opener detects (on Linux, via
/// `/proc/<pid>`) and steals — so a crashed store never needs manual
/// unlocking.
#[derive(Debug)]
struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    fn acquire(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(LOCK_FILE);
        // Two rounds: the second retries after removing a stale lock.
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(std::process::id().to_string().as_bytes())?;
                    file.sync_all()?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if process_alive(pid) => {
                            return Err(StoreError::Locked {
                                dir: dir.to_path_buf(),
                                holder: pid,
                            })
                        }
                        // Dead owner, or garbage left by a crash mid-acquire:
                        // the lock is stale either way.
                        _ => {
                            std::fs::remove_file(&path).ok();
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Lost the post-steal race to another opener.
        let holder = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(0);
        Err(StoreError::Locked {
            dir: dir.to_path_buf(),
            holder,
        })
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Whether `pid` names a live process. Without `libc` in the dependency
/// tree there is no `flock`/`kill(0)`; `/proc` answers the same question
/// on Linux. A zombie (killed but not yet reaped — state `Z` in its stat
/// line) still has a `/proc` entry but can't own anything, so it counts
/// as dead. Elsewhere liveness is unknowable from here, so a held lock
/// is conservatively assumed live (never stolen).
fn process_alive(pid: u32) -> bool {
    if !cfg!(target_os = "linux") {
        return true;
    }
    match std::fs::read_to_string(format!("/proc/{pid}/stat")) {
        // "pid (comm) STATE ..." — comm may contain anything, so the
        // state is the first field after the *last* ')'.
        Ok(stat) => {
            let state = stat
                .rfind(')')
                .and_then(|i| stat[i + 1..].trim_start().chars().next());
            state != Some('Z')
        }
        Err(_) => false,
    }
}

/// A durable page store: one directory holding a segment file and a WAL.
///
/// Reads go through the same buffer/accounting machinery as
/// [`SimulatedDisk`]; mutations ([`insert`](Self::insert) /
/// [`delete`](Self::delete)) are WAL-first and crash-safe. The store is a
/// **single-writer** structure: mutations take `&mut self`, and exactly
/// one store may own a directory at a time — enforced by a pid lock file
/// ([`LOCK_FILE`]) acquired in [`create`](Self::create)/[`open`](Self::open),
/// released on drop, and stolen automatically when its owner is dead
/// (crash recovery never needs manual unlocking).
pub struct FilePageStore<O: StorageObject, C> {
    dir: PathBuf,
    /// Exclusive directory ownership; released (file removed) on drop.
    _lock: StoreLock,
    segment: File,
    wal: File,
    /// Next WAL append offset (header + complete records).
    wal_len: u64,
    codec: C,
    /// Geometry as of the last checkpoint; `page_count`/`id_space` of the
    /// *live* database are read off `inner.database()`.
    meta: SegmentMeta,
    inner: SimulatedDisk<O>,
    counters: StoreCounters,
    obs: Mutex<Option<StoreObs>>,
}

impl<O: StorageObject, C> std::fmt::Debug for FilePageStore<O, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilePageStore")
            .field("dir", &self.dir)
            .field("meta", &self.meta)
            .field("wal_len", &self.wal_len)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl<O, C> FilePageStore<O, C>
where
    O: StorageObject,
    C: ObjectCodec<O> + Send + Sync + std::fmt::Debug,
{
    /// Creates a fresh store in `dir` (created if missing) from an
    /// in-memory database, preserving its page grouping byte-for-byte.
    ///
    /// The record slot size is fixed at creation to the largest encoded
    /// payload in `db` and the frame capacity to the fullest page, so
    /// later [`insert`](Self::insert)s of larger objects are rejected
    /// with [`StoreError::Oversized`] rather than silently re-laid-out.
    pub fn create(
        dir: impl AsRef<Path>,
        db: PagedDatabase<O>,
        codec: C,
        buffer_pages: usize,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = StoreLock::acquire(&dir)?;
        let mut max_rec = 1u32;
        let mut capacity = 1u32;
        for pid in db.page_ids() {
            let page = db.page(pid);
            capacity = capacity.max(page.len() as u32);
            for (_, object) in page.records() {
                let mut body = BytesMut::new();
                codec.encode(object, &mut body);
                max_rec = max_rec.max(body.len() as u32);
            }
        }
        let meta = SegmentMeta {
            block_bytes: db.layout().block_bytes as u32,
            record_header_bytes: db.layout().record_header_bytes as u32,
            frame_bytes: SegmentMeta::frame_bytes_for(capacity, max_rec),
            page_count: db.page_count() as u32,
            id_space: db.object_count() as u32,
            max_rec,
            capacity,
        };
        let counters = StoreCounters::default();
        let segment = write_segment(&dir.join(SEGMENT_FILE), &meta, &db, &codec, &counters)?;
        let wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(WAL_FILE))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&[0, 0]);
        (&wal).write_all(&header)?;
        wal.sync_all()?;
        counters.count_fsync();
        sync_dir(&dir, &counters)?;
        Ok(Self {
            dir,
            _lock: lock,
            segment,
            wal,
            wal_len: WAL_HEADER_LEN,
            codec,
            meta,
            inner: SimulatedDisk::with_buffer_pages(db, buffer_pages),
            counters,
            obs: Mutex::new(None),
        })
    }

    /// Opens an existing store, running crash recovery: segment frames are
    /// checksum-verified, the WAL is replayed up to its last complete
    /// record (a torn tail is discarded), and a frame that fails its
    /// checksum is accepted only if a replayed post-image rewrites it.
    /// If anything was replayed, the store checkpoints immediately so the
    /// segment is clean again.
    pub fn open(dir: impl AsRef<Path>, codec: C, buffer_pages: usize) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let lock = StoreLock::acquire(&dir)?;
        let seg_bytes = std::fs::read(dir.join(SEGMENT_FILE))?;
        let meta = SegmentMeta::decode_header(&seg_bytes)?;

        // Pass 1: the segment's frames. A damaged frame is tolerated here
        // (`None`) — it is fatal only if no WAL post-image covers it.
        let mut frames: Vec<Option<Vec<(ObjectId, O)>>> =
            Vec::with_capacity(meta.page_count as usize);
        for i in 0..meta.page_count {
            let start = SEGMENT_HEADER_LEN as usize + i as usize * meta.frame_bytes as usize;
            let end = start + meta.frame_bytes as usize;
            if end > seg_bytes.len() {
                frames.push(None);
                continue;
            }
            frames.push(decode_frame(&meta, PageId(i), &seg_bytes[start..end], &codec).ok());
        }

        // Pass 2: WAL replay, latest write wins per page.
        let wal_bytes = std::fs::read(dir.join(WAL_FILE))?;
        if wal_bytes.len() < WAL_HEADER_LEN as usize
            || &wal_bytes[..4] != WAL_MAGIC
            || u16::from_le_bytes([wal_bytes[4], wal_bytes[5]]) != VERSION
        {
            return Err(StoreError::Format("bad or truncated WAL header".into()));
        }
        let replay = decode_wal::<O, _>(&wal_bytes[WAL_HEADER_LEN as usize..], &codec)?;
        let replayed = replay.records.len() as u64;
        // Each insert grows the segment by at most one page, and a stale
        // record (see below) never exceeds the checkpointed count — so no
        // valid WAL can push the page count past this. A tampered record
        // must not size the frame table.
        let max_pages = meta.page_count as usize + replay.records.len();
        let mut id_space = meta.id_space as usize;
        for record in replay.records {
            if record.records.len() > meta.capacity as usize {
                return Err(StoreError::Format(format!(
                    "WAL post-image of {} records exceeds capacity {}",
                    record.records.len(),
                    meta.capacity
                )));
            }
            // A record may be *stale*: a crash between a checkpoint's
            // segment rename and its WAL truncation leaves the fresh
            // segment alongside records the checkpoint already folded in.
            // Replaying a stale post-image is idempotent, so the only
            // per-record sanity requirement is internal consistency — the
            // rewritten page must lie inside the page count the record
            // itself declares.
            let idx = record.page.index();
            if idx >= record.page_count_after as usize
                || record.page_count_after as usize > max_pages
            {
                return Err(StoreError::Format(format!(
                    "WAL record rewrites page {idx} with page count {} (segment holds {}, \
                     {replayed} records replayed)",
                    record.page_count_after, meta.page_count,
                )));
            }
            if idx >= frames.len() {
                frames.resize(idx + 1, None);
            }
            frames[idx] = Some(record.records);
            id_space = id_space.max(record.id_space_after as usize);
        }

        // Assemble: every frame must now be intact.
        let mut pages = Vec::with_capacity(frames.len());
        for (i, frame) in frames.into_iter().enumerate() {
            match frame {
                Some(records) => pages.push(Page::new(PageId(i as u32), records)),
                None => {
                    return Err(StoreError::Corrupt {
                        page: i as u32,
                        detail: "frame failed its checksum and no WAL record covers it".into(),
                    })
                }
            }
        }
        let mut directory: Vec<Option<(PageId, u32)>> = vec![None; id_space];
        for page in &pages {
            for (slot, (oid, _)) in page.records().iter().enumerate() {
                let entry = directory.get_mut(oid.index()).ok_or_else(|| {
                    StoreError::Format(format!("{oid} outside id space {id_space}"))
                })?;
                if entry.is_some() {
                    return Err(StoreError::Format(format!("{oid} appears on two pages")));
                }
                *entry = Some((page.id(), slot as u32));
            }
        }
        let layout = PageLayout::new(meta.block_bytes as usize, meta.record_header_bytes as usize);
        let db = PagedDatabase::from_parts(pages, directory, layout);

        let segment = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(SEGMENT_FILE))?;
        let wal = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(WAL_FILE))?;
        let counters = StoreCounters::default();
        counters.count_replayed(replayed);
        let mut store = Self {
            dir,
            _lock: lock,
            segment,
            wal,
            wal_len: wal_bytes.len() as u64,
            codec,
            meta,
            inner: SimulatedDisk::with_buffer_pages(db, buffer_pages),
            counters,
            obs: Mutex::new(None),
        };
        if replayed > 0 || store.wal_len > WAL_HEADER_LEN {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Inserts one object: WAL append + `fsync`, then an in-place rewrite
    /// of the (possibly new) tail frame. Returns the new object's id.
    ///
    /// In-flight multiple-query sessions are reconciled afterwards with
    /// `QueryEngine::notify_insert`, which keeps Definition 4's partial
    /// answers valid without restarting the batch.
    pub fn insert(&mut self, object: O) -> Result<ObjectId, StoreError> {
        let mut body = BytesMut::new();
        self.codec.encode(&object, &mut body);
        if body.len() > self.meta.max_rec as usize {
            return Err(StoreError::Oversized {
                bytes: body.len(),
                max: self.meta.max_rec as usize,
            });
        }
        let capacity = self.meta.capacity as usize;
        let db = self.inner.database_mut();
        let id = db.insert_object(object, capacity);
        let (page, _slot) = db.locate(id);
        self.log_and_rewrite(OP_INSERT, id, page)?;
        Ok(id)
    }

    /// Deletes one object (tombstoning its id): WAL append + `fsync`, then
    /// an in-place rewrite of its compacted page. Returns the page.
    ///
    /// In-flight sessions are reconciled afterwards with
    /// `QueryEngine::notify_delete`, which invalidates exactly the queries
    /// whose answer lists contain the deleted object.
    pub fn delete(&mut self, id: ObjectId) -> Result<PageId, StoreError> {
        let db = self.inner.database_mut();
        if db.try_locate(id).is_none() {
            return Err(StoreError::UnknownObject(id));
        }
        let page = db.delete_object(id).expect("located object must delete");
        self.log_and_rewrite(OP_DELETE, id, page)?;
        Ok(page)
    }

    /// WAL-first tail of both mutations: append the post-image record,
    /// `fsync` the WAL, rewrite the frame in place, refresh the in-memory
    /// checksum table.
    fn log_and_rewrite(&mut self, op: u8, oid: ObjectId, page: PageId) -> Result<(), StoreError> {
        let db = self.inner.database();
        let record = WalRecord {
            op,
            oid,
            page,
            page_count_after: db.page_count() as u32,
            id_space_after: db.object_count() as u32,
            records: db.page(page).records().to_vec(),
        };
        let bytes = encode_wal_record(&record, &self.codec);
        self.wal.write_all_at(&bytes, self.wal_len)?;
        self.wal.sync_data()?;
        self.counters.count_fsync();
        self.wal_len += bytes.len() as u64;
        self.counters.count_wal_append();

        let frame = encode_frame(&self.meta, page, &record.records, &self.codec)?;
        self.segment
            .write_all_at(&frame, self.meta.frame_offset(page))?;
        self.counters.count_page_rewrite();
        self.inner.refresh_checksums();
        self.sync_obs();
        Ok(())
    }

    /// Rewrites the segment from the live database (tmp file + `fsync` +
    /// atomic rename + directory `fsync`), then truncates the WAL. After a
    /// checkpoint the WAL is empty and reopen replays nothing.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let db = self.inner.database();
        self.meta.page_count = db.page_count() as u32;
        self.meta.id_space = db.object_count() as u32;
        let tmp = self.dir.join("segment.mqsg.tmp");
        write_segment(&tmp, &self.meta, db, &self.codec, &self.counters)?;
        std::fs::rename(&tmp, self.dir.join(SEGMENT_FILE))?;
        sync_dir(&self.dir, &self.counters)?;
        // The pre-rename handle points at the replaced inode; reopen.
        self.segment = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.dir.join(SEGMENT_FILE))?;
        self.wal.set_len(WAL_HEADER_LEN)?;
        self.wal.sync_all()?;
        self.counters.count_fsync();
        self.wal_len = WAL_HEADER_LEN;
        self.counters.count_checkpoint();
        self.sync_obs();
        Ok(())
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fixed segment geometry (checkpoint-time page/id counts).
    pub fn meta(&self) -> SegmentMeta {
        self.meta
    }

    /// Bytes currently in the WAL, header included.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_len
    }

    /// Snapshot of the durability counters.
    pub fn store_stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    /// The inner metered disk (diagnostics; reads should go through
    /// [`PageStore`]).
    pub fn inner(&self) -> &SimulatedDisk<O> {
        &self.inner
    }

    /// Reads frame `id` back from the segment file and verifies its
    /// embedded checksum against both a recomputation and the in-memory
    /// expectation. Called on every would-be buffer miss.
    fn verify_frame(&self, id: PageId) -> Result<(), DiskError> {
        let expected = self.inner.checksum(id);
        let mut frame = vec![0u8; self.meta.frame_bytes as usize];
        if self
            .segment
            .read_exact_at(&mut frame, self.meta.frame_offset(id))
            .is_err()
        {
            return Err(DiskError::CorruptPage {
                page: id,
                attempt: 0,
                expected,
                actual: 0,
            });
        }
        let mut buf = &frame[..];
        let rec_count = buf.get_u32_le() as usize;
        let stored = buf.get_u64_le();
        let mut ids = Vec::with_capacity(rec_count.min(self.meta.capacity as usize));
        let mut intact = rec_count <= self.meta.capacity as usize;
        if intact {
            for _ in 0..rec_count {
                if buf.remaining() < RECORD_HEADER_LEN {
                    intact = false;
                    break;
                }
                let oid = buf.get_u32_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    intact = false;
                    break;
                }
                buf.advance(len);
                ids.push(oid);
            }
        }
        let actual = if intact {
            mq_storage::page_checksum(id, ids.into_iter())
        } else {
            !stored // parse failure: force a mismatch
        };
        if !intact || actual != stored || actual != expected {
            return Err(DiskError::CorruptPage {
                page: id,
                attempt: 0,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// Mirrors the atomic counters into the attached registry, if any.
    fn sync_obs(&self) {
        if let Some(obs) = self.obs.lock().as_ref() {
            obs.sync(&self.counters);
        }
    }
}

/// Writes a complete segment file (header + every frame) and `fsync`s it.
fn write_segment<O: StorageObject, C: ObjectCodec<O>>(
    path: &Path,
    meta: &SegmentMeta,
    db: &PagedDatabase<O>,
    codec: &C,
    counters: &StoreCounters,
) -> Result<File, StoreError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    let mut bytes = meta.encode_header();
    for pid in db.page_ids() {
        bytes.extend(encode_frame(meta, pid, db.page(pid).records(), codec)?);
    }
    file.write_all(&bytes)?;
    file.sync_all()?;
    counters.count_fsync();
    Ok(file)
}

/// `fsync`s a directory so a rename/create inside it is durable.
fn sync_dir(dir: &Path, counters: &StoreCounters) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    counters.count_fsync();
    Ok(())
}

impl<O, C> PageStore<O> for FilePageStore<O, C>
where
    O: StorageObject,
    C: ObjectCodec<O> + Send + Sync + std::fmt::Debug,
{
    fn database(&self) -> &PagedDatabase<O> {
        self.inner.database()
    }

    fn try_read_page(&self, id: PageId) -> Result<&Page<O>, DiskError> {
        if !self.inner.is_resident(id) {
            self.verify_frame(id)?;
        }
        self.inner.try_read_page(id)
    }

    fn try_read_page_pinned(&self, id: PageId) -> Result<&Page<O>, DiskError> {
        if !self.inner.is_resident(id) {
            self.verify_frame(id)?;
        }
        self.inner.try_read_page_pinned(id)
    }

    fn try_prefetch(&self, id: PageId) -> Result<(), DiskError> {
        if !self.inner.is_resident(id) {
            self.verify_frame(id)?;
        }
        self.inner.try_prefetch(id)
    }

    fn unpin_page(&self, id: PageId) {
        self.inner.unpin_page(id)
    }

    fn drop_prefetch_pins(&self) {
        self.inner.drop_prefetch_pins()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn cold_restart(&self) {
        self.inner.cold_restart()
    }

    fn attach_recorder(&self, recorder: &Recorder) {
        self.inner.attach_recorder(recorder);
        let mut obs = self.obs.lock();
        match recorder.registry() {
            Some(registry) => {
                let store_obs = StoreObs::register(registry);
                store_obs.sync(&self.counters);
                *obs = Some(store_obs);
            }
            None => *obs = None,
        }
    }

    fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.inner.set_fault_plan(plan)
    }

    fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.fault_plan()
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn is_killed(&self) -> bool {
        self.inner.is_killed()
    }

    fn buffer_capacity(&self) -> usize {
        self.inner.buffer_capacity()
    }

    fn buffer_len(&self) -> usize {
        self.inner.buffer_len()
    }

    fn pinned_pages(&self) -> usize {
        self.inner.pinned_pages()
    }

    fn checksum(&self, id: PageId) -> u64 {
        self.inner.checksum(id)
    }
}

// Frame reads in `verify_frame` use the parse-only path (ids, not
// payloads), so they never allocate decoded objects; FRAME_PREFIX_LEN is
// implied by the two prefix reads.
const _: () = assert!(FRAME_PREFIX_LEN == 12);

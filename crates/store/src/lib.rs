#![warn(missing_docs)]
//! # mq-store — the durable file-backed page store
//!
//! The paper's evaluation runs against a simulated disk; this crate makes
//! the same query machinery durable. [`FilePageStore`] implements the
//! [`mq_storage::PageStore`] trait over two real files:
//!
//! * a **segment file** of fixed-size page frames, each carrying the same
//!   per-page checksum the simulated disk precomputes, verified on every
//!   would-be physical read;
//! * a **write-ahead log** of `fsync`'d page post-images, replayed to the
//!   last complete record on reopen, with checkpoint/compaction folding
//!   the log back into the segment atomically (tmp file + rename).
//!
//! Because the store delegates all read accounting to an inner
//! [`mq_storage::SimulatedDisk`] over the recovered image, answers,
//! [`IoStats`](mq_storage::IoStats), and §5.2 avoidance counters are
//! bit-identical across backends — the property the testkit's
//! oracle-equivalence matrix enforces.
//!
//! The first mutation path lives here too: [`FilePageStore::insert`] and
//! [`FilePageStore::delete`] append a WAL record, rewrite the affected
//! frame in place, and leave in-flight multiple-query sessions repairable
//! via `QueryEngine::notify_insert` / `notify_delete`, preserving
//! Definition 4's incremental guarantees.

pub mod error;
pub mod file;
pub mod format;
pub mod obs;
pub mod partition;

pub use error::StoreError;
pub use file::{FilePageStore, LOCK_FILE, SEGMENT_FILE, WAL_FILE};
pub use format::{SegmentMeta, SEGMENT_HEADER_LEN};
pub use obs::{StoreCounters, StoreObs, StoreStats};
pub use partition::{PartitionManifest, PARTITION_MANIFEST_FILE};

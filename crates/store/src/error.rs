//! Typed failures of the durable store.

use mq_metric::ObjectId;
use mq_storage::PersistError;
use std::fmt;

/// Errors from creating, opening, or mutating a [`FilePageStore`].
///
/// [`FilePageStore`]: crate::FilePageStore
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// The directory does not hold a valid store (bad magic, bad version,
    /// impossible geometry).
    Format(String),
    /// A segment frame failed its checksum and no WAL record covers it —
    /// the page is unrecoverable.
    Corrupt {
        /// The damaged page.
        page: u32,
        /// What exactly disagreed.
        detail: String,
    },
    /// An object's encoded payload exceeds the store's fixed record slot.
    Oversized {
        /// Encoded payload size.
        bytes: usize,
        /// The store's per-record maximum.
        max: usize,
    },
    /// A mutation referenced an object id that is deleted or out of range.
    UnknownObject(ObjectId),
    /// The store directory is already owned by a live process — the store
    /// is single-writer, and opening it twice could destroy
    /// un-checkpointed mutations.
    Locked {
        /// The contested store directory.
        dir: std::path::PathBuf,
        /// Pid recorded in the lock file.
        holder: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Format(m) => write!(f, "store format error: {m}"),
            StoreError::Corrupt { page, detail } => {
                write!(f, "page {page} is unrecoverable: {detail}")
            }
            StoreError::Oversized { bytes, max } => {
                write!(
                    f,
                    "object payload of {bytes} B exceeds record slot of {max} B"
                )
            }
            StoreError::UnknownObject(id) => {
                write!(f, "object {id} is deleted or out of range")
            }
            StoreError::Locked { dir, holder } => {
                write!(
                    f,
                    "store {} is locked by live process {holder} (the store is \
                     single-writer; stop that process first)",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => StoreError::Io(e),
            PersistError::Format(m) => StoreError::Format(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let io: StoreError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(StoreError::Format("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let c = StoreError::Corrupt {
            page: 7,
            detail: "checksum".into(),
        };
        assert!(c.to_string().contains("page 7"));
        let o = StoreError::Oversized { bytes: 99, max: 64 };
        assert!(o.to_string().contains("99") && o.to_string().contains("64"));
        assert!(StoreError::UnknownObject(ObjectId(3))
            .to_string()
            .contains("O3"));
        let l = StoreError::Locked {
            dir: "/tmp/s".into(),
            holder: 1234,
        };
        assert!(l.to_string().contains("/tmp/s") && l.to_string().contains("1234"));
    }

    #[test]
    fn persist_errors_convert_by_kind() {
        let f: StoreError = PersistError::Format("truncated".into()).into();
        assert!(matches!(f, StoreError::Format(_)));
        let i: StoreError =
            PersistError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")).into();
        assert!(matches!(i, StoreError::Io(_)));
    }
}

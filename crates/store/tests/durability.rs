//! Durability and oracle-equivalence tests for [`FilePageStore`]:
//! create/open round-trips, WAL-first crash recovery, checksum
//! verification on the read path, and session reconciliation after online
//! insert/delete.

use mq_core::{QueryEngine, QueryType};
use mq_index::LinearScan;
use mq_metric::{CountingMetric, Euclidean, ObjectId, Vector};
use mq_storage::{
    Dataset, PageId, PageLayout, PageStore, PagedDatabase, SimulatedDisk, VectorCodec,
};
use mq_store::{FilePageStore, StoreError, LOCK_FILE, SEGMENT_FILE, WAL_FILE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mq-store-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid(n: usize) -> Dataset<Vector> {
    Dataset::new(
        (0..n)
            .map(|i| Vector::new(vec![(i % 10) as f32, (i / 10) as f32]))
            .collect(),
    )
}

fn db(n: usize) -> PagedDatabase<Vector> {
    PagedDatabase::pack(&grid(n), PageLayout::new(128, 16))
}

fn answers_on(store: &dyn PageStore<Vector>) -> Vec<Vec<(ObjectId, u64)>> {
    let index = LinearScan::new(store.database().page_count());
    let metric = CountingMetric::new(Euclidean);
    let engine = QueryEngine::new(store, &index, metric);
    let queries = vec![
        (Vector::new(vec![4.5, 4.5]), QueryType::knn(5)),
        (Vector::new(vec![0.0, 9.0]), QueryType::range(2.5)),
        (Vector::new(vec![7.0, 2.0]), QueryType::knn(3)),
    ];
    engine
        .multiple_similarity_query(queries)
        .into_iter()
        .map(|list| {
            list.into_iter()
                .map(|a| (a.id, a.distance.to_bits()))
                .collect()
        })
        .collect()
}

#[test]
fn file_store_answers_match_the_simulated_oracle_bit_for_bit() {
    let dir = temp_dir("oracle");
    let store = FilePageStore::create(&dir, db(100), VectorCodec, 4).expect("create");
    let sim = SimulatedDisk::with_buffer_pages(db(100), 4);
    assert_eq!(answers_on(&store), answers_on(&sim));
    assert_eq!(store.stats(), sim.stats(), "IoStats must be bit-identical");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_restores_pages_and_directory_bit_for_bit() {
    let dir = temp_dir("reopen");
    let before = {
        let store = FilePageStore::create(&dir, db(60), VectorCodec, 4).expect("create");
        answers_on(&store)
    };
    let store = FilePageStore::open(&dir, VectorCodec, 4).expect("open");
    assert_eq!(store.store_stats().recovery_replayed_records, 0);
    assert_eq!(answers_on(&store), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn insert_and_delete_survive_reopen() {
    let dir = temp_dir("mutate");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    let new_id = store.insert(Vector::new(vec![50.0, 50.0])).expect("insert");
    assert_eq!(new_id, ObjectId(30));
    store.delete(ObjectId(7)).expect("delete");
    assert_eq!(store.store_stats().wal_appends, 2);
    assert_eq!(store.store_stats().page_rewrites, 2);
    let live_before = store.database().live_object_count();
    drop(store);

    let store = FilePageStore::open(&dir, VectorCodec, 4).expect("open");
    let db = store.database();
    assert_eq!(db.live_object_count(), live_before);
    assert_eq!(db.try_locate(ObjectId(7)), None, "tombstone persisted");
    assert_eq!(db.object(new_id).components(), &[50.0, 50.0]);
    // Recovery replayed both mutations, then checkpointed the segment.
    let stats = store.store_stats();
    assert_eq!(stats.recovery_replayed_records, 2);
    assert_eq!(stats.checkpoints, 1);
    assert_eq!(store.wal_bytes(), 8, "WAL truncated to its header");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_recovers_to_last_complete_record() {
    let dir = temp_dir("torn");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    store.insert(Vector::new(vec![20.0, 20.0])).expect("first");
    let wal_after_first = store.wal_bytes();
    store.insert(Vector::new(vec![21.0, 21.0])).expect("second");
    drop(store);

    // Simulated crash: the second append only partially reached the disk.
    let wal_path = dir.join(WAL_FILE);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(wal_after_first + 5).unwrap();
    drop(f);

    let store = FilePageStore::open(&dir, VectorCodec, 4).expect("recover");
    assert_eq!(store.store_stats().recovery_replayed_records, 1);
    let db = store.database();
    assert_eq!(db.object_count(), 31, "first insert survives");
    assert_eq!(db.object(ObjectId(30)).components(), &[20.0, 20.0]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_checkpoint_rename_and_wal_truncate_recovers() {
    let dir = temp_dir("ckpt-window");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    store.insert(Vector::new(vec![20.0, 20.0])).expect("insert");
    store.delete(ObjectId(3)).expect("delete");
    let wal_image = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let before = answers_on(&store);
    store.checkpoint().expect("checkpoint");
    drop(store);

    // Simulated crash inside the checkpoint window: the fresh segment was
    // renamed into place, but the process died before the WAL truncation —
    // every record on disk is a stale duplicate of state the segment
    // already carries. Reopen must replay them idempotently, not fail.
    std::fs::write(dir.join(WAL_FILE), &wal_image).unwrap();

    let store = FilePageStore::open(&dir, VectorCodec, 4)
        .expect("reopen after a crash inside the checkpoint window");
    assert_eq!(store.store_stats().recovery_replayed_records, 2);
    assert_eq!(
        store.wal_bytes(),
        8,
        "checkpoint-on-open cleared the stale WAL"
    );
    let db = store.database();
    assert_eq!(db.try_locate(ObjectId(3)), None);
    assert_eq!(db.object(ObjectId(30)).components(), &[20.0, 20.0]);
    assert_eq!(answers_on(&store), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_wal_page_count_is_a_typed_error_not_an_allocation() {
    use mq_store::format::{encode_wal_record, WalRecord, OP_INSERT};
    let dir = temp_dir("tampered-count");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    store.insert(Vector::new(vec![20.0, 20.0])).expect("insert");
    drop(store);

    // A CRC-valid record claiming a page far outside any segment one
    // append could have grown to: recovery must reject it (typed error)
    // instead of sizing the frame table to a million entries.
    let record = WalRecord {
        op: OP_INSERT,
        oid: ObjectId(31),
        page: PageId(1_000_000),
        page_count_after: 1_000_001,
        id_space_after: 32,
        records: vec![(ObjectId(31), Vector::new(vec![1.0, 1.0]))],
    };
    let bytes = encode_wal_record(&record, &VectorCodec);
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    std::io::Write::write_all(&mut wal, &bytes).unwrap();
    drop(wal);

    match FilePageStore::<Vector, _>::open(&dir, VectorCodec, 4) {
        Err(StoreError::Format(msg)) => assert!(msg.contains("page count"), "{msg}"),
        other => panic!("expected Format error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_opener_is_rejected_while_the_store_is_live() {
    let dir = temp_dir("locked");
    let store = FilePageStore::create(&dir, db(10), VectorCodec, 4).expect("create");
    match FilePageStore::<Vector, _>::open(&dir, VectorCodec, 4) {
        Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, std::process::id()),
        other => panic!("expected Locked, got {other:?}"),
    }
    drop(store);
    // The drop released the lock; the directory can be owned again.
    FilePageStore::<Vector, _>::open(&dir, VectorCodec, 4).expect("reopen after release");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_lock_of_a_dead_process_is_stolen() {
    let dir = temp_dir("stale-lock");
    drop(FilePageStore::create(&dir, db(10), VectorCodec, 4).expect("create"));
    // A crashed owner leaves its lock file behind: a pid no live process
    // can hold (beyond any PID_MAX), and the garbage a crash mid-acquire
    // leaves. Both are stale and must be stolen, never fatal.
    for stale in ["4294967294", "not-a-pid", ""] {
        std::fs::write(dir.join(LOCK_FILE), stale).unwrap();
        let store = FilePageStore::<Vector, _>::open(&dir, VectorCodec, 4)
            .unwrap_or_else(|e| panic!("stale lock '{stale}' must be stolen, got {e}"));
        drop(store);
        assert!(
            !dir.join(LOCK_FILE).exists(),
            "lock file must be removed on drop"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_frame_is_repaired_by_wal_post_image() {
    let dir = temp_dir("stale-frame");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    store.insert(Vector::new(vec![20.0, 20.0])).expect("insert");
    let (page, _) = store.database().locate(ObjectId(30));
    let offset = store.meta().frame_offset(page);
    let frame_bytes = store.meta().frame_bytes as usize;
    drop(store);

    // Simulated crash between the WAL fsync and the frame rewrite: smash
    // the frame the insert touched. The WAL post-image must repair it.
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(SEGMENT_FILE))
        .unwrap();
    use std::os::unix::fs::FileExt;
    f.write_all_at(&vec![0xAA; frame_bytes], offset).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let store = FilePageStore::open(&dir, VectorCodec, 4).expect("recover");
    assert_eq!(
        store.database().object(ObjectId(30)).components(),
        &[20.0, 20.0]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncovered_corrupt_frame_is_a_typed_error() {
    let dir = temp_dir("uncovered");
    let store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    let offset = store.meta().frame_offset(PageId(1));
    drop(store);

    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(SEGMENT_FILE))
        .unwrap();
    use std::os::unix::fs::FileExt;
    f.write_all_at(&[0xFF; 16], offset).unwrap();
    drop(f);

    match FilePageStore::<Vector, _>::open(&dir, VectorCodec, 4) {
        Err(StoreError::Corrupt { page: 1, .. }) => {}
        other => panic!("expected Corrupt {{ page: 1 }}, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_path_verifies_frames_against_online_rot() {
    let dir = temp_dir("rot");
    let store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    // Rot a frame behind the store's back.
    let offset = store.meta().frame_offset(PageId(2));
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join(SEGMENT_FILE))
        .unwrap();
    use std::os::unix::fs::FileExt;
    f.write_all_at(&[0x55; 4], offset).unwrap();
    drop(f);

    match store.try_read_page(PageId(2)) {
        Err(mq_storage::DiskError::CorruptPage { page, .. }) => assert_eq!(page, PageId(2)),
        other => panic!("expected CorruptPage, got {other:?}"),
    }
    // Healthy pages still read, and the failed attempt cost no I/O counter.
    assert!(store.try_read_page(PageId(0)).is_ok());
    assert_eq!(store.stats().logical_reads, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_insert_is_rejected_before_any_write() {
    let dir = temp_dir("oversized");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    let wal = store.wal_bytes();
    let count = store.database().object_count();
    match store.insert(Vector::new(vec![1.0; 64])) {
        Err(StoreError::Oversized { .. }) => {}
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert_eq!(store.wal_bytes(), wal);
    assert_eq!(store.database().object_count(), count);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deleting_unknown_or_tombstoned_object_errors() {
    let dir = temp_dir("unknown");
    let mut store = FilePageStore::create(&dir, db(10), VectorCodec, 4).expect("create");
    assert!(matches!(
        store.delete(ObjectId(99)),
        Err(StoreError::UnknownObject(ObjectId(99)))
    ));
    store.delete(ObjectId(3)).expect("first delete");
    assert!(matches!(
        store.delete(ObjectId(3)),
        Err(StoreError::UnknownObject(ObjectId(3)))
    ));
    let dir = store.dir().to_path_buf();
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explicit_checkpoint_compacts_the_wal() {
    let dir = temp_dir("checkpoint");
    let mut store = FilePageStore::create(&dir, db(30), VectorCodec, 4).expect("create");
    for i in 0..5 {
        store
            .insert(Vector::new(vec![30.0 + i as f32, 0.0]))
            .unwrap();
    }
    assert!(store.wal_bytes() > 8);
    store.checkpoint().expect("checkpoint");
    assert_eq!(store.wal_bytes(), 8);
    assert_eq!(store.store_stats().checkpoints, 1);
    drop(store);
    // A post-checkpoint reopen replays nothing and keeps every insert.
    let store = FilePageStore::open(&dir, VectorCodec, 4).expect("open");
    assert_eq!(store.store_stats().recovery_replayed_records, 0);
    assert_eq!(store.database().object_count(), 35);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn insert_notifies_an_in_flight_session_without_restarting_it() {
    let dir = temp_dir("notify-insert");
    let mut store = FilePageStore::create(&dir, db(100), VectorCodec, 4).expect("create");
    let metric = CountingMetric::new(Euclidean);
    let query = Vector::new(vec![4.5, 4.5]);

    // Start a batch and complete the first query, leaving others pending.
    let index = LinearScan::new(store.database().page_count());
    let engine = QueryEngine::new(&store, &index, metric.clone());
    let mut session = engine.new_session(vec![
        (query.clone(), QueryType::knn(4)),
        (Vector::new(vec![9.0, 0.0]), QueryType::knn(4)),
    ]);
    engine.complete_query(&mut session, 0);
    drop(engine);

    // Online insert of an exact duplicate of the first query point — it
    // must enter the already-completed query's answers via notification.
    let new_id = store.insert(Vector::new(vec![4.5, 4.5])).expect("insert");
    let index = LinearScan::new(store.database().page_count());
    let engine = QueryEngine::new(&store, &index, metric.clone());
    let evaluated = engine.notify_insert(&mut session, new_id);
    assert!(evaluated >= 1);
    assert!(
        session.answers(0).ids().any(|id| id == new_id),
        "completed query must see the inserted exact match"
    );
    engine.run_to_completion(&mut session);

    // Oracle: a fresh run over the post-insert store agrees exactly.
    let oracle_engine = QueryEngine::new(&store, &index, metric);
    let oracle = oracle_engine.multiple_similarity_query(vec![
        (query, QueryType::knn(4)),
        (Vector::new(vec![9.0, 0.0]), QueryType::knn(4)),
    ]);
    let got: Vec<Vec<ObjectId>> = (0..2).map(|i| session.answers(i).ids().collect()).collect();
    let want: Vec<Vec<ObjectId>> = oracle
        .iter()
        .map(|l| l.iter().map(|a| a.id).collect())
        .collect();
    assert_eq!(got, want);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delete_invalidates_only_queries_holding_the_victim() {
    let dir = temp_dir("notify-delete");
    let mut store = FilePageStore::create(&dir, db(100), VectorCodec, 4).expect("create");
    let metric = CountingMetric::new(Euclidean);

    let index = LinearScan::new(store.database().page_count());
    let engine = QueryEngine::new(&store, &index, metric.clone());
    // Query 0 sits at (0,0); query 1 far away at (9,9).
    let mut session = engine.new_session(vec![
        (Vector::new(vec![0.0, 0.0]), QueryType::knn(3)),
        (Vector::new(vec![9.0, 9.0]), QueryType::knn(3)),
    ]);
    engine.run_to_completion(&mut session);
    let victim = session.answers(0).ids().next().expect("nearest neighbor");
    assert!(!session.answers(1).ids().any(|id| id == victim));
    drop(engine);

    store.delete(victim).expect("delete");
    let index = LinearScan::new(store.database().page_count());
    let engine = QueryEngine::new(&store, &index, metric.clone());
    let invalidated = engine.notify_delete(&mut session, victim);
    assert_eq!(invalidated, 1, "only the query holding the victim resets");
    assert!(
        session.is_complete(1),
        "unaffected query keeps its progress"
    );
    engine.run_to_completion(&mut session);
    assert!(!session.answers(0).ids().any(|id| id == victim));

    // Oracle agreement on the post-delete store.
    let oracle = QueryEngine::new(&store, &index, metric).multiple_similarity_query(vec![
        (Vector::new(vec![0.0, 0.0]), QueryType::knn(3)),
        (Vector::new(vec![9.0, 9.0]), QueryType::knn(3)),
    ]);
    for (i, answers) in oracle.iter().enumerate() {
        let got: Vec<ObjectId> = session.answers(i).ids().collect();
        let want: Vec<ObjectId> = answers.iter().map(|a| a.id).collect();
        assert_eq!(got, want, "query {i}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_plans_inject_identically_through_the_file_backend() {
    let dir = temp_dir("faults");
    let store = FilePageStore::create(&dir, db(40), VectorCodec, 4).expect("create");
    let sim = SimulatedDisk::with_buffer_pages(db(40), 4);
    let plan = mq_storage::FaultPlan::new(77)
        .with_transient(0.5)
        .with_max_faults_per_page(1);
    store.set_fault_plan(Some(plan));
    sim.set_fault_plan(Some(plan));
    for i in 0..store.database().page_count() as u32 {
        let a = store.try_read_page(PageId(i)).is_ok();
        let b = sim.try_read_page(PageId(i)).is_ok();
        assert_eq!(a, b, "page {i}");
    }
    assert_eq!(store.fault_stats(), sim.fault_stats());
    assert_eq!(store.stats(), sim.stats());
    std::fs::remove_dir_all(&dir).unwrap();
}

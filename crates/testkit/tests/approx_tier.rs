//! The approximate candidate tier's exactness boundary and its
//! composition with fault injection.
//!
//! Two halves, mirroring `mq_core::prescreen`'s contract:
//!
//! 1. **Boundary** — a tier whose budget admits every stored object must
//!    leave the engine bit-identical: answers, `AvoidanceStats`, and
//!    `IoStats`, across the whole threads × prefetch × leader matrix.
//! 2. **Composition** — with a genuinely lossy budget attached,
//!    [`Sim::assert_oracle_equivalence`] must still hold under injected
//!    disk faults: a faulty prescreened run that succeeds matches the
//!    fault-free prescreened oracle exactly.

use mq_testkit::{config_matrix, scenario, Sim, SimConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// The CI seed set of `oracle_equivalence.rs`, thinned — each seed runs
/// the 12-configuration matrix twice here.
const SEEDS: [u64; 4] = [1, 5, 13, 34];

/// A fresh per-test scratch directory.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mq-testkit-approx-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn full_budget_tier_is_bit_identical_to_the_exact_engine() {
    // budget ≥ N admits everything: the candidate restriction never skips
    // a page or a record, so the tier must be invisible — not just in the
    // answers but in every avoidance and I/O counter.
    for &seed in &SEEDS {
        let exact = Sim::new(seed);
        let tier = Sim::new(seed).with_prescreen_budget(usize::MAX);
        for config in config_matrix() {
            let e = exact.run(config);
            let t = tier.run(config);
            assert_eq!(
                e.answers, t.answers,
                "seed {seed}, {config:?}: full-budget answers diverged"
            );
            assert_eq!(
                e.avoidance, t.avoidance,
                "seed {seed}, {config:?}: full-budget avoidance counters diverged"
            );
            assert_eq!(
                e.io, t.io,
                "seed {seed}, {config:?}: full-budget I/O counters diverged"
            );
        }
    }
}

#[test]
fn narrow_budget_actually_restricts_the_run() {
    // Guard against vacuity: a lossy budget must do real prefiltering —
    // strictly fewer distance calculations than the exact engine (the
    // whole point of the tier). Answers may lose recall but never gain
    // objects the exact run didn't report.
    let config = SimConfig {
        threads: 1,
        prefetch_depth: 0,
        leader: mq_core::LeaderPolicy::Fifo,
    };
    for &seed in &SEEDS {
        let e = Sim::new(seed).run(config);
        let t = Sim::new(seed).with_prescreen_budget(8).run(config);
        let exact_calcs = e.avoidance.computed;
        let tier_calcs = t.avoidance.computed;
        assert!(
            tier_calcs < exact_calcs,
            "seed {seed}: budget 8 of 160 did not reduce distance work \
             ({tier_calcs} vs {exact_calcs})"
        );
        // The workload alternates knn/range; range answers of a lossy run
        // must be a subset of the exact run's, with bit-identical
        // distances (k-NN may legitimately backfill with farther
        // candidates, so only the fixed range predicate pins a subset).
        for (qi, answers) in t.answers.iter().enumerate().skip(1).step_by(2) {
            for a in answers {
                assert!(
                    e.answers[qi]
                        .iter()
                        .any(|x| x.id == a.id && x.distance == a.distance),
                    "seed {seed}, range query {qi}: tier reported {:?} @ {} \
                     which the exact engine did not",
                    a.id,
                    a.distance
                );
            }
        }
    }
}

#[test]
fn lossy_tier_under_disk_faults_matches_its_oracle() {
    // The ISSUE's composition clause: Sim::assert_oracle_equivalence with
    // the tier attached under fault injection. The oracle carries the
    // same prescreen, so success must reproduce the fault-free
    // prescreened run bit for bit.
    for &seed in &SEEDS {
        Sim::new(seed)
            .with_prescreen_budget(48)
            .with_plan(scenario::disk_plan(seed))
            .with_retry_budget(4)
            .assert_oracle_equivalence();
    }
}

#[test]
fn lossy_tier_under_latency_spikes_matches_its_oracle() {
    for &seed in &SEEDS {
        Sim::new(seed)
            .with_prescreen_budget(48)
            .with_plan(scenario::latency_plan(seed))
            .assert_oracle_equivalence();
    }
}

#[test]
fn file_backend_with_tier_stays_report_identical() {
    // The durable store half: the candidate restriction must not perturb
    // the in-memory vs file-backed report equivalence, faults included.
    let dir = temp_dir("faulty");
    Sim::new(21)
        .with_prescreen_budget(48)
        .with_plan(scenario::disk_plan(21))
        .with_retry_budget(3)
        .assert_backend_equivalence(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

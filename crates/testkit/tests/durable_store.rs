//! Fault-matrix extension to the durable file backend.
//!
//! Three claims, all seed-reproducible:
//!
//! 1. the file-backed store is **report-identical** to the in-memory
//!    backend across the whole engine-configuration matrix — answers,
//!    avoidance counters, every I/O counter — with and without injected
//!    faults;
//! 2. a WAL torn mid-record recovers to the last complete record;
//! 3. a crash after *any* number of WAL appends (kill-after-N) recovers
//!    to exactly the state a clean store reaches by applying the same
//!    first N operations — verified object-by-object and answer-by-answer.

use mq_metric::{ObjectId, Symbols};
use mq_storage::PageStore;
use mq_store::{FilePageStore, SEGMENT_FILE, WAL_FILE};
use mq_testkit::{config_matrix, scenario, Sim};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh per-test scratch directory.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mq-testkit-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn file_backend_is_report_identical_without_faults() {
    let dir = temp_dir("clean");
    Sim::new(21).assert_backend_equivalence(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_injects_disk_faults_identically() {
    let dir = temp_dir("faulty");
    Sim::new(22)
        .with_plan(scenario::disk_plan(22))
        .with_retry_budget(3)
        .assert_backend_equivalence(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_injects_latency_faults_identically() {
    let dir = temp_dir("latency");
    Sim::new(23)
        .with_plan(scenario::latency_plan(23))
        .assert_backend_equivalence(&dir);
    std::fs::remove_dir_all(&dir).ok();
}

/// The mutation sequence of the recovery sweeps: duplicate-inserts and
/// deletes interleaved, all guaranteed to fit the store's geometry
/// (duplicates reuse stored records, deletes only touch live ids).
fn apply_ops(
    store: &mut FilePageStore<Symbols, mq_storage::SymbolsCodec>,
    sessions: &[Symbols],
    count: usize,
) -> Vec<u64> {
    let mut wal_offsets = vec![store.wal_bytes()];
    for (i, session) in sessions.iter().enumerate().take(count) {
        if i % 2 == 0 {
            store.insert(session.clone()).expect("insert duplicate");
        } else {
            store.delete(ObjectId(i as u32)).expect("delete live id");
        }
        wal_offsets.push(store.wal_bytes());
    }
    wal_offsets
}

/// Asserts two stores hold the same logical database, id by id.
fn assert_same_database(
    a: &FilePageStore<Symbols, mq_storage::SymbolsCodec>,
    b: &FilePageStore<Symbols, mq_storage::SymbolsCodec>,
    context: &str,
) {
    let (da, db) = (a.database(), b.database());
    assert_eq!(da.object_count(), db.object_count(), "{context}: id space");
    assert_eq!(
        da.live_object_count(),
        db.live_object_count(),
        "{context}: live objects"
    );
    for id in 0..da.object_count() as u32 {
        assert_eq!(
            da.try_object(ObjectId(id)),
            db.try_object(ObjectId(id)),
            "{context}: object {id}"
        );
    }
}

/// Builds a crashed store directory: the first `n` operations applied
/// fully, then `tail` extra bytes appended to the WAL *without* their
/// frame rewrite — the state a kill -9 leaves when it lands between the
/// WAL `fsync` and the segment `pwrite` (full record appended) or during
/// the append itself (partial record). The durable-WAL write ordering
/// makes these the only reachable crash states beyond a clean prefix.
fn crashed_dir(sim: &Sim, sessions: &[Symbols], n: usize, tail: &[u8]) -> PathBuf {
    use std::io::Write;
    let dir = temp_dir("crash");
    let mut store = sim.open_or_create_store(&dir);
    apply_ops(&mut store, sessions, n);
    drop(store);
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .expect("open WAL for crash tail");
    wal.write_all(tail).expect("append crash tail");
    drop(wal);
    dir
}

#[test]
fn kill_after_n_appends_recovers_to_the_clean_twin() {
    let sim = Sim::new(33);
    let (sessions, _) = sim.workload();
    const OPS: usize = 6;

    // Probe run: WAL offsets after every append, plus the full WAL bytes
    // (deterministic — asserted below), so any record's exact on-disk
    // encoding can be replayed into a crash scenario.
    let probe_dir = temp_dir("wal-offsets");
    let (offsets, wal_image) = {
        let mut store = sim.open_or_create_store(&probe_dir);
        let offsets = apply_ops(&mut store, &sessions, OPS);
        drop(store);
        let image = std::fs::read(probe_dir.join(WAL_FILE)).expect("read probe WAL");
        (offsets, image)
    };
    {
        let verify_dir = temp_dir("wal-determinism");
        let mut store = sim.open_or_create_store(&verify_dir);
        assert_eq!(
            apply_ops(&mut store, &sessions, OPS),
            offsets,
            "WAL layout must be deterministic"
        );
        std::fs::remove_dir_all(&verify_dir).ok();
    }

    let config = config_matrix()[0];
    for n in 0..OPS {
        let record = &wal_image[offsets[n] as usize..offsets[n + 1] as usize];
        // Two reachable crash states at the append boundary: record n+1
        // fully fsync'd but its frame write lost (replays n+1), and
        // record n+1 torn mid-append (replays n).
        for (case, tail, survives) in [
            ("frame write lost", record, n + 1),
            ("torn tail", &record[..record.len() / 2], n),
        ] {
            let crash_dir = crashed_dir(&sim, &sessions, n, tail);
            let clean_dir = temp_dir("clean-twin");
            let mut clean = sim.open_or_create_store(&clean_dir);
            apply_ops(&mut clean, &sessions, survives);
            drop(clean);

            let recovered = sim.open_or_create_store(&crash_dir);
            assert_eq!(
                recovered.store_stats().recovery_replayed_records,
                survives as u64,
                "kill after {n} appends ({case}) must replay {survives} records"
            );
            let clean = sim.open_or_create_store(&clean_dir);
            assert_same_database(
                &recovered,
                &clean,
                &format!("kill after {n} appends ({case})"),
            );
            drop((recovered, clean));

            // The recovered store must answer queries exactly like the
            // twin that never crashed.
            let crashed_report = sim.run_file(config, &crash_dir);
            let clean_report = sim.run_file(config, &clean_dir);
            assert_eq!(
                crashed_report.answers, clean_report.answers,
                "kill after {n} appends ({case}): answers diverged from the clean twin"
            );
            assert_eq!(
                crashed_report.io, clean_report.io,
                "kill after {n} appends ({case}): I/O counters diverged from the clean twin"
            );

            for dir in [&crash_dir, &clean_dir] {
                std::fs::remove_dir_all(dir).ok();
            }
        }
    }
    std::fs::remove_dir_all(&probe_dir).ok();
}

#[test]
fn crash_inside_the_checkpoint_window_reopens_with_the_stale_wal() {
    let sim = Sim::new(55);
    let (sessions, _) = sim.workload();
    const OPS: usize = 4;

    let crash_dir = temp_dir("ckpt-window");
    let mut store = sim.open_or_create_store(&crash_dir);
    apply_ops(&mut store, &sessions, OPS);
    let wal_image = std::fs::read(crash_dir.join(WAL_FILE)).expect("pre-checkpoint WAL");
    store.checkpoint().expect("checkpoint");
    drop(store);
    // Kill between the checkpoint's segment rename and its WAL
    // truncation: the fresh segment sits alongside the full
    // pre-checkpoint WAL, whose records are stale duplicates of state
    // the segment already carries.
    std::fs::write(crash_dir.join(WAL_FILE), &wal_image).expect("restore stale WAL");

    let clean_dir = temp_dir("ckpt-clean");
    let mut clean = sim.open_or_create_store(&clean_dir);
    apply_ops(&mut clean, &sessions, OPS);
    drop(clean);

    let recovered = sim.open_or_create_store(&crash_dir);
    assert_eq!(
        recovered.store_stats().recovery_replayed_records,
        OPS as u64,
        "every stale record replays idempotently"
    );
    assert_eq!(
        recovered.wal_bytes(),
        8,
        "checkpoint-on-open empties the WAL"
    );
    let clean = sim.open_or_create_store(&clean_dir);
    assert_same_database(&recovered, &clean, "checkpoint-window crash");
    drop((recovered, clean));

    let config = config_matrix()[0];
    assert_eq!(
        sim.run_file(config, &crash_dir).answers,
        sim.run_file(config, &clean_dir).answers,
        "checkpoint-window crash: answers diverged from the clean twin"
    );
    for dir in [&crash_dir, &clean_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn torn_wal_tail_is_discarded_and_checkpointed_away() {
    let sim = Sim::new(44);
    let (sessions, _) = sim.workload();
    const OPS: usize = 4;

    let probe_dir = temp_dir("torn-probe");
    let (offsets, wal_image) = {
        let mut store = sim.open_or_create_store(&probe_dir);
        let offsets = apply_ops(&mut store, &sessions, OPS);
        drop(store);
        let image = std::fs::read(probe_dir.join(WAL_FILE)).expect("read probe WAL");
        (offsets, image)
    };

    for n in 0..OPS {
        let record = &wal_image[offsets[n] as usize..offsets[n + 1] as usize];
        // Tear at every interesting point of record n+1: inside the
        // length prefix, inside the checksum, and inside the payload.
        for cut in [1usize, 6, record.len() - 1] {
            let crash_dir = crashed_dir(&sim, &sessions, n, &record[..cut.min(record.len())]);
            let recovered = sim.open_or_create_store(&crash_dir);
            assert_eq!(
                recovered.store_stats().recovery_replayed_records,
                n as u64,
                "record {} torn at byte {cut}: must replay only the {n} complete records",
                n + 1
            );
            // Recovery checkpointed: the torn tail is gone for good and
            // the segment alone carries the state.
            assert_eq!(recovered.wal_bytes(), 8, "checkpoint must empty the WAL");
            assert!(crash_dir.join(SEGMENT_FILE).exists());
            assert_eq!(
                recovered.database().live_object_count(),
                sim.database().object_count() + n.div_ceil(2) - n / 2,
                "record {} torn at byte {cut}: live count must match the {n}-op prefix",
                n + 1
            );
            drop(recovered);
            std::fs::remove_dir_all(&crash_dir).ok();
        }
    }
    std::fs::remove_dir_all(&probe_dir).ok();
}

//! Network-fault tests: the retrying client against a server reached
//! through the byte-budgeted [`FlakyProxy`].
//!
//! The failure pattern is a data value (the budget schedule), so every
//! run replays identically; the client's backoff jitter is seeded the
//! same way.

use mq_core::QueryType;
use mq_datagen::uniform_vectors;
use mq_index::{LinearScan, SimilarityIndex};
use mq_metric::Vector;
use mq_server::{
    Client, ClientError, ProtocolError, QueryServer, RetryConfig, RetryingClient, ServerConfig,
    SingleEngineBackend,
};
use mq_storage::{Dataset, PageLayout, PagedDatabase};
use mq_testkit::FlakyProxy;
use std::time::{Duration, Instant};

fn start_server() -> QueryServer {
    let objects = uniform_vectors(200, 3, 77);
    let ds = Dataset::new(objects);
    let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
    let scan = LinearScan::new(db.page_count());
    let backend = Box::new(SingleEngineBackend::new(
        db,
        Box::new(scan) as Box<dyn SimilarityIndex<Vector>>,
        0.10,
        true,
    ));
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(2));
    QueryServer::bind("127.0.0.1:0", backend, &config).expect("bind server")
}

fn retry_config() -> RetryConfig {
    RetryConfig::default()
        .with_max_retries(3)
        .with_connect_timeout(Duration::from_millis(500))
        .with_read_timeout(Some(Duration::from_secs(2)))
        .with_backoff(Duration::from_millis(2), Duration::from_millis(10))
        .with_jitter_seed(7)
}

#[test]
fn client_recovers_from_a_connection_cut_mid_reply() {
    let server = start_server();
    // First connection dies after 10 reply bytes (mid-frame: the header
    // alone is 10 bytes); the reconnection is unrestricted.
    let proxy = FlakyProxy::start(server.local_addr(), vec![Some(10)]).expect("proxy");
    let query = Vector::new(vec![0.5, 0.5, 0.5]);

    let mut direct = Client::connect(server.local_addr()).expect("direct client");
    let want = direct.query(&query, &QueryType::knn(3)).expect("direct");

    let mut retrying = RetryingClient::new(proxy.local_addr().to_string(), retry_config());
    let got = retrying
        .query(&query, &QueryType::knn(3))
        .expect("the retry must transparently resubmit");
    assert!(
        retrying.retries_performed() >= 1,
        "the first connection was cut, a retry must have happened"
    );
    assert_eq!(got.answers, want.answers, "resubmitted answers must match");
}

#[test]
fn repeated_cuts_exhaust_the_budget_with_a_typed_error() {
    let server = start_server();
    // Every connection the client will ever make is cut mid-reply.
    let proxy = FlakyProxy::start(
        server.local_addr(),
        vec![Some(10), Some(10), Some(10), Some(10), Some(10)],
    )
    .expect("proxy");
    let mut retrying = RetryingClient::new(proxy.local_addr().to_string(), retry_config());
    let err = retrying.query(&Vector::new(vec![0.1, 0.2, 0.3]), &QueryType::knn(2));
    assert!(
        matches!(err, Err(ClientError::Protocol(ProtocolError::Io(_)))),
        "exhausted retries must surface the transport error: {err:?}"
    );
    assert_eq!(
        retrying.retries_performed(),
        3,
        "budget bounds the attempts"
    );
}

#[test]
fn read_timeout_bounds_a_stalled_server() {
    // An accept-only listener: connections open but no byte ever returns.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        // Keep accepted sockets alive so the client sees a stall, not a
        // reset; exit when the listener is closed by test end.
        let mut held = Vec::new();
        for stream in listener.incoming().take(3).flatten() {
            held.push(stream);
        }
    });
    let config = RetryConfig::default()
        .with_max_retries(1)
        .with_connect_timeout(Duration::from_millis(500))
        .with_read_timeout(Some(Duration::from_millis(150)))
        .with_backoff(Duration::from_millis(1), Duration::from_millis(2));
    let mut client = RetryingClient::new(addr.to_string(), config);
    let started = Instant::now();
    let err = client.query(&Vector::new(vec![1.0]), &QueryType::knn(1));
    let elapsed = started.elapsed();
    assert!(
        matches!(err, Err(ClientError::Protocol(ProtocolError::Io(_)))),
        "a stalled server must surface as a timeout I/O error: {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "timeouts must bound the stall, took {elapsed:?}"
    );
    drop(client);
    drop(hold); // detached; the held connections die with the process
}

#[test]
fn stats_calls_retry_too() {
    let server = start_server();
    let proxy = FlakyProxy::start(server.local_addr(), vec![Some(5)]).expect("proxy");
    let mut retrying = RetryingClient::new(proxy.local_addr().to_string(), retry_config());
    let metrics = retrying.stats().expect("stats after reconnect");
    assert_eq!(metrics.queries, 0, "fresh server served nothing yet");
    assert!(retrying.retries_performed() >= 1);
}

//! The testkit's headline invariant: under every fault plan, a run that
//! reports success is bit-identical to the fault-free oracle — answers
//! and avoidance counters — across the whole engine configuration matrix.
//!
//! Every assertion prints the seed; rerunning the same seed replays the
//! exact fault pattern.

use mq_testkit::{config_matrix, scenario, Sim};

/// The CI seed set: small Fibonacci numbers, nothing magical — any seed
/// must pass, these are just the ones pinned for reproducibility.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

#[test]
fn lossy_disk_runs_match_the_oracle_when_they_succeed() {
    for &seed in &SEEDS {
        Sim::new(seed)
            .with_plan(scenario::disk_plan(seed))
            .with_retry_budget(4)
            .assert_oracle_equivalence();
    }
}

#[test]
fn lossy_disk_faults_actually_fire() {
    // The equivalence above would be vacuous if the plans never injected
    // anything; check that across the seed set faults do occur and are
    // absorbed by the budget.
    let mut total_faults = 0u64;
    for &seed in &SEEDS {
        let sim = Sim::new(seed)
            .with_plan(scenario::disk_plan(seed))
            .with_retry_budget(4);
        for config in config_matrix() {
            let report = sim.run(config);
            assert!(
                report.gave_up.is_none(),
                "seed {seed}, {config:?}: budget 4 should absorb 2-faults-per-page plans, got {:?}",
                report.gave_up
            );
            total_faults += report.fault_stats.total_failures();
        }
    }
    assert!(
        total_faults > 0,
        "no fault fired across {} seeds — the plans are dead",
        SEEDS.len()
    );
}

#[test]
fn latency_spikes_change_no_counter_at_all() {
    // Latency-only plans succeed every read: even with a zero retry
    // budget the run must match the oracle exactly, and the spikes must
    // show up only in FaultStats.
    for &seed in &SEEDS {
        let sim = Sim::new(seed).with_plan(scenario::latency_plan(seed));
        sim.assert_oracle_equivalence();
        for config in config_matrix() {
            let report = sim.run(config);
            let oracle = sim.oracle(config);
            assert!(report.gave_up.is_none(), "seed {seed}, {config:?}");
            assert_eq!(report.io, oracle.io, "seed {seed}, {config:?}");
            assert!(
                report.fault_stats.latency_spikes > 0,
                "seed {seed}, {config:?}: a 30% latency plan should spike at least once"
            );
        }
    }
}

#[test]
fn zero_budget_either_succeeds_identically_or_fails_typed() {
    // With no retries, a transient plan often fails — but it must fail
    // with a typed error and preserved partial state, never silently.
    for &seed in &SEEDS {
        let sim = Sim::new(seed).with_plan(scenario::disk_plan(seed));
        for config in config_matrix() {
            let report = sim.run(config);
            let oracle = sim.oracle(config);
            match &report.gave_up {
                None => assert_eq!(
                    report.answers, oracle.answers,
                    "seed {seed}, {config:?}: success must mean oracle answers"
                ),
                Some(reason) => {
                    assert!(
                        reason.contains("page"),
                        "seed {seed}, {config:?}: error must name the page: {reason}"
                    );
                    // Completed queries keep their exact oracle answers.
                    for (qi, done) in report.completed.iter().enumerate() {
                        if *done {
                            assert_eq!(
                                report.answers[qi], oracle.answers[qi],
                                "seed {seed}, {config:?}: completed query {qi} diverged"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn killed_disk_surfaces_unavailable_and_preserves_completed_queries() {
    for &seed in &SEEDS {
        let sim = Sim::new(seed)
            .with_plan(scenario::loss_plan(seed, 6))
            .with_retry_budget(8);
        for config in config_matrix() {
            let report = sim.run(config);
            let oracle = sim.oracle(config);
            let reason = report.gave_up.as_deref().unwrap_or_else(|| {
                panic!("seed {seed}, {config:?}: a dead disk cannot finish 20 pages")
            });
            assert!(
                reason.contains("unavailable"),
                "seed {seed}, {config:?}: wrong error kind: {reason}"
            );
            assert!(
                report.fault_stats.unavailable_reads > 0,
                "seed {seed}, {config:?}"
            );
            for (qi, done) in report.completed.iter().enumerate() {
                if *done {
                    assert_eq!(
                        report.answers[qi], oracle.answers[qi],
                        "seed {seed}, {config:?}: completed query {qi} diverged"
                    );
                }
            }
        }
    }
}

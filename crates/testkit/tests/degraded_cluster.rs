//! Degraded-cluster semantics: a killed server becomes an explicitly
//! marked missing partition — never a panic, never a hang, never a
//! silently complete answer set.

use mq_core::{FaultPolicy, LeaderPolicy, QueryEngine, QueryType};
use mq_datagen::uniform_vectors;
use mq_index::{LinearScan, SimilarityIndex};
use mq_metric::{Euclidean, ObjectId, Vector};
use mq_parallel::{Declustering, SharedNothingCluster};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use mq_testkit::scenario;

const SERVERS: usize = 3;

fn layout() -> PageLayout {
    PageLayout::new(256, 16)
}

fn build_cluster(objects: &[Vector]) -> SharedNothingCluster<Vector, Euclidean> {
    SharedNothingCluster::build(
        objects,
        SERVERS,
        Declustering::RoundRobin,
        Euclidean,
        0.1,
        |ds: &Dataset<Vector>| {
            let db = PagedDatabase::pack(ds, layout());
            let scan = LinearScan::new(db.page_count());
            (Box::new(scan) as Box<dyn SimilarityIndex<Vector>>, db)
        },
    )
    .with_fault_policy(FaultPolicy::new(2))
}

fn workload(seed: u64) -> (Vec<Vector>, Vec<(Vector, QueryType)>) {
    let objects = uniform_vectors(360, 4, seed);
    let queries = objects
        .iter()
        .step_by(47)
        .take(7)
        .enumerate()
        .map(|(i, v)| {
            let qtype = if i % 2 == 0 {
                QueryType::knn(5)
            } else {
                QueryType::range(0.25)
            };
            (v.clone(), qtype)
        })
        .collect();
    (objects, queries)
}

/// Reference: answers over the union of the *surviving* partitions,
/// computed by one plain engine over that union. Merging the reachable
/// servers must equal this exactly.
fn surviving_reference(
    objects: &[Vector],
    dead_server: usize,
    queries: &[(Vector, QueryType)],
) -> Vec<Vec<(ObjectId, f64)>> {
    let parts = Declustering::RoundRobin.partition(objects.len(), SERVERS);
    let mut global_ids: Vec<ObjectId> = Vec::new();
    for (si, part) in parts.iter().enumerate() {
        if si != dead_server {
            global_ids.extend(part.iter().copied());
        }
    }
    let survivors: Vec<Vector> = global_ids
        .iter()
        .map(|id| objects[id.0 as usize].clone())
        .collect();
    let ds = Dataset::new(survivors);
    let db = PagedDatabase::pack(&ds, layout());
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::with_buffer_pages(db, 4);
    let engine = QueryEngine::new(&disk, &scan, Euclidean);
    queries
        .iter()
        .map(|(q, t)| {
            engine
                .similarity_query(q, t)
                .as_slice()
                .iter()
                .map(|a| (global_ids[a.id.0 as usize], a.distance))
                .collect()
        })
        .collect()
}

#[test]
fn one_dead_server_is_marked_and_survivors_answer_exactly() {
    for seed in [1u64, 9, 17] {
        let (objects, queries) = workload(seed);
        let cluster = build_cluster(&objects);
        let dead = (seed as usize) % SERVERS;
        cluster.servers()[dead]
            .disk()
            .set_fault_plan(Some(scenario::loss_plan(seed, 0)));
        let degraded = cluster.multiple_query_degraded(&queries, true);
        assert!(!degraded.is_complete(), "seed {seed}");
        assert_eq!(degraded.missing_partitions, vec![dead], "seed {seed}");
        assert!(
            degraded.failure_reasons[0].contains("unavailable"),
            "seed {seed}: {}",
            degraded.failure_reasons[0]
        );
        let reference = surviving_reference(&objects, dead, &queries);
        for (qi, (got, want)) in degraded.answers.iter().zip(&reference).enumerate() {
            let got_pairs: Vec<(ObjectId, f64)> = got.iter().map(|a| (a.id, a.distance)).collect();
            assert_eq!(
                &got_pairs, want,
                "seed {seed}, query {qi}: degraded merge must equal a plain engine over the survivors"
            );
        }
    }
}

#[test]
fn transient_faults_with_budget_keep_the_cluster_complete() {
    let (objects, queries) = workload(5);
    let cluster = build_cluster(&objects);
    let healthy = cluster.multiple_query_degraded(&queries, true);
    assert!(healthy.is_complete());
    for server in cluster.servers() {
        server.disk().set_fault_plan(Some(scenario::disk_plan(5)));
    }
    let cluster = cluster.with_fault_policy(FaultPolicy::new(4));
    let faulty = cluster.multiple_query_degraded(&queries, true);
    assert!(faulty.is_complete(), "{:?}", faulty.failure_reasons);
    assert_eq!(faulty.answers, healthy.answers, "retries must be invisible");
}

#[test]
fn every_server_dead_yields_all_partitions_missing_not_a_hang() {
    let (objects, queries) = workload(3);
    let cluster = build_cluster(&objects);
    for (si, server) in cluster.servers().iter().enumerate() {
        server
            .disk()
            .set_fault_plan(Some(scenario::loss_plan(si as u64, 0)));
    }
    let degraded = cluster.multiple_query_degraded(&queries, true);
    assert_eq!(degraded.missing_partitions, vec![0, 1, 2]);
    assert_eq!(degraded.failure_reasons.len(), SERVERS);
    // With nothing reachable every query's merged answer list is empty.
    assert!(degraded.answers.iter().all(|a| a.is_empty()));
}

#[test]
fn degraded_mode_holds_across_engine_configs() {
    let (objects, queries) = workload(13);
    for threads in [1usize, 2] {
        for depth in [0usize, 2] {
            for leader in [LeaderPolicy::Fifo, LeaderPolicy::NearestChain] {
                let cluster = build_cluster(&objects)
                    .with_engine_threads(threads)
                    .with_prefetch_depth(depth)
                    .with_leader_policy(leader);
                cluster.servers()[1]
                    .disk()
                    .set_fault_plan(Some(scenario::loss_plan(13, 0)));
                let degraded = cluster.multiple_query_degraded(&queries, true);
                assert_eq!(
                    degraded.missing_partitions,
                    vec![1],
                    "threads {threads}, depth {depth}, {leader:?}"
                );
                let reference = surviving_reference(&objects, 1, &queries);
                for (got, want) in degraded.answers.iter().zip(&reference) {
                    let got_pairs: Vec<(ObjectId, f64)> =
                        got.iter().map(|a| (a.id, a.distance)).collect();
                    assert_eq!(
                        &got_pairs, want,
                        "threads {threads}, depth {depth}, {leader:?}"
                    );
                }
            }
        }
    }
}

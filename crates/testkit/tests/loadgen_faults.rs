//! Sustained load through the [`FlakyProxy`]: a closed-loop `mq-loadgen`
//! run crosses a proxy that cuts a connection mid-reply and stalls the
//! retry's first reply. The retrying client must keep every answer
//! oracle-correct (identical to a direct run against the same server),
//! the retry counter must be nonzero, the injected spike must show up in
//! the measured maximum latency, and the tail must stay bounded.

use mq_core::QueryType;
use mq_datagen::uniform_vectors;
use mq_index::LinearScan;
use mq_loadgen::{run, Mode, RequestPlan, RunOptions, WorkloadSpec};
use mq_server::{QueryServer, ServerConfig, SingleEngineBackend};
use mq_storage::{Dataset, PageLayout, PagedDatabase};
use mq_testkit::{ConnFault, FlakyProxy};
use std::time::Duration;

const REQUESTS: usize = 48;
const SPIKE: Duration = Duration::from_millis(150);

fn serve() -> QueryServer {
    let ds = Dataset::new(uniform_vectors(500, 3, 0xFAB));
    let db = PagedDatabase::pack(&ds, PageLayout::new(512, 16));
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.0, true);
    let config = ServerConfig::default()
        .with_max_batch(4)
        .with_max_wait(Duration::from_millis(2));
    QueryServer::bind("127.0.0.1:0", Box::new(backend), &config).expect("bind server")
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        // One session keeps the proxy's accept order deterministic:
        // before-scrape, the session's client, its reconnects, the
        // after-scrape — so the fault schedule lands where intended.
        mode: Mode::Closed {
            sessions: 1,
            think: Duration::ZERO,
        },
        requests: REQUESTS,
        qtype: QueryType::knn(5),
        pool: uniform_vectors(12, 3, 0xFAB),
        skew: 0.8,
        seed: 0xBAD_CAB1E,
    }
}

#[test]
fn load_through_flaky_proxy_stays_oracle_correct() {
    let server = serve();
    let plan = RequestPlan::materialize(&spec());
    let opts = RunOptions {
        capture_answers: true,
        ..RunOptions::default()
    };

    // Oracle: the same plan straight at the server.
    let direct = run(&plan, &server.local_addr().to_string(), &opts);
    assert_eq!(direct.ok as usize, REQUESTS, "direct run must be clean");
    assert_eq!(direct.errors, 0);

    // Fault schedule by accepted connection: #0 is the driver's
    // before-run scrape (clean), #1 is the session's first connection —
    // cut 40 reply bytes in, mid-frame — and #2 is the reconnect, whose
    // first reply stalls for the spike. Everything later is clean.
    let proxy = FlakyProxy::start_with_faults(
        server.local_addr(),
        vec![
            ConnFault::CLEAN,
            ConnFault::cut_after(40),
            ConnFault::spike(SPIKE),
        ],
    )
    .expect("start proxy");

    let proxied = run(&plan, &proxy.local_addr().to_string(), &opts);

    // The retrying client absorbed the faults: every request succeeded,
    // and at least one transport retry happened.
    assert_eq!(
        proxied.ok as usize, REQUESTS,
        "retries must recover every request ({} errors, {} timeouts)",
        proxied.errors, proxied.timeouts
    );
    assert_eq!(proxied.errors, 0);
    assert!(
        proxied.retries > 0,
        "the mid-reply cut must force at least one retry"
    );

    // Oracle correctness: answers are bit-identical to the direct run.
    let want = direct.answers.as_ref().expect("direct answers captured");
    let got = proxied.answers.as_ref().expect("proxied answers captured");
    assert_eq!(got, want, "proxied answers differ from the direct oracle");

    // The injected stall is visible in the tail: the stalled request's
    // latency is at least the spike, and the tail stays bounded (the
    // spike plus generous scheduling slack, not a timeout blowout).
    assert!(
        proxied.max_latency >= SPIKE.as_secs_f64(),
        "max latency {:.3}s misses the {:.3}s spike",
        proxied.max_latency,
        SPIKE.as_secs_f64()
    );
    assert!(
        proxied.p99 <= 5.0,
        "p99 {:.3}s blew past the bounded-tail ceiling",
        proxied.p99
    );
    // Fingerprints prove both runs offered the identical stream.
    assert_eq!(direct.fingerprint, proxied.fingerprint);
}

//! Panic-safety regression tests: a panic inside page evaluation (a
//! metric blowing up mid-batch) must not leak buffer pins or poison the
//! engine — the next batch must run normally and match the oracle.
//!
//! Historical bug: `multiple_query_step` unpinned the demand page and
//! dropped prefetch pins *after* page evaluation, so a panicking metric
//! (or worker-pool task) skipped both and leaked pins until the buffer
//! was fully pinned and every eviction overflowed. The step now holds
//! RAII guards; these tests pin the contract.

use mq_core::{LeaderPolicy, QueryEngine, QueryType};
use mq_datagen::uniform_vectors;
use mq_index::LinearScan;
use mq_metric::{Euclidean, Metric, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Delegates to Euclidean until the fuse burns down to zero, then panics
/// on that distance call. `u64::MAX` disarms it.
#[derive(Clone)]
struct BombMetric {
    fuse: Arc<AtomicU64>,
}

impl Metric<Vector> for BombMetric {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        let left = self.fuse.load(Ordering::SeqCst);
        if left != u64::MAX {
            if left == 0 {
                panic!("bomb metric detonated");
            }
            self.fuse.fetch_sub(1, Ordering::SeqCst);
        }
        Euclidean.distance(a, b)
    }

    fn name(&self) -> &str {
        "bomb(euclidean)"
    }
}

fn build_db() -> PagedDatabase<Vector> {
    let ds = Dataset::new(uniform_vectors(240, 4, 55));
    PagedDatabase::pack(&ds, PageLayout::new(256, 16))
}

fn queries() -> Vec<(Vector, QueryType)> {
    uniform_vectors(240, 4, 55)
        .into_iter()
        .step_by(31)
        .take(6)
        .map(|v| (v, QueryType::knn(4)))
        .collect()
}

#[test]
fn panicking_metric_leaks_no_pins_and_engine_recovers() {
    for threads in [1usize, 2] {
        for depth in [0usize, 2] {
            let db = build_db();
            let scan = LinearScan::new(db.page_count());
            let disk = SimulatedDisk::with_buffer_pages(db, 4);
            let fuse = Arc::new(AtomicU64::new(u64::MAX));
            let engine = QueryEngine::new(
                &disk,
                &scan,
                BombMetric {
                    fuse: Arc::clone(&fuse),
                },
            )
            .with_threads(threads)
            .with_prefetch_depth(depth)
            .with_leader_policy(LeaderPolicy::Fifo);

            // Oracle on an identical fresh setup with a plain metric.
            let oracle_db = build_db();
            let oracle_scan = LinearScan::new(oracle_db.page_count());
            let oracle_disk = SimulatedDisk::with_buffer_pages(oracle_db, 4);
            let oracle_engine = QueryEngine::new(&oracle_disk, &oracle_scan, Euclidean)
                .with_threads(threads)
                .with_prefetch_depth(depth)
                .with_leader_policy(LeaderPolicy::Fifo);
            let mut oracle_session = oracle_engine.new_session(queries());
            oracle_engine.run_to_completion(&mut oracle_session);
            let oracle_answers = oracle_session.into_answers();

            // Detonate mid-evaluation: the session is built (admission
            // computes the query-distance matrix), then the fuse arms so
            // a page evaluation inside step() panics.
            let mut session = engine.new_session(queries());
            fuse.store(40, Ordering::SeqCst);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.try_run_to_completion(&mut session)
            }));
            assert!(
                result.is_err(),
                "threads {threads}, depth {depth}: the bomb must go off"
            );
            assert_eq!(
                disk.pinned_pages(),
                0,
                "threads {threads}, depth {depth}: a panicking step leaked buffer pins"
            );

            // Disarm; a fresh session on the SAME engine and disk must
            // complete and match the oracle exactly.
            fuse.store(u64::MAX, Ordering::SeqCst);
            let mut session = engine.new_session(queries());
            engine
                .try_run_to_completion(&mut session)
                .expect("engine must be reusable after a panic");
            assert_eq!(
                disk.pinned_pages(),
                0,
                "threads {threads}, depth {depth}: pins must balance after a clean run"
            );
            assert_eq!(
                session.into_answers(),
                oracle_answers,
                "threads {threads}, depth {depth}: post-panic answers diverged"
            );
        }
    }
}

#[test]
fn repeated_detonations_never_exhaust_the_buffer() {
    // The historical leak only hurt after *several* panics (each leaked
    // one demand pin plus the prefetch window); detonate repeatedly and
    // verify pins stay balanced throughout.
    let db = build_db();
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::with_buffer_pages(db, 4);
    let fuse = Arc::new(AtomicU64::new(u64::MAX));
    let engine = QueryEngine::new(
        &disk,
        &scan,
        BombMetric {
            fuse: Arc::clone(&fuse),
        },
    )
    .with_threads(2)
    .with_prefetch_depth(2);
    for round in 0..6 {
        // Admission (the query-distance matrix) must not detonate; only
        // page evaluation inside step() should.
        fuse.store(u64::MAX, Ordering::SeqCst);
        let mut session = engine.new_session(queries());
        fuse.store(25 + round, Ordering::SeqCst);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.try_run_to_completion(&mut session)
        }));
        assert_eq!(disk.pinned_pages(), 0, "round {round} leaked pins");
    }
    fuse.store(u64::MAX, Ordering::SeqCst);
    let mut session = engine.new_session(queries());
    engine
        .try_run_to_completion(&mut session)
        .expect("buffer must still have unpinned frames to evict");
}

#![warn(missing_docs)]
//! # mq-testkit — deterministic fault injection and oracle equivalence
//!
//! The repository's failure-simulation harness. Every component of a run
//! is a pure function of one `u64` seed:
//!
//! * the **workload** — web-session objects ([`mq_datagen::sessions`])
//!   under edit distance, a mixed k-NN/range query batch;
//! * the **fault plan** — a [`mq_storage::FaultPlan`] whose per-read
//!   decisions (transient errors, torn pages, latency spikes, device
//!   death) hash the seed, the page id and a per-page attempt counter;
//! * the **retry schedule** — the engine's [`mq_core::FaultPolicy`] and,
//!   at the network layer, `mq_server::RetryingClient`'s seeded jitter.
//!
//! So a failing test is reproducible from its printed seed alone: rerun
//! with the same seed and every fault fires at the same read.
//!
//! The central invariant ([`Sim::assert_oracle_equivalence`]): whenever a
//! faulty run reports success, its answers **and** its avoidance counters
//! are bit-identical to a fault-free oracle run — across engine threads
//! {1, 2, 4} × prefetch depths {0, 2} × both leader policies. Failed read
//! attempts only ever touch [`mq_storage::FaultStats`]; they never leak
//! into I/O counters, the buffer, or the answers.
//!
//! The durable backend extends the invariant
//! ([`Sim::assert_backend_equivalence`]): a `mq_store::FilePageStore`
//! over the same workload must produce **fully** bit-identical reports —
//! including every I/O and fault counter — for every matrix
//! configuration, and recover from torn WAL tails and
//! kill-after-N-appends crashes to exactly the state a clean twin
//! reaches.
//!
//! Layers:
//!
//! * [`scenario`] — canonical fault-plan presets (disk, latency-only,
//!   device-loss);
//! * [`sim`] — [`Sim`]: workload + plan + oracle comparison over the
//!   engine-configuration matrix;
//! * [`proxy`] — [`FlakyProxy`]: a TCP forwarder injecting reply-path
//!   faults ([`ConnFault`]: byte-budgeted mid-frame cuts, one-time
//!   latency spikes), for exercising the retrying network client and the
//!   `mq-loadgen` latency harness under adversity.

pub mod proxy;
pub mod scenario;
pub mod sim;

pub use proxy::{ConnFault, FlakyProxy};
pub use sim::{config_matrix, LengthBudgetPrescreen, Sim, SimConfig, SimReport};

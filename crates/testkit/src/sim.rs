//! The [`Sim`] runner: one seed-determined workload, an optional fault
//! plan, and a fault-free oracle to compare against.
//!
//! A `Sim` owns nothing but numbers; every [`run`](Sim::run) rebuilds the
//! dataset, disk and engine from the seed, so runs are independent and a
//! faulty run and its oracle see byte-identical inputs.

use mq_core::{
    Answer, AvoidanceStats, CandidatePrescreen, FaultPolicy, LeaderPolicy, QueryEngine, QueryType,
};
use mq_datagen::sessions::{web_sessions, SessionConfig};
use mq_index::LinearScan;
use mq_metric::{EditDistance, ObjectId, Symbols};
use mq_storage::{
    Dataset, FaultPlan, FaultStats, IoStats, PageLayout, PageStore, PagedDatabase, SimulatedDisk,
    SymbolsCodec,
};
use mq_store::{FilePageStore, SEGMENT_FILE};
use std::path::Path;

/// One engine configuration of the equivalence matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Page-evaluation threads.
    pub threads: usize,
    /// Pipelined prefetch depth.
    pub prefetch_depth: usize,
    /// Leader scheduling policy.
    pub leader: LeaderPolicy,
}

/// The full configuration matrix the acceptance criteria quantify over:
/// threads {1, 2, 4} × prefetch depths {0, 2} × both leader schedulers.
pub fn config_matrix() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for &threads in &[1usize, 2, 4] {
        for &prefetch_depth in &[0usize, 2] {
            for &leader in &[LeaderPolicy::Fifo, LeaderPolicy::NearestChain] {
                configs.push(SimConfig {
                    threads,
                    prefetch_depth,
                    leader,
                });
            }
        }
    }
    configs
}

/// The outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The seed that determined workload and faults — print this to
    /// reproduce the run exactly.
    pub seed: u64,
    /// Per-query answers. Complete when `gave_up` is `None`; otherwise
    /// the buffered partial answers the failed session preserved
    /// (Definition 4's incremental contract).
    pub answers: Vec<Vec<Answer>>,
    /// Which queries completed before the run ended.
    pub completed: Vec<bool>,
    /// §5.2 avoidance counters of the run.
    pub avoidance: AvoidanceStats,
    /// Disk counters of the run (fault-free attempts only).
    pub io: IoStats,
    /// Injected-fault counters of the run.
    pub fault_stats: FaultStats,
    /// `Some(error)` when the engine surfaced a fault past its retry
    /// budget; the session's partial state is still in `answers`.
    pub gave_up: Option<String>,
}

/// A deterministic lossy prescreen for the testkit's symbol workload: it
/// admits the `budget` stored sessions whose *length* is closest to the
/// query's (ties broken by id). `|len(q) − len(s)|` lower-bounds unit-cost
/// edit distance, so this is a genuine metric prescreen — cheap,
/// query-dependent, and lossy once `budget < N` — driving the engine's
/// candidate-restriction machinery exactly as the vector tiers in
/// `mq-approx` do, but over the edit-distance workload the fault plans
/// target.
pub struct LengthBudgetPrescreen {
    lengths: Vec<(ObjectId, usize)>,
    budget: usize,
}

impl LengthBudgetPrescreen {
    /// Builds the prescreen over every live record of `db`.
    pub fn new(db: &PagedDatabase<Symbols>, budget: usize) -> Self {
        let mut lengths: Vec<(ObjectId, usize)> = db
            .page_ids()
            .flat_map(|pid| db.page(pid).records().iter().map(|(id, s)| (*id, s.len())))
            .collect();
        lengths.sort_unstable_by_key(|&(id, _)| id);
        Self { lengths, budget }
    }
}

impl CandidatePrescreen<Symbols> for LengthBudgetPrescreen {
    fn candidates(&self, query: &Symbols) -> Vec<ObjectId> {
        let target = query.len();
        let mut ranked: Vec<(usize, ObjectId)> = self
            .lengths
            .iter()
            .map(|&(id, len)| (len.abs_diff(target), id))
            .collect();
        ranked.sort_unstable();
        ranked.truncate(self.budget);
        ranked.into_iter().map(|(_, id)| id).collect()
    }

    fn name(&self) -> &str {
        "len-budget"
    }
}

/// A deterministic simulation: seed-derived workload, optional fault
/// plan, engine retry budget, optional approximate candidate tier.
#[derive(Clone, Copy, Debug)]
pub struct Sim {
    seed: u64,
    objects: usize,
    queries: usize,
    plan: Option<FaultPlan>,
    retry_budget: u32,
    prescreen_budget: Option<usize>,
}

impl Sim {
    /// A simulation of `seed` with the default workload size (160
    /// sessions, 8 queries) and no faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            objects: 160,
            queries: 8,
            plan: None,
            retry_budget: 0,
            prescreen_budget: None,
        }
    }

    /// Installs a fault plan (see [`crate::scenario`] for presets).
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches the approximate candidate tier: a
    /// [`LengthBudgetPrescreen`] admitting `budget` candidates per query.
    /// The oracle of a prescreened sim carries the same prescreen, so
    /// [`assert_oracle_equivalence`](Self::assert_oracle_equivalence)
    /// checks that fault injection and the tier compose: a faulty
    /// prescreened run that succeeds is bit-identical to the fault-free
    /// prescreened run. A budget of `usize::MAX` (or ≥ the object count)
    /// admits everything and must be bit-identical to no tier at all.
    pub fn with_prescreen_budget(mut self, budget: usize) -> Self {
        self.prescreen_budget = Some(budget);
        self
    }

    /// Sets the engine's transient-fault retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Sets the number of stored session objects.
    pub fn with_objects(mut self, objects: usize) -> Self {
        self.objects = objects;
        self
    }

    /// Sets the number of queries in the batch.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    /// The seed of this simulation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed-derived workload: the stored sessions and a mixed
    /// k-NN/range query batch drawn from them.
    pub fn workload(&self) -> (Vec<Symbols>, Vec<(Symbols, QueryType)>) {
        let (sessions, _trails) = web_sessions(self.objects, SessionConfig::default(), self.seed);
        let stride = (self.objects / self.queries.max(1)).max(1);
        let queries = sessions
            .iter()
            .step_by(stride)
            .take(self.queries)
            .enumerate()
            .map(|(i, s)| {
                // Alternate query types so every run exercises both the
                // adapting k-NN distance and the fixed range predicate.
                let qtype = if i % 2 == 0 {
                    QueryType::knn(5)
                } else {
                    QueryType::range(6.0)
                };
                (s.clone(), qtype)
            })
            .collect();
        (sessions, queries)
    }

    /// The seed-derived stored database, paged exactly as every run pages
    /// it.
    pub fn database(&self) -> PagedDatabase<Symbols> {
        let (sessions, _) = self.workload();
        PagedDatabase::pack(&Dataset::new(sessions), PageLayout::new(256, 8))
    }

    /// Runs the simulation under `config` on the in-memory backend,
    /// faults included.
    pub fn run(&self, config: SimConfig) -> SimReport {
        let disk = SimulatedDisk::with_buffer_pages(self.database(), 4);
        self.run_on(config, &disk)
    }

    /// [`run`](Self::run) against the durable file backend: a
    /// [`FilePageStore`] in `dir`, created from the workload on first use
    /// and recovered from segment + WAL afterwards. The report must be
    /// bit-identical to the in-memory backend's
    /// ([`assert_backend_equivalence`](Self::assert_backend_equivalence)).
    pub fn run_file(&self, config: SimConfig, dir: &Path) -> SimReport {
        self.run_on(config, &self.open_or_create_store(dir))
    }

    /// Opens the durable store in `dir`, creating it from the workload
    /// database when no segment exists yet. The buffer holds 4 pages,
    /// like the in-memory backend's.
    pub fn open_or_create_store(&self, dir: &Path) -> FilePageStore<Symbols, SymbolsCodec> {
        if dir.join(SEGMENT_FILE).exists() {
            FilePageStore::open(dir, SymbolsCodec, 4).expect("reopen durable store")
        } else {
            FilePageStore::create(dir, self.database(), SymbolsCodec, 4)
                .expect("create durable store")
        }
    }

    /// Runs the workload's query batch against an already-built backend.
    fn run_on(&self, config: SimConfig, disk: &dyn PageStore<Symbols>) -> SimReport {
        let (_, queries) = self.workload();
        let scan = LinearScan::new(disk.database().page_count());
        let prescreen = self
            .prescreen_budget
            .map(|budget| LengthBudgetPrescreen::new(disk.database(), budget));
        disk.set_fault_plan(self.plan);
        let mut engine = QueryEngine::new(disk, &scan, EditDistance)
            .with_threads(config.threads)
            .with_prefetch_depth(config.prefetch_depth)
            .with_leader_policy(config.leader)
            .with_fault_policy(FaultPolicy::new(self.retry_budget));
        if let Some(prescreen) = &prescreen {
            engine = engine.with_prescreen(prescreen);
        }
        let mut session = engine.new_session(queries);
        let gave_up = engine
            .try_run_to_completion(&mut session)
            .err()
            .map(|e| e.to_string());
        let completed = (0..session.query_count())
            .map(|i| session.is_complete(i))
            .collect();
        let avoidance = session.avoidance_stats();
        SimReport {
            seed: self.seed,
            completed,
            avoidance,
            io: disk.stats(),
            fault_stats: disk.fault_stats(),
            gave_up,
            answers: session.into_answers(),
        }
    }

    /// Runs the fault-free oracle of this simulation under `config`.
    pub fn oracle(&self, config: SimConfig) -> SimReport {
        Sim {
            plan: None,
            ..*self
        }
        .run(config)
    }

    /// Asserts the testkit's central invariant over the whole
    /// [`config_matrix`]: whenever the faulty run succeeds, its answers
    /// and avoidance counters are bit-identical to the oracle's. Without
    /// prefetch the full I/O counters must match too (failed attempts
    /// leave no trace); with prefetch only `logical_reads` is required to
    /// match, because an absorbed prefetch fault legitimately turns a
    /// prefetched hit into a demand read.
    ///
    /// Panics name the seed and configuration, which reproduce the run.
    pub fn assert_oracle_equivalence(&self) {
        for config in config_matrix() {
            let run = self.run(config);
            let oracle = self.oracle(config);
            assert!(
                oracle.gave_up.is_none(),
                "seed {}: oracle must never fail, got {:?}",
                self.seed,
                oracle.gave_up
            );
            if let Some(reason) = &run.gave_up {
                // The policy reported failure — that is a legitimate
                // outcome; equivalence is only promised on success.
                assert!(
                    run.fault_stats.total_failures() > 0,
                    "seed {}, {config:?}: gave up ({reason}) without any injected fault",
                    self.seed
                );
                continue;
            }
            assert_eq!(
                run.answers, oracle.answers,
                "seed {}, {config:?}: answers diverged from the oracle",
                self.seed
            );
            assert_eq!(
                run.avoidance, oracle.avoidance,
                "seed {}, {config:?}: avoidance counters diverged from the oracle",
                self.seed
            );
            assert_eq!(
                run.io.logical_reads, oracle.io.logical_reads,
                "seed {}, {config:?}: logical reads diverged from the oracle",
                self.seed
            );
            if config.prefetch_depth == 0 {
                assert_eq!(
                    run.io, oracle.io,
                    "seed {}, {config:?}: I/O counters diverged without prefetch",
                    self.seed
                );
            }
        }
    }

    /// Asserts the durable backend's half of the central invariant over
    /// the whole [`config_matrix`]: the file-backed store in `dir` must
    /// produce a **fully** bit-identical [`SimReport`] — answers,
    /// avoidance counters, every I/O counter, every fault counter — for
    /// every configuration, faults included. (Unlike faulty-vs-oracle
    /// comparisons, the two backends see the same fault plan, so nothing
    /// is exempted.)
    pub fn assert_backend_equivalence(&self, dir: &Path) {
        for config in config_matrix() {
            let mem = self.run(config);
            let file = self.run_file(config, dir);
            assert_eq!(
                mem.answers, file.answers,
                "seed {}, {config:?}: file-backend answers diverged",
                self.seed
            );
            assert_eq!(
                mem.completed, file.completed,
                "seed {}, {config:?}: file-backend completion flags diverged",
                self.seed
            );
            assert_eq!(
                mem.avoidance, file.avoidance,
                "seed {}, {config:?}: file-backend avoidance counters diverged",
                self.seed
            );
            assert_eq!(
                mem.io, file.io,
                "seed {}, {config:?}: file-backend I/O counters diverged",
                self.seed
            );
            assert_eq!(
                mem.fault_stats, file.fault_stats,
                "seed {}, {config:?}: file-backend fault counters diverged",
                self.seed
            );
            assert_eq!(
                mem.gave_up, file.gave_up,
                "seed {}, {config:?}: file-backend failure outcome diverged",
                self.seed
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_seed_sensitive() {
        let (a_obj, a_q) = Sim::new(3).workload();
        let (b_obj, b_q) = Sim::new(3).workload();
        assert_eq!(a_obj, b_obj);
        assert_eq!(a_q.len(), b_q.len());
        let (c_obj, _) = Sim::new(4).workload();
        assert_ne!(a_obj, c_obj);
    }

    #[test]
    fn matrix_covers_threads_depths_and_leaders() {
        let m = config_matrix();
        assert_eq!(m.len(), 12);
        assert!(m.iter().any(|c| c.threads == 4
            && c.prefetch_depth == 2
            && c.leader == LeaderPolicy::NearestChain));
        assert!(m
            .iter()
            .any(|c| c.threads == 1 && c.prefetch_depth == 0 && c.leader == LeaderPolicy::Fifo));
    }

    #[test]
    fn fault_free_run_completes_every_query() {
        let report = Sim::new(11).run(SimConfig {
            threads: 1,
            prefetch_depth: 0,
            leader: LeaderPolicy::Fifo,
        });
        assert!(report.gave_up.is_none());
        assert!(report.completed.iter().all(|&c| c));
        assert_eq!(report.answers.len(), 8);
        assert_eq!(report.fault_stats, FaultStats::default());
    }
}

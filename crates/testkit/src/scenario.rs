//! Canonical fault-plan presets.
//!
//! Each preset derives every probability roll from the given seed, so a
//! scenario is fully described by `(preset name, seed)` — which is exactly
//! what a failing test prints.

use mq_storage::FaultPlan;

/// A lossy disk: transient read errors, torn (checksum-mismatching) pages
/// and latency spikes, each page limited to 2 injected faults so a
/// bounded retry budget always gets through. The workhorse preset for
/// oracle-equivalence runs.
pub fn disk_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_transient(0.08)
        .with_corrupt(0.04)
        .with_latency(0.05)
        .with_max_faults_per_page(2)
}

/// Latency spikes only: reads always succeed, some just count as slow.
/// Answers and every I/O counter must match the oracle exactly even with
/// a zero retry budget.
pub fn latency_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_latency(0.3)
}

/// Device loss: the disk dies permanently after `after` successful
/// physical reads, and every later read — buffer hits included — fails
/// with [`mq_storage::DiskError::Unavailable`]. No retry budget recovers
/// from this; it must surface as a typed error or an explicitly degraded
/// result.
pub fn loss_plan(seed: u64, after: u64) -> FaultPlan {
    FaultPlan::new(seed).with_kill_after(after)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic_in_the_seed() {
        assert_eq!(disk_plan(7), disk_plan(7));
        assert_eq!(latency_plan(7), latency_plan(7));
        assert_eq!(loss_plan(7, 3), loss_plan(7, 3));
        assert_ne!(disk_plan(7), disk_plan(8));
    }
}

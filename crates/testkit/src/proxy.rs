//! [`FlakyProxy`]: a TCP forwarder that injects reply-path faults —
//! byte-budgeted connection cuts and one-time latency spikes — for the
//! retrying client.
//!
//! The proxy forwards client bytes upstream untouched and counts the
//! bytes flowing back. A connection whose per-connection budget runs out
//! is shut down in both directions mid-frame, which a protocol client
//! observes as an I/O error exactly like a crashed or partitioned server.
//! A connection with a reply delay stalls once, before its first reply
//! byte is relayed — a deterministic stand-in for a GC pause or a
//! routing hiccup that a latency harness must see in its tail. Faults
//! are assigned per accepted connection from a fixed schedule, so a
//! test's failure pattern is a plain data value, not a race.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Reply-path faults of one proxied connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnFault {
    /// Bytes the connection may receive from the upstream before it is
    /// cut mid-frame; `None` is unlimited.
    pub reply_budget: Option<usize>,
    /// One-time stall injected before the first reply byte is relayed.
    pub reply_delay: Option<Duration>,
}

impl ConnFault {
    /// No faults: the connection behaves like a plain forwarder.
    pub const CLEAN: ConnFault = ConnFault {
        reply_budget: None,
        reply_delay: None,
    };

    /// Cut the connection after `bytes` reply bytes.
    pub fn cut_after(bytes: usize) -> Self {
        Self {
            reply_budget: Some(bytes),
            ..Self::CLEAN
        }
    }

    /// Stall the first reply by `delay`.
    pub fn spike(delay: Duration) -> Self {
        Self {
            reply_delay: Some(delay),
            ..Self::CLEAN
        }
    }
}

/// A byte-budgeted TCP proxy in front of one upstream address.
pub struct FlakyProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FlakyProxy {
    /// Starts a proxy to `upstream` on an ephemeral loopback port.
    ///
    /// `budgets[i]` bounds the bytes the `i`-th accepted connection may
    /// receive *from* the upstream before it is cut; connections beyond
    /// the schedule (and `None` entries) are unlimited.
    pub fn start(upstream: SocketAddr, budgets: Vec<Option<usize>>) -> std::io::Result<Self> {
        Self::start_with_faults(
            upstream,
            budgets
                .into_iter()
                .map(|reply_budget| ConnFault {
                    reply_budget,
                    ..ConnFault::CLEAN
                })
                .collect(),
        )
    }

    /// [`start`](Self::start) with the full fault vocabulary: the `i`-th
    /// accepted connection gets `faults[i]` (cut budget and/or reply
    /// stall); connections beyond the schedule are clean.
    pub fn start_with_faults(
        upstream: SocketAddr,
        faults: Vec<ConnFault>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("mq-flaky-accept".into())
            .spawn(move || {
                let connections = AtomicUsize::new(0);
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let client = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let i = connections.fetch_add(1, Ordering::SeqCst);
                    let fault = faults.get(i).copied().unwrap_or(ConnFault::CLEAN);
                    let _ = std::thread::Builder::new()
                        .name(format!("mq-flaky-conn-{i}"))
                        .spawn(move || forward(client, upstream, fault));
                }
            })?;
        Ok(Self {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Forwards one client connection, applying its reply-path faults.
fn forward(client: TcpStream, upstream: SocketAddr, fault: ConnFault) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    // Client → upstream: unrestricted (requests always get through; it is
    // the *reply* path a budget severs, modelling a server lost mid-answer).
    let up = std::thread::spawn(move || copy_until(client_rx, server, ConnFault::CLEAN));
    copy_until(server_rx, client, fault);
    let _ = up.join();
}

/// Copies bytes until EOF, an error, or the reply budget runs out; the
/// first relayed chunk is stalled by the fault's reply delay. Shuts the
/// destination down at the end so both halves of the proxied connection
/// die.
fn copy_until(mut from: TcpStream, mut to: TcpStream, fault: ConnFault) {
    let mut remaining = fault.reply_budget;
    let mut delay = fault.reply_delay;
    let mut buf = [0u8; 4096];
    loop {
        let cap = match remaining {
            Some(0) => break,
            Some(r) => r.min(buf.len()),
            None => buf.len(),
        };
        let n = match from.read(&mut buf[..cap]) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if let Some(pause) = delay.take() {
            std::thread::sleep(pause);
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        if let Some(r) = remaining.as_mut() {
            *r -= n;
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// A trivial upstream echoing everything it receives.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("echo addr");
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = stream.try_clone().expect("clone");
                    let mut writer = stream;
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = reader.read(&mut buf) {
                        if n == 0 || writer.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn unbudgeted_connections_pass_through() {
        let proxy = FlakyProxy::start(echo_server(), vec![]).expect("proxy");
        let mut conn = TcpStream::connect(proxy.local_addr()).expect("connect");
        conn.write_all(b"hello through the proxy").expect("write");
        let mut got = [0u8; 23];
        conn.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"hello through the proxy");
    }

    #[test]
    fn budget_cuts_the_connection_and_later_ones_survive() {
        let upstream = echo_server();
        let proxy = FlakyProxy::start(upstream, vec![Some(4)]).expect("proxy");
        let mut first = TcpStream::connect(proxy.local_addr()).expect("connect");
        first.write_all(b"0123456789").expect("write");
        let mut buf = Vec::new();
        // At most 4 bytes arrive, then EOF — never the full reply.
        first.read_to_end(&mut buf).expect("cut reads as EOF");
        assert!(buf.len() <= 4, "got {} bytes past the budget", buf.len());
        // The second connection has no budget and works.
        let mut second = TcpStream::connect(proxy.local_addr()).expect("connect");
        second.write_all(b"again").expect("write");
        let mut got = [0u8; 5];
        second.read_exact(&mut got).expect("read");
        assert_eq!(&got, b"again");
    }
}

//! Similarity self-join: all pairs within distance ε.
//!
//! The ε-self-join `{(a, b) : a < b, dist(a, b) ≤ ε}` is the batch
//! formulation of "run one range query per database object" — the extreme
//! instance of the paper's multiple similarity query where *every* object
//! is a query object. It underlies DBSCAN's density estimates, duplicate
//! detection, and the neighborhood counting of association-rule mining.
//!
//! With single queries, the join costs `n` scans; with multiple queries in
//! blocks of `m`, the paper's machinery collapses this to `n/m` scans (or
//! shared index-page reads) with triangle-inequality avoidance across the
//! block.

use mq_core::{QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;

/// One join result pair, normalized to `first < second`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinPair {
    /// The smaller object id.
    pub first: ObjectId,
    /// The larger object id.
    pub second: ObjectId,
    /// Their distance (≤ ε).
    pub distance: f64,
}

/// Computes the ε-self-join of the engine's database with multiple range
/// queries in blocks of `batch_size`. Pairs are reported once
/// (`first < second`), sorted by `(first, second)`.
pub fn similarity_self_join<O, M>(
    engine: &QueryEngine<'_, O, M>,
    eps: f64,
    batch_size: usize,
) -> Vec<JoinPair>
where
    O: StorageObject,
    M: Metric<O>,
{
    assert!(eps >= 0.0, "epsilon must be non-negative");
    assert!(batch_size > 0, "batch size must be positive");
    let n = engine.disk().database().object_count();
    let qtype = QueryType::range(eps);
    let mut pairs = Vec::new();
    let ids: Vec<ObjectId> = (0..n as u32).map(ObjectId).collect();
    for block in ids.chunks(batch_size) {
        let queries: Vec<(O, QueryType)> = block
            .iter()
            .map(|&id| (engine.disk().database().object(id).clone(), qtype))
            .collect();
        let answers = engine.multiple_similarity_query(queries);
        for (&qid, list) in block.iter().zip(&answers) {
            for a in list {
                if a.id > qid {
                    pairs.push(JoinPair {
                        first: qid,
                        second: a.id,
                        distance: a.distance,
                    });
                }
            }
        }
    }
    pairs.sort_by(|x, y| x.first.cmp(&y.first).then(x.second.cmp(&y.second)));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::{LinearScan, XTree, XTreeConfig};
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    fn points(n: usize, seed: u64) -> Vec<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Vector::new(vec![(next() * 30.0) as f32, (next() * 30.0) as f32]))
            .collect()
    }

    fn brute_join(data: &[Vector], eps: f64) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                if Euclidean.distance(&data[i], &data[j]) <= eps {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn join_matches_brute_force() {
        let data = points(150, 3);
        let ds = Dataset::new(data.clone());
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::new(db, 0.1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let eps = 2.0;
        let pairs = similarity_self_join(&engine, eps, 16);
        let got: Vec<(u32, u32)> = pairs.iter().map(|p| (p.first.0, p.second.0)).collect();
        assert_eq!(got, brute_join(&data, eps));
        // Distances are correct and within eps.
        for p in &pairs {
            let d = Euclidean.distance(&data[p.first.index()], &data[p.second.index()]);
            assert!((p.distance - d).abs() < 1e-9);
            assert!(p.distance <= eps);
        }
    }

    #[test]
    fn join_is_batch_size_invariant() {
        let data = points(120, 5);
        let ds = Dataset::new(data.clone());
        let cfg = XTreeConfig {
            layout: PageLayout::new(256, 16),
            ..Default::default()
        };
        let (tree, db) = XTree::bulk_load(&ds, cfg);
        let disk = SimulatedDisk::new(db, 0.1);
        let engine = QueryEngine::new(&disk, &tree, Euclidean);
        let a = similarity_self_join(&engine, 1.5, 1);
        let b = similarity_self_join(&engine, 1.5, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn batching_reduces_join_io() {
        let data = points(300, 7);
        let ds = Dataset::new(data);
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::new(db, 0.1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);

        disk.cold_restart();
        let _ = similarity_self_join(&engine, 1.0, 1);
        let single_io = disk.stats().logical_reads;

        disk.cold_restart();
        let _ = similarity_self_join(&engine, 1.0, 60);
        let multi_io = disk.stats().logical_reads;
        assert!(multi_io * 50 <= single_io, "{multi_io} vs {single_io}");
    }

    #[test]
    fn zero_eps_joins_only_duplicates() {
        let mut data = points(50, 9);
        data.push(data[7].clone()); // a duplicate
        let ds = Dataset::new(data);
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::new(db, 0.1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let pairs = similarity_self_join(&engine, 0.0, 8);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].first.0, pairs[0].second.0), (7, 50));
        assert_eq!(pairs[0].distance, 0.0);
    }
}

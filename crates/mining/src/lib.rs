#![warn(missing_docs)]
//! # mq-mining — iterative neighborhood exploration (§3)
//!
//! Many data mining algorithms *"start from a set of specified database
//! objects and iteratively consider the neighborhood of the visited
//! objects"*. The paper captures them in the **ExploreNeighborhoods**
//! scheme (Fig. 2) and shows a purely syntactic transformation into
//! **ExploreNeighborhoodsMultiple** (Fig. 3) that replaces single
//! similarity queries by multiple similarity queries — same results, less
//! I/O and CPU.
//!
//! * [`explore`] — the generic scheme, both drivers
//!   ([`explore::explore_neighborhoods`] /
//!   [`explore::explore_neighborhoods_multiple`]), parameterized by a
//!   [`explore::NeighborhoodTask`] (the paper's `condition_check`,
//!   `choose`, `proc_1`, `proc_2`, `filter` hooks).
//! * [`dbscan`] — density-based clustering (paper ref. \[7\]) in single- and
//!   multiple-query mode, producing identical clusterings.
//! * [`classify`] — simultaneous k-NN classification of a set of objects
//!   (the §6 astronomy workload).
//! * [`explore_users`] — the §6 manual-data-exploration workload: `c`
//!   concurrent users, `m = c × k` dependent queries per round.
//! * [`proximity`] — top-k aggregate proximity to a cluster plus
//!   common-feature extraction (paper ref. \[17\]).
//! * [`trend`] — spatial trend detection along neighborhood paths via
//!   linear regression (paper ref. \[6\]).
//! * [`assoc`] — neighborhood-based association rules between object types
//!   (paper ref. \[15\]).

pub mod assoc;
pub mod classify;
pub mod dbscan;
pub mod explore;
pub mod explore_users;
pub mod join;
pub mod proximity;
pub mod trend;

pub use classify::{classification_accuracy, classify_batch, classify_single};
pub use dbscan::{Dbscan, DbscanResult, Label};
pub use explore::{explore_neighborhoods, explore_neighborhoods_multiple, NeighborhoodTask};
pub use explore_users::{exploration_trace, replay_multiple, replay_single};
pub use join::{similarity_self_join, JoinPair};

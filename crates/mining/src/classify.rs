//! Simultaneous k-NN classification of a set of objects (§3.2, §6).
//!
//! The astronomy use case: all stars newly observed during the night are
//! classified the next day by issuing one k-NN query each and taking the
//! majority class of the neighbors — an `ExploreNeighborhoods` instance
//! with an empty `filter` (no new query objects are generated), i.e. the
//! *independent*-queries extreme of the paper's evaluation.

use mq_core::{Answer, QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;

/// Majority class among the neighbors, excluding the query object itself
/// (objects being classified already sit in the database in our setup, so
/// their self-match at distance 0 must not vote). Ties break toward the
/// smaller class id for determinism.
fn majority_class(query: ObjectId, answers: &[Answer], labels: &[usize], k: usize) -> usize {
    let mut votes: Vec<(usize, usize)> = Vec::new(); // (class, count)
    for a in answers.iter().filter(|a| a.id != query).take(k) {
        let class = labels[a.id.index()];
        match votes.iter_mut().find(|(c, _)| *c == class) {
            Some((_, n)) => *n += 1,
            None => votes.push((class, 1)),
        }
    }
    votes
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(c, _)| c)
        .unwrap_or(0)
}

/// Classifies `query_ids` with single k-NN queries (the baseline).
pub fn classify_single<O, M>(
    engine: &QueryEngine<'_, O, M>,
    labels: &[usize],
    query_ids: &[ObjectId],
    k: usize,
) -> Vec<usize>
where
    O: StorageObject,
    M: Metric<O>,
{
    // k + 1 neighbors so the self-match can be discarded.
    let qtype = QueryType::knn(k + 1);
    query_ids
        .iter()
        .map(|&id| {
            let obj = engine.disk().database().object(id).clone();
            let answers = engine.similarity_query(&obj, &qtype);
            majority_class(id, answers.as_slice(), labels, k)
        })
        .collect()
}

/// Classifies `query_ids` with multiple k-NN queries in blocks of
/// `batch_size` — the paper's simultaneous classification.
pub fn classify_batch<O, M>(
    engine: &QueryEngine<'_, O, M>,
    labels: &[usize],
    query_ids: &[ObjectId],
    k: usize,
    batch_size: usize,
) -> Vec<usize>
where
    O: StorageObject,
    M: Metric<O>,
{
    assert!(batch_size > 0, "batch size must be positive");
    let qtype = QueryType::knn(k + 1);
    let mut out = Vec::with_capacity(query_ids.len());
    for block in query_ids.chunks(batch_size) {
        let queries: Vec<(O, QueryType)> = block
            .iter()
            .map(|&id| (engine.disk().database().object(id).clone(), qtype))
            .collect();
        let answers = engine.multiple_similarity_query(queries);
        for (&id, a) in block.iter().zip(&answers) {
            out.push(majority_class(id, a, labels, k));
        }
    }
    out
}

/// Fraction of predictions matching the ground-truth labels.
pub fn classification_accuracy(
    predicted: &[usize],
    query_ids: &[ObjectId],
    labels: &[usize],
) -> f64 {
    assert_eq!(
        predicted.len(),
        query_ids.len(),
        "prediction/query length mismatch"
    );
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted
        .iter()
        .zip(query_ids)
        .filter(|(p, id)| **p == labels[id.index()])
        .count();
    hits as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    /// Two well-separated class blobs.
    fn labeled_blobs() -> (Dataset<Vector>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            pts.push(Vector::new(vec![
                (i % 5) as f32 * 0.3,
                (i / 5) as f32 * 0.3,
            ]));
            labels.push(0);
        }
        for i in 0..20 {
            pts.push(Vector::new(vec![
                50.0 + (i % 5) as f32 * 0.3,
                (i / 5) as f32 * 0.3,
            ]));
            labels.push(1);
        }
        (Dataset::new(pts), labels)
    }

    fn make_engine(ds: &Dataset<Vector>) -> (PagedDatabase<Vector>, usize) {
        let db = PagedDatabase::pack(ds, PageLayout::new(160, 16));
        let pages = db.page_count();
        (db, pages)
    }

    #[test]
    fn perfect_accuracy_on_separated_blobs() {
        let (ds, labels) = labeled_blobs();
        let (db, pages) = make_engine(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let queries: Vec<ObjectId> = (0..40u32).step_by(3).map(ObjectId).collect();
        let predicted = classify_single(&engine, &labels, &queries, 5);
        assert!((classification_accuracy(&predicted, &queries, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_and_single_agree() {
        let (ds, labels) = labeled_blobs();
        let (db, pages) = make_engine(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let queries: Vec<ObjectId> = (0..40u32).map(ObjectId).collect();
        let single = classify_single(&engine, &labels, &queries, 3);
        for batch in [1, 7, 40] {
            let multi = classify_batch(&engine, &labels, &queries, 3, batch);
            assert_eq!(multi, single, "batch size {batch}");
        }
    }

    #[test]
    fn batching_reduces_io() {
        let (ds, labels) = labeled_blobs();
        let (db, pages) = make_engine(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let queries: Vec<ObjectId> = (0..40u32).map(ObjectId).collect();

        disk.reset_stats();
        let _ = classify_single(&engine, &labels, &queries, 3);
        let single_io = disk.stats().logical_reads;

        disk.reset_stats();
        let _ = classify_batch(&engine, &labels, &queries, 3, 40);
        let multi_io = disk.stats().logical_reads;

        assert_eq!(multi_io * 40, single_io, "one scan instead of 40");
    }

    #[test]
    fn self_match_does_not_vote() {
        // A single alien object inside a foreign blob must be out-voted by
        // its neighbors even though it is its own nearest neighbor.
        let mut pts: Vec<Vector> = (0..10).map(|i| Vector::new(vec![i as f32 * 0.1])).collect();
        let mut labels = vec![0usize; 10];
        pts.push(Vector::new(vec![0.45]));
        labels.push(1); // the alien
        let ds = Dataset::new(pts);
        let (db, pages) = make_engine(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let predicted = classify_single(&engine, &labels, &[ObjectId(10)], 5);
        assert_eq!(predicted, vec![0], "alien classified by its neighbors");
    }

    #[test]
    fn accuracy_helper_edge_cases() {
        assert_eq!(classification_accuracy(&[], &[], &[]), 0.0);
        let labels = vec![1usize, 0];
        let acc = classification_accuracy(&[1, 1], &[ObjectId(0), ObjectId(1)], &labels);
        assert!((acc - 0.5).abs() < 1e-12);
    }
}

//! Spatial trend detection (Ester, Frommelt, Kriegel, Sander — KDD'98;
//! paper ref. \[6\]).
//!
//! A *spatial trend* is a regular change of a non-spatial attribute when
//! moving away from a start object. Neighborhood paths model the movement:
//! starting from `o`, repeatedly step to a not-yet-visited neighbor; along
//! the path, regress the attribute value against the distance from `o`. In
//! the `ExploreNeighborhoods` scheme, the loop is additionally controlled
//! by the path length, and `proc_1`/`proc_2` feed the regression.

use mq_core::{QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;
use std::collections::HashSet;

/// Simple linear regression result for one neighborhood path.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendResult {
    /// Slope of `attribute ~ distance-from-start`.
    pub slope: f64,
    /// Intercept of the regression line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Objects on the path (including the start object).
    pub path: Vec<ObjectId>,
}

impl TrendResult {
    /// Whether the path shows a trend at the given strength: `|slope|` at
    /// least `min_slope` and fit at least `min_r2`.
    pub fn is_trend(&self, min_slope: f64, min_r2: f64) -> bool {
        self.slope.abs() >= min_slope && self.r_squared >= min_r2
    }
}

/// Ordinary least squares of `y ~ x`; `r_squared` is 0 for degenerate data.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "regression input length mismatch");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return (0.0, ys.first().copied().unwrap_or(0.0), 0.0);
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return (0.0, my, 0.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, intercept, r2)
}

/// Follows one neighborhood path of at most `max_steps` steps from
/// `start`, always moving to the nearest unvisited neighbor (k-NN query
/// with k = `lookahead`), and regresses `attribute(object)` on the metric
/// distance from the start object.
///
/// Queries along a path are *dependent* (each step's query object is an
/// answer of the previous step), so paths are evaluated through one
/// multiple-query session.
pub fn detect_trend<O, M, F>(
    engine: &QueryEngine<'_, O, M>,
    start: ObjectId,
    attribute: F,
    max_steps: usize,
    lookahead: usize,
) -> TrendResult
where
    O: StorageObject,
    M: Metric<O>,
    F: Fn(ObjectId) -> f64,
{
    assert!(lookahead > 0, "need at least one neighbor to step to");
    let qtype = QueryType::knn(lookahead + 1); // +1: self-match
    let start_obj = engine.disk().database().object(start).clone();
    let metric_dist = |id: ObjectId| {
        engine
            .metric()
            .distance(engine.disk().database().object(id), &start_obj)
    };

    let mut session = engine.new_session(Vec::new());
    let mut visited: HashSet<ObjectId> = HashSet::new();
    let mut path = vec![start];
    visited.insert(start);
    let mut xs = vec![0.0];
    let mut ys = vec![attribute(start)];

    let mut current = start;
    for _ in 0..max_steps {
        let obj = engine.disk().database().object(current).clone();
        let idx = engine.push_query(&mut session, obj, qtype);
        while !session.is_complete(idx) {
            if engine.multiple_query_step(&mut session).is_none() {
                break;
            }
        }
        let next = session
            .answers(idx)
            .as_slice()
            .iter()
            .map(|a| a.id)
            .find(|id| !visited.contains(id));
        let Some(next) = next else { break };
        visited.insert(next);
        path.push(next);
        xs.push(metric_dist(next));
        ys.push(attribute(next));
        current = next;
    }

    let (slope, intercept, r_squared) = linear_regression(&xs, &ys);
    TrendResult {
        slope,
        intercept,
        r_squared,
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    #[test]
    fn regression_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (slope, intercept, r2) = linear_regression(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_degenerate_inputs() {
        assert_eq!(linear_regression(&[], &[]), (0.0, 0.0, 0.0));
        assert_eq!(linear_regression(&[1.0], &[5.0]), (0.0, 5.0, 0.0));
        // Constant y: slope 0, r² 0.
        let (s, _, r2) = linear_regression(&[0.0, 1.0, 2.0], &[4.0, 4.0, 4.0]);
        assert_eq!((s, r2), (0.0, 0.0));
    }

    /// A line of cities whose "price" attribute falls with distance.
    fn city_line() -> (Dataset<Vector>, Vec<f64>) {
        let pts: Vec<Vector> = (0..15).map(|i| Vector::new(vec![i as f32])).collect();
        let price: Vec<f64> = (0..15).map(|i| 100.0 - 6.0 * i as f64).collect();
        (Dataset::new(pts), price)
    }

    #[test]
    fn detects_negative_price_trend() {
        let (ds, price) = city_line();
        let db = PagedDatabase::pack(&ds, PageLayout::new(64, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = detect_trend(&engine, ObjectId(0), |id| price[id.index()], 8, 3);
        assert!(result.path.len() >= 5, "path too short: {:?}", result.path);
        assert!(
            result.is_trend(3.0, 0.9),
            "slope {} r2 {}",
            result.slope,
            result.r_squared
        );
        assert!(result.slope < 0.0);
    }

    #[test]
    fn no_trend_in_constant_attribute() {
        let (ds, _) = city_line();
        let db = PagedDatabase::pack(&ds, PageLayout::new(64, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = detect_trend(&engine, ObjectId(3), |_| 7.0, 8, 3);
        assert!(!result.is_trend(0.1, 0.5));
        assert_eq!(result.slope, 0.0);
    }

    #[test]
    fn path_never_revisits() {
        let (ds, price) = city_line();
        let db = PagedDatabase::pack(&ds, PageLayout::new(64, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = detect_trend(&engine, ObjectId(7), |id| price[id.index()], 14, 2);
        let mut seen = result.path.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), result.path.len(), "path revisited an object");
    }
}

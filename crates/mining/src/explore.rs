//! The ExploreNeighborhoods scheme (Fig. 2) and its multiple-query
//! transformation (Fig. 3).
//!
//! ```text
//! ExploreNeighborhoods(DB, StartObjects, SimType, …)
//!   ControlList := StartObjects;
//!   while condition_check(ControlList, …) do
//!     Object  := ControlList.choose();
//!     proc_1(Object, …);
//!     Answers := DB.similarity_query(Object, SimType);
//!     proc_2(Answers, …);
//!     ControlList := (ControlList ∪ filter(Answers, …)) − {Object};
//! ```
//!
//! The multiple-query form differs only in selecting a *set* of objects and
//! calling `multiple_similarity_query`; per loop iteration it still
//! processes only the first object and its (complete) answers. Both drivers
//! here therefore observe **identical** `proc_1`/`proc_2`/`filter` call
//! sequences — property-tested in the integration suite.
//!
//! Termination: the drivers never re-enqueue an object that was ever on the
//! control list (the minimal `filter` guarantee the paper requires); the
//! task's [`NeighborhoodTask::filter`] can restrict further.

use mq_core::{Answer, QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;
use std::collections::{HashMap, HashSet, VecDeque};

/// The task-specific hooks of the scheme. The driver owns the control-list
/// mechanics; implementations own the mining semantics.
pub trait NeighborhoodTask {
    /// `condition_check(ControlList, …)` — whether to keep exploring.
    /// The default explores until the control list is empty.
    fn should_continue(&mut self, control: &VecDeque<ObjectId>, steps_done: usize) -> bool {
        let _ = steps_done;
        !control.is_empty()
    }

    /// `SimType` for a given query object (may vary per object).
    fn sim_type(&mut self, object: ObjectId) -> QueryType;

    /// `proc_1(Object, …)` — processing before the query.
    fn proc_1(&mut self, object: ObjectId) {
        let _ = object;
    }

    /// `proc_2(Answers, …)` — processing of the complete answers.
    fn proc_2(&mut self, object: ObjectId, answers: &[Answer]);

    /// `filter(Answers, …)` — which answers become new query objects. The
    /// driver additionally drops everything that was ever enqueued.
    fn filter(&mut self, object: ObjectId, answers: &[Answer]) -> Vec<ObjectId>;
}

/// Runs the scheme with **single** similarity queries (Fig. 2).
/// Returns the number of loop iterations (= similarity queries issued).
pub fn explore_neighborhoods<O, M, T>(
    engine: &QueryEngine<'_, O, M>,
    start_objects: &[ObjectId],
    task: &mut T,
) -> usize
where
    O: StorageObject,
    M: Metric<O>,
    T: NeighborhoodTask,
{
    let mut control: VecDeque<ObjectId> = VecDeque::new();
    let mut enqueued: HashSet<ObjectId> = HashSet::new();
    for &id in start_objects {
        if enqueued.insert(id) {
            control.push_back(id);
        }
    }
    let mut steps = 0usize;
    while task.should_continue(&control, steps) {
        let Some(object) = control.pop_front() else {
            break;
        };
        task.proc_1(object);
        let qtype = task.sim_type(object);
        let query_obj = engine.disk().database().object(object).clone();
        let answers = engine.similarity_query(&query_obj, &qtype);
        task.proc_2(object, answers.as_slice());
        for id in task.filter(object, answers.as_slice()) {
            if enqueued.insert(id) {
                control.push_back(id);
            }
        }
        steps += 1;
    }
    steps
}

/// Runs the scheme with **multiple** similarity queries (Fig. 3):
/// `ControlList.choose_multiple()` selects up to `batch_size` objects, the
/// engine completes the first and prefetches the rest; only the first
/// object's answers are processed per iteration.
///
/// `max_session` bounds the answer-buffer size (the paper's memory limit on
/// `m`): when the session outgrows it, a fresh session is started and
/// buffered partial answers are dropped.
///
/// Returns the number of loop iterations.
pub fn explore_neighborhoods_multiple<O, M, T>(
    engine: &QueryEngine<'_, O, M>,
    start_objects: &[ObjectId],
    task: &mut T,
    batch_size: usize,
    max_session: usize,
) -> usize
where
    O: StorageObject,
    M: Metric<O>,
    T: NeighborhoodTask,
{
    assert!(batch_size > 0, "batch size must be positive");
    assert!(max_session >= batch_size, "session bound below batch size");
    let mut control: VecDeque<ObjectId> = VecDeque::new();
    let mut enqueued: HashSet<ObjectId> = HashSet::new();
    for &id in start_objects {
        if enqueued.insert(id) {
            control.push_back(id);
        }
    }

    let mut session = engine.new_session(Vec::new());
    // ObjectId → index of its query in the current session.
    let mut admitted: HashMap<ObjectId, usize> = HashMap::new();

    let mut steps = 0usize;
    while task.should_continue(&control, steps) {
        let Some(&head) = control.front() else { break };
        task.proc_1(head);

        // choose_multiple(): the head plus up to batch_size − 1 lookahead
        // objects, admitted to the session so the engine can prefetch them.
        if session.query_count() >= max_session {
            session = engine.new_session(Vec::new());
            admitted.clear();
        }
        for &id in control.iter().take(batch_size) {
            admitted.entry(id).or_insert_with(|| {
                let qtype = task.sim_type(id);
                let obj = engine.disk().database().object(id).clone();

                engine.push_query(&mut session, obj, qtype)
            });
        }

        // Complete the head query (trailing queries advance as a side
        // effect of the shared page reads).
        let head_idx = admitted[&head];
        while !session.is_complete(head_idx) {
            // Pending queries admitted before the head complete first;
            // their completed answers stay buffered for their own turn.
            if engine.multiple_query_step(&mut session).is_none() {
                break;
            }
        }
        control.pop_front();

        let answers: Vec<Answer> = session.answers(head_idx).as_slice().to_vec();
        task.proc_2(head, &answers);
        for id in task.filter(head, &answers) {
            if enqueued.insert(id) {
                control.push_back(id);
            }
        }
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    /// A task recording its observation sequence: visits objects up to a
    /// range and collects every visited object.
    struct Crawl {
        eps: f64,
        visited: Vec<ObjectId>,
        proc2_log: Vec<(ObjectId, Vec<ObjectId>)>,
    }

    impl NeighborhoodTask for Crawl {
        fn sim_type(&mut self, _object: ObjectId) -> QueryType {
            QueryType::range(self.eps)
        }

        fn proc_2(&mut self, object: ObjectId, answers: &[Answer]) {
            self.visited.push(object);
            self.proc2_log
                .push((object, answers.iter().map(|a| a.id).collect()));
        }

        fn filter(&mut self, _object: ObjectId, answers: &[Answer]) -> Vec<ObjectId> {
            answers.iter().map(|a| a.id).collect()
        }
    }

    fn line_db() -> (Dataset<Vector>, PagedDatabase<Vector>) {
        // Two chains of points, 1 apart within a chain, 100 apart between.
        let mut pts: Vec<Vector> = (0..20).map(|i| Vector::new(vec![i as f32])).collect();
        pts.extend((0..20).map(|i| Vector::new(vec![1000.0 + i as f32])));
        let ds = Dataset::new(pts);
        let db = PagedDatabase::pack(&ds, PageLayout::new(64, 16));
        (ds, db)
    }

    #[test]
    fn single_driver_crawls_connected_component_only() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let mut task = Crawl {
            eps: 1.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        let steps = explore_neighborhoods(&engine, &[ObjectId(0)], &mut task);
        assert_eq!(steps, 20, "only the first chain is reachable");
        let mut visited = task.visited.clone();
        visited.sort_unstable();
        assert_eq!(visited, (0..20u32).map(ObjectId).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_driver_observes_identical_sequence() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);

        let mut single = Crawl {
            eps: 1.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        explore_neighborhoods(&engine, &[ObjectId(0)], &mut single);

        for batch in [1usize, 3, 8] {
            let mut multi = Crawl {
                eps: 1.5,
                visited: Vec::new(),
                proc2_log: Vec::new(),
            };
            explore_neighborhoods_multiple(&engine, &[ObjectId(0)], &mut multi, batch, 64);
            assert_eq!(
                multi.visited, single.visited,
                "batch {batch}: visit order differs"
            );
            assert_eq!(
                multi.proc2_log, single.proc2_log,
                "batch {batch}: answers differ"
            );
        }
    }

    #[test]
    fn multiple_driver_session_reset_preserves_results() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let mut single = Crawl {
            eps: 1.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        explore_neighborhoods(&engine, &[ObjectId(0)], &mut single);
        // Tiny session bound forces several resets mid-exploration.
        let mut multi = Crawl {
            eps: 1.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        explore_neighborhoods_multiple(&engine, &[ObjectId(0)], &mut multi, 3, 4);
        assert_eq!(multi.proc2_log, single.proc2_log);
    }

    /// Depth-limited exploration via `should_continue`.
    struct DepthLimited {
        inner: Crawl,
        max_steps: usize,
    }

    impl NeighborhoodTask for DepthLimited {
        fn should_continue(&mut self, control: &VecDeque<ObjectId>, steps: usize) -> bool {
            !control.is_empty() && steps < self.max_steps
        }
        fn sim_type(&mut self, o: ObjectId) -> QueryType {
            self.inner.sim_type(o)
        }
        fn proc_2(&mut self, o: ObjectId, a: &[Answer]) {
            self.inner.proc_2(o, a);
        }
        fn filter(&mut self, o: ObjectId, a: &[Answer]) -> Vec<ObjectId> {
            self.inner.filter(o, a)
        }
    }

    #[test]
    fn depth_limit_stops_early() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let mut task = DepthLimited {
            inner: Crawl {
                eps: 1.5,
                visited: Vec::new(),
                proc2_log: Vec::new(),
            },
            max_steps: 5,
        };
        let steps = explore_neighborhoods(&engine, &[ObjectId(0)], &mut task);
        assert_eq!(steps, 5);
        assert_eq!(task.inner.visited.len(), 5);
    }

    #[test]
    fn duplicate_start_objects_are_deduplicated() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let mut task = Crawl {
            eps: 0.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        let steps =
            explore_neighborhoods(&engine, &[ObjectId(5), ObjectId(5), ObjectId(5)], &mut task);
        assert_eq!(steps, 1);
    }

    #[test]
    fn empty_start_set_is_a_noop() {
        let (_ds, db) = line_db();
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let mut task = Crawl {
            eps: 1.5,
            visited: Vec::new(),
            proc2_log: Vec::new(),
        };
        assert_eq!(explore_neighborhoods(&engine, &[], &mut task), 0);
        assert_eq!(
            explore_neighborhoods_multiple(&engine, &[], &mut task, 4, 16),
            0
        );
    }
}

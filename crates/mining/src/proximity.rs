//! Proximity analysis (Knorr & Ng, TKDE'96; paper ref. \[17\]).
//!
//! *"The goal of proximity analysis is to explain the existence of some
//! cluster of objects by using the features of neighboring objects"*: first
//! find the top-k non-member objects closest to the cluster, then extract
//! the features most of them share. In the `ExploreNeighborhoods` scheme,
//! `StartObjects` is the cluster, `proc_2` aggregates neighbor features and
//! `filter` returns nothing (no new query objects).
//!
//! Aggregate proximity of an object to a cluster is its minimum distance to
//! any member; the top-k such objects are found with one multiple k-NN
//! query over all members.

use mq_core::{QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId, Vector};
use mq_storage::StorageObject;
use std::collections::HashMap;

/// A non-member object and its aggregate (minimum) distance to the cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProximateObject {
    /// The neighboring object.
    pub id: ObjectId,
    /// `min over members of dist(member, object)`.
    pub distance: f64,
}

/// Finds the `k` non-member objects closest to the cluster, using one
/// multiple k-NN query over all cluster members (batched by `batch_size`).
///
/// Each member queries for `k + |cluster|` neighbors so that, even if all
/// members are mutual nearest neighbors, `k` non-members remain — this
/// guarantees exactness whenever the cluster's `k`-th closest outsider is
/// among some member's neighbors, which holds because aggregate distance is
/// a minimum over members.
pub fn top_k_proximate<O, M>(
    engine: &QueryEngine<'_, O, M>,
    cluster: &[ObjectId],
    k: usize,
    batch_size: usize,
) -> Vec<ProximateObject>
where
    O: StorageObject,
    M: Metric<O>,
{
    assert!(!cluster.is_empty(), "cluster must be non-empty");
    assert!(k > 0, "k must be positive");
    assert!(batch_size > 0, "batch size must be positive");
    let member: std::collections::HashSet<ObjectId> = cluster.iter().copied().collect();
    let qtype = QueryType::knn(k + cluster.len());

    let mut best: HashMap<ObjectId, f64> = HashMap::new();
    for block in cluster.chunks(batch_size) {
        let queries: Vec<(O, QueryType)> = block
            .iter()
            .map(|&id| (engine.disk().database().object(id).clone(), qtype))
            .collect();
        for answers in engine.multiple_similarity_query(queries) {
            for a in answers {
                if member.contains(&a.id) {
                    continue;
                }
                let entry = best.entry(a.id).or_insert(f64::INFINITY);
                if a.distance < *entry {
                    *entry = a.distance;
                }
            }
        }
    }
    let mut out: Vec<ProximateObject> = best
        .into_iter()
        .map(|(id, distance)| ProximateObject { id, distance })
        .collect();
    out.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap()
            .then(a.id.cmp(&b.id))
    });
    out.truncate(k);
    out
}

/// A feature (dimension) most of the top-k neighbors agree on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommonFeature {
    /// The dimension index.
    pub dimension: usize,
    /// Mean value of the dimension over the neighbor set.
    pub mean: f64,
    /// Standard deviation over the neighbor set.
    pub std_dev: f64,
}

/// Extracts the `top` dimensions with the lowest relative spread among the
/// given objects — the "features that are common to most of them" of \[17\].
pub fn common_features(objects: &[&Vector], top: usize) -> Vec<CommonFeature> {
    assert!(!objects.is_empty(), "need at least one object");
    let dim = objects[0].dim();
    let n = objects.len() as f64;
    let mut features = Vec::with_capacity(dim);
    for d in 0..dim {
        let mean: f64 = objects
            .iter()
            .map(|o| o.components()[d] as f64)
            .sum::<f64>()
            / n;
        let var: f64 = objects
            .iter()
            .map(|o| {
                let x = o.components()[d] as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / n;
        features.push(CommonFeature {
            dimension: d,
            mean,
            std_dev: var.sqrt(),
        });
    }
    features.sort_by(|a, b| {
        // Low spread relative to magnitude = most "common" feature.
        let ka = a.std_dev / (a.mean.abs() + 1e-9);
        let kb = b.std_dev / (b.mean.abs() + 1e-9);
        ka.partial_cmp(&kb)
            .unwrap()
            .then(a.dimension.cmp(&b.dimension))
    });
    features.truncate(top);
    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::Euclidean;
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    /// Cluster at the origin; a ring of outsiders at increasing distances.
    fn setup() -> (Dataset<Vector>, Vec<ObjectId>) {
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push(Vector::new(vec![
                (i % 3) as f32 * 0.1,
                (i / 3) as f32 * 0.1,
            ]));
        }
        // Outsiders at x = 2, 3, 4, ... (ids 6..12).
        for i in 0..6 {
            pts.push(Vector::new(vec![2.0 + i as f32, 0.0]));
        }
        let cluster = (0..6u32).map(ObjectId).collect();
        (Dataset::new(pts), cluster)
    }

    #[test]
    fn finds_nearest_outsiders_in_order() {
        let (ds, cluster) = setup();
        let db = PagedDatabase::pack(&ds, PageLayout::new(128, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let top = top_k_proximate(&engine, &cluster, 3, 8);
        let ids: Vec<u32> = top.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![6, 7, 8]);
        assert!(top[0].distance < top[1].distance);
        assert!(top[1].distance < top[2].distance);
        // Aggregate distance is to the *nearest* member (0.2, 0).
        assert!((top[0].distance - 1.8).abs() < 1e-5, "{}", top[0].distance);
    }

    #[test]
    fn members_never_appear() {
        let (ds, cluster) = setup();
        let db = PagedDatabase::pack(&ds, PageLayout::new(128, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let top = top_k_proximate(&engine, &cluster, 6, 3);
        assert!(top.iter().all(|p| p.id.index() >= 6));
    }

    #[test]
    fn common_features_ranks_stable_dimension_first() {
        // Dimension 1 is constant (5.0); dimension 0 varies wildly.
        let vs: Vec<Vector> = (0..5)
            .map(|i| Vector::new(vec![i as f32 * 10.0, 5.0]))
            .collect();
        let refs: Vec<&Vector> = vs.iter().collect();
        let feats = common_features(&refs, 1);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].dimension, 1);
        assert!((feats[0].mean - 5.0).abs() < 1e-9);
        assert!(feats[0].std_dev < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cluster must be non-empty")]
    fn empty_cluster_rejected() {
        let (ds, _) = setup();
        let db = PagedDatabase::pack(&ds, PageLayout::new(128, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let _ = top_k_proximate(&engine, &[], 3, 8);
    }
}

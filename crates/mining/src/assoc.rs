//! Neighborhood association rules (Koperski & Han, SSD'95; paper ref. \[15\]).
//!
//! Spatial association rules describe associations between object types
//! based on neighborhood relations — e.g. *"80 % of the selected towns are
//! close to some water"*. In the `ExploreNeighborhoods` scheme,
//! `StartObjects` is the set of all objects of the antecedent type,
//! `SimType` is the neighborhood predicate (here: a range query), `proc_2`
//! counts type co-occurrences, and `filter` passes nothing on.
//!
//! A rule `A → near B` holds with
//! `support  = |{a : type(a)=A ∧ ∃ b∈N(a): type(b)=B}| / |DB|` and
//! `confidence = … / |{a : type(a)=A}|`.

use mq_core::{QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;

/// One discovered neighborhood association rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AssociationRule {
    /// Antecedent object type.
    pub antecedent: usize,
    /// Consequent object type found in the neighborhood.
    pub consequent: usize,
    /// Fraction of all database objects supporting the rule.
    pub support: f64,
    /// Fraction of antecedent objects supporting the rule.
    pub confidence: f64,
}

/// Mines all rules `A → near B` (`A ≠ B`) with at least the given support
/// and confidence, issuing the per-antecedent range queries as multiple
/// similarity queries in blocks of `batch_size`.
pub fn mine_neighborhood_rules<O, M>(
    engine: &QueryEngine<'_, O, M>,
    types: &[usize],
    eps: f64,
    min_support: f64,
    min_confidence: f64,
    batch_size: usize,
) -> Vec<AssociationRule>
where
    O: StorageObject,
    M: Metric<O>,
{
    let n = engine.disk().database().object_count();
    assert_eq!(types.len(), n, "one type per database object required");
    assert!(batch_size > 0, "batch size must be positive");
    if n == 0 {
        return Vec::new();
    }
    let num_types = types.iter().copied().max().unwrap_or(0) + 1;
    let qtype = QueryType::range(eps);

    // supported[a][b] = number of type-a objects with a type-b neighbor.
    let mut supported = vec![vec![0u64; num_types]; num_types];
    let mut type_count = vec![0u64; num_types];
    for &t in types {
        type_count[t] += 1;
    }

    let ids: Vec<ObjectId> = (0..n as u32).map(ObjectId).collect();
    for block in ids.chunks(batch_size) {
        let queries: Vec<(O, QueryType)> = block
            .iter()
            .map(|&id| (engine.disk().database().object(id).clone(), qtype))
            .collect();
        let answers = engine.multiple_similarity_query(queries);
        for (&a_id, a_answers) in block.iter().zip(&answers) {
            let a_type = types[a_id.index()];
            let mut seen = vec![false; num_types];
            for ans in a_answers {
                if ans.id != a_id {
                    seen[types[ans.id.index()]] = true;
                }
            }
            for (b_type, &present) in seen.iter().enumerate() {
                if present {
                    supported[a_type][b_type] += 1;
                }
            }
        }
    }

    let mut rules = Vec::new();
    for a in 0..num_types {
        if type_count[a] == 0 {
            continue;
        }
        for (b, &count) in supported[a].iter().enumerate() {
            if a == b {
                continue;
            }
            let sup = count as f64 / n as f64;
            let conf = count as f64 / type_count[a] as f64;
            if sup >= min_support && conf >= min_confidence {
                rules.push(AssociationRule {
                    antecedent: a,
                    consequent: b,
                    support: sup,
                    confidence: conf,
                });
            }
        }
    }
    rules.sort_by(|x, y| {
        y.confidence
            .partial_cmp(&x.confidence)
            .unwrap()
            .then(x.antecedent.cmp(&y.antecedent))
            .then(x.consequent.cmp(&y.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    /// Towns (type 0) each adjacent to water (type 1); factories (type 2)
    /// far from everything.
    fn town_db() -> (Dataset<Vector>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut types = Vec::new();
        for i in 0..8 {
            pts.push(Vector::new(vec![i as f32 * 10.0, 0.0]));
            types.push(0); // town
            pts.push(Vector::new(vec![i as f32 * 10.0, 0.5]));
            types.push(1); // water next to it
        }
        for i in 0..4 {
            pts.push(Vector::new(vec![i as f32 * 10.0, 500.0]));
            types.push(2); // factory, isolated
        }
        (Dataset::new(pts), types)
    }

    fn engine_for(ds: &Dataset<Vector>) -> (PagedDatabase<Vector>, usize) {
        let db = PagedDatabase::pack(ds, PageLayout::new(128, 16));
        let p = db.page_count();
        (db, p)
    }

    #[test]
    fn towns_near_water_rule_found() {
        let (ds, types) = town_db();
        let (db, pages) = engine_for(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let rules = mine_neighborhood_rules(&engine, &types, 1.0, 0.1, 0.8, 8);
        let town_water = rules
            .iter()
            .find(|r| r.antecedent == 0 && r.consequent == 1)
            .expect("town → near water");
        assert!(
            (town_water.confidence - 1.0).abs() < 1e-12,
            "every town has water"
        );
        assert!((town_water.support - 8.0 / 20.0).abs() < 1e-12);
        // No factory rules: factories are isolated.
        assert!(rules.iter().all(|r| r.antecedent != 2));
    }

    #[test]
    fn batch_size_does_not_change_rules() {
        let (ds, types) = town_db();
        let (db, pages) = engine_for(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let r1 = mine_neighborhood_rules(&engine, &types, 1.0, 0.0, 0.0, 1);
        let r20 = mine_neighborhood_rules(&engine, &types, 1.0, 0.0, 0.0, 20);
        assert_eq!(r1, r20);
    }

    #[test]
    fn thresholds_filter_rules() {
        let (ds, types) = town_db();
        let (db, pages) = engine_for(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let all = mine_neighborhood_rules(&engine, &types, 1.0, 0.0, 0.0, 8);
        let strict = mine_neighborhood_rules(&engine, &types, 1.0, 0.0, 0.99, 8);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.99));
    }

    #[test]
    fn empty_database() {
        let ds = Dataset::new(Vec::<Vector>::new());
        let db = PagedDatabase::pack(&ds, PageLayout::new(128, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        assert!(mine_neighborhood_rules(&engine, &[], 1.0, 0.0, 0.0, 4).is_empty());
    }
}

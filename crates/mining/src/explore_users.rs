//! The §6 manual-data-exploration workload.
//!
//! *"We randomly selected a first query object for each of the users and
//! performed a k-nearest neighbor query for each of them obtaining a total
//! of c × k answers. Then we performed the following loop. While each of
//! the hypothetic users chose one from his k current answers, for each of
//! the current answers we prefetched their k-nearest neighbors. After
//! restricting the set of answers to the answers of the objects chosen by
//! the users, we continued the loop with these new query objects."*
//!
//! The workload is a *trace* of query batches: each round issues
//! `m = c × k` highly dependent k-NN queries. Because query answers do not
//! depend on the execution mode, the trace is generated once
//! ([`exploration_trace`]) and then replayed in single-query mode
//! ([`replay_single`]) or multiple-query mode ([`replay_multiple`]) for an
//! apples-to-apples cost comparison.

use mq_core::{QueryEngine, QueryType};
use mq_datagen::ExplorationConfig;
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates the exploration trace: one `Vec<ObjectId>` of query objects
/// per round (round 0 holds the `c` user start objects; later rounds hold
/// `m = c × k` prefetch queries each).
pub fn exploration_trace<O, M>(
    engine: &QueryEngine<'_, O, M>,
    cfg: &ExplorationConfig,
) -> Vec<Vec<ObjectId>>
where
    O: StorageObject,
    M: Metric<O>,
{
    assert!(
        cfg.users > 0 && cfg.k > 0,
        "need at least one user and one neighbor"
    );
    let n = engine.disk().database().object_count();
    assert!(n > 0, "empty database");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let qtype = QueryType::knn(cfg.k);

    // Round 0: one random start object per user.
    let mut current: Vec<Vec<ObjectId>> = (0..cfg.users)
        .map(|_| vec![ObjectId(rng.random_range(0..n as u32))])
        .collect();
    let mut trace = vec![current.iter().flatten().copied().collect::<Vec<_>>()];

    for _ in 0..cfg.rounds {
        // Prefetch the k-NN of every current answer of every user; each
        // user then picks one answer and continues with its neighbors.
        let mut next_current = Vec::with_capacity(cfg.users);
        let mut round_queries = Vec::new();
        for user_answers in &current {
            let chosen = user_answers[rng.random_range(0..user_answers.len())];
            let mut chosen_neighbors = Vec::new();
            for &q in user_answers {
                let obj = engine.disk().database().object(q).clone();
                let answers = engine.similarity_query(&obj, &qtype);
                round_queries.push(q);
                if q == chosen {
                    chosen_neighbors = answers.ids().collect();
                }
            }
            next_current.push(chosen_neighbors);
        }
        trace.push(round_queries);
        current = next_current;
    }
    trace
}

/// Replays a trace with single similarity queries; returns the number of
/// queries issued.
pub fn replay_single<O, M>(
    engine: &QueryEngine<'_, O, M>,
    trace: &[Vec<ObjectId>],
    k: usize,
) -> usize
where
    O: StorageObject,
    M: Metric<O>,
{
    let qtype = QueryType::knn(k);
    let mut issued = 0;
    for round in trace {
        for &id in round {
            let obj = engine.disk().database().object(id).clone();
            let _ = engine.similarity_query(&obj, &qtype);
            issued += 1;
        }
    }
    issued
}

/// Replays a trace with one multiple similarity query per round (each
/// round's `m = c × k` queries form one batch, as in §6); returns the
/// number of queries issued.
pub fn replay_multiple<O, M>(
    engine: &QueryEngine<'_, O, M>,
    trace: &[Vec<ObjectId>],
    k: usize,
) -> usize
where
    O: StorageObject,
    M: Metric<O>,
{
    let qtype = QueryType::knn(k);
    let mut issued = 0;
    for round in trace {
        let queries: Vec<(O, QueryType)> = round
            .iter()
            .map(|&id| (engine.disk().database().object(id).clone(), qtype))
            .collect();
        issued += queries.len();
        let _ = engine.multiple_similarity_query(queries);
    }
    issued
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    fn clustered_db() -> Dataset<Vector> {
        let mut pts = Vec::new();
        for c in 0..5 {
            for i in 0..30 {
                pts.push(Vector::new(vec![
                    c as f32 * 100.0 + (i % 6) as f32,
                    (i / 6) as f32,
                ]));
            }
        }
        Dataset::new(pts)
    }

    #[test]
    fn trace_shape_matches_config() {
        let ds = clustered_db();
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let cfg = ExplorationConfig {
            users: 3,
            k: 4,
            rounds: 2,
            seed: 7,
        };
        let trace = exploration_trace(&engine, &cfg);
        assert_eq!(trace.len(), 3, "start round + 2 loop rounds");
        assert_eq!(trace[0].len(), 3, "one start object per user");
        assert_eq!(trace[1].len(), 3, "round 1 queries the 3 start objects");
        assert_eq!(trace[2].len(), 3 * 4, "round 2 issues m = c*k queries");
    }

    #[test]
    fn trace_is_reproducible() {
        let ds = clustered_db();
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let cfg = ExplorationConfig {
            users: 2,
            k: 3,
            rounds: 2,
            seed: 11,
        };
        assert_eq!(
            exploration_trace(&engine, &cfg),
            exploration_trace(&engine, &cfg)
        );
    }

    #[test]
    fn queries_are_spatially_dependent() {
        // All queries of one user in one round are k-NN answers of one
        // object, i.e. close together — the multiple-query sweet spot.
        let ds = clustered_db();
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let cfg = ExplorationConfig {
            users: 1,
            k: 5,
            rounds: 2,
            seed: 13,
        };
        let trace = exploration_trace(&engine, &cfg);
        let last = &trace[2];
        assert_eq!(last.len(), 5);
        // All five prefetch queries fall into one 100-wide cluster.
        let cluster = |id: ObjectId| (ds.object(id).components()[0] / 100.0).round() as i32;
        let c0 = cluster(last[0]);
        assert!(last.iter().all(|&id| cluster(id) == c0));
    }

    #[test]
    fn multiple_replay_reads_fewer_pages_than_single() {
        let ds = clustered_db();
        let db = PagedDatabase::pack(&ds, PageLayout::new(256, 16));
        let scan = LinearScan::new(db.page_count());
        let disk = SimulatedDisk::with_buffer_pages(db, 1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let cfg = ExplorationConfig {
            users: 3,
            k: 5,
            rounds: 2,
            seed: 17,
        };
        let trace = exploration_trace(&engine, &cfg);

        disk.reset_stats();
        let n_single = replay_single(&engine, &trace, cfg.k);
        let single_io = disk.stats().logical_reads;

        disk.reset_stats();
        let n_multi = replay_multiple(&engine, &trace, cfg.k);
        let multi_io = disk.stats().logical_reads;

        assert_eq!(n_single, n_multi);
        assert!(multi_io < single_io, "{multi_io} vs {single_io}");
    }
}

//! DBSCAN — density-based clustering (Ester, Kriegel, Sander, Xu — KDD'96;
//! paper ref. \[7\]).
//!
//! DBSCAN is the paper's flagship instance of iterative neighborhood
//! exploration: it grows clusters by repeatedly issuing `ε`-range queries
//! for objects returned by previous range queries. A *core object* has at
//! least `min_pts` neighbors (including itself); clusters are the
//! density-connected components of core objects plus their border objects;
//! everything else is noise.
//!
//! Both execution modes produce the **same clustering** (cluster ids are
//! assigned in discovery order, which both modes share):
//!
//! * [`Dbscan::run_single`] — one range query at a time (Fig. 2 behaviour);
//! * [`Dbscan::run_multiple`] — seed-list objects are batched into one
//!   multiple similarity query session (Fig. 3 behaviour), sharing page
//!   reads and triangle-inequality pivots across the cluster frontier.

use mq_core::{MultiQuerySession, QueryEngine, QueryType};
use mq_metric::{Metric, ObjectId};
use mq_storage::StorageObject;
use std::collections::{HashMap, VecDeque};

/// Cluster assignment of one object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core object.
    Noise,
    /// Member of the cluster with the given id (0-based, discovery order).
    Cluster(u32),
}

/// The result of a DBSCAN run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbscanResult {
    /// Per-object labels, indexed by object id.
    pub labels: Vec<Label>,
    /// Number of clusters found.
    pub clusters: u32,
    /// Number of range queries issued.
    pub queries: usize,
}

impl DbscanResult {
    /// Number of noise objects.
    pub fn noise_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| matches!(l, Label::Noise))
            .count()
    }
}

/// DBSCAN parameters.
///
/// ```
/// use mq_core::QueryEngine;
/// use mq_index::LinearScan;
/// use mq_metric::{Euclidean, Vector};
/// use mq_mining::Dbscan;
/// use mq_storage::{Dataset, PagedDatabase, SimulatedDisk};
///
/// // Two blobs and one outlier.
/// let mut pts: Vec<Vector> = (0..10).map(|i| Vector::new(vec![i as f32 * 0.1])).collect();
/// pts.extend((0..10).map(|i| Vector::new(vec![100.0 + i as f32 * 0.1])));
/// pts.push(Vector::new(vec![50.0]));
/// let ds = Dataset::new(pts);
/// let db = PagedDatabase::pack(&ds, Default::default());
/// let scan = LinearScan::new(db.page_count());
/// let disk = SimulatedDisk::new(db, 0.10);
/// let engine = QueryEngine::new(&disk, &scan, Euclidean);
///
/// let result = Dbscan::new(0.15, 3).run_multiple(&engine, 8);
/// assert_eq!(result.clusters, 2);
/// assert_eq!(result.noise_count(), 1);
/// // Multiple-query execution returns the same labels as single queries.
/// assert_eq!(result.labels, Dbscan::new(0.15, 3).run_single(&engine).labels);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Dbscan {
    /// Neighborhood radius (`Eps`).
    pub eps: f64,
    /// Density threshold (`MinPts`), counting the object itself.
    pub min_pts: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(u32),
}

impl Dbscan {
    /// Creates the parameter set.
    ///
    /// # Panics
    /// Panics if `eps` is negative or `min_pts` is zero.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(eps >= 0.0, "eps must be non-negative");
        assert!(min_pts >= 1, "min_pts must be positive");
        Self { eps, min_pts }
    }

    /// Runs DBSCAN with single similarity queries.
    pub fn run_single<O, M>(&self, engine: &QueryEngine<'_, O, M>) -> DbscanResult
    where
        O: StorageObject,
        M: Metric<O>,
    {
        self.run_impl(engine, None)
    }

    /// Runs DBSCAN with multiple similarity queries: the expansion seed
    /// list is kept admitted (up to `batch_size` lookahead) in one session.
    pub fn run_multiple<O, M>(
        &self,
        engine: &QueryEngine<'_, O, M>,
        batch_size: usize,
    ) -> DbscanResult
    where
        O: StorageObject,
        M: Metric<O>,
    {
        assert!(batch_size > 0, "batch size must be positive");
        self.run_impl(engine, Some(batch_size))
    }

    fn run_impl<O, M>(&self, engine: &QueryEngine<'_, O, M>, batch: Option<usize>) -> DbscanResult
    where
        O: StorageObject,
        M: Metric<O>,
    {
        let n = engine.disk().database().object_count();
        let mut state = vec![State::Unclassified; n];
        let mut clusters = 0u32;
        let mut queries = 0usize;
        let qtype = QueryType::range(self.eps);

        // Per-cluster expansion uses one fresh session (the seed lists of
        // one cluster are exactly the "dynamically added query objects" of
        // §5.1).
        for start in 0..n as u32 {
            if state[start as usize] != State::Unclassified {
                continue;
            }
            let mut runner = SeedRunner::new(engine, qtype, batch);
            let neighbors = runner.query(ObjectId(start), &mut queries);
            if neighbors.len() < self.min_pts {
                state[start as usize] = State::Noise;
                continue;
            }
            // New cluster: expand from the seed set.
            let cluster = clusters;
            clusters += 1;
            state[start as usize] = State::Cluster(cluster);
            let mut seeds: VecDeque<ObjectId> = VecDeque::new();
            for id in &neighbors {
                match state[id.index()] {
                    State::Unclassified => {
                        state[id.index()] = State::Cluster(cluster);
                        seeds.push_back(*id);
                        runner.prefetch(&seeds);
                    }
                    State::Noise => {
                        // Border object adopted by the cluster.
                        state[id.index()] = State::Cluster(cluster);
                    }
                    State::Cluster(_) => {}
                }
            }
            while let Some(seed) = seeds.pop_front() {
                let neighbors = runner.query(seed, &mut queries);
                if neighbors.len() < self.min_pts {
                    continue; // border object: no further expansion
                }
                for id in &neighbors {
                    match state[id.index()] {
                        State::Unclassified => {
                            state[id.index()] = State::Cluster(cluster);
                            seeds.push_back(*id);
                            runner.prefetch(&seeds);
                        }
                        State::Noise => {
                            state[id.index()] = State::Cluster(cluster);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }

        let labels = state
            .into_iter()
            .map(|s| match s {
                State::Noise => Label::Noise,
                State::Cluster(c) => Label::Cluster(c),
                State::Unclassified => unreachable!("every object is classified"),
            })
            .collect();
        DbscanResult {
            labels,
            clusters,
            queries,
        }
    }
}

/// Issues the per-seed range queries, in either mode.
struct SeedRunner<'e, 'a, O, M> {
    engine: &'e QueryEngine<'a, O, M>,
    qtype: QueryType,
    batch: Option<usize>,
    session: Option<MultiQuerySession<O>>,
    admitted: HashMap<ObjectId, usize>,
}

impl<'e, 'a, O, M> SeedRunner<'e, 'a, O, M>
where
    O: StorageObject,
    M: Metric<O>,
{
    fn new(engine: &'e QueryEngine<'a, O, M>, qtype: QueryType, batch: Option<usize>) -> Self {
        let session = batch.map(|_| engine.new_session(Vec::new()));
        Self {
            engine,
            qtype,
            batch,
            session,
            admitted: HashMap::new(),
        }
    }

    /// Hints upcoming seed queries to the engine (multiple mode only).
    fn prefetch(&mut self, seeds: &VecDeque<ObjectId>) {
        let (Some(batch), Some(session)) = (self.batch, self.session.as_mut()) else {
            return;
        };
        for &id in seeds.iter().take(batch) {
            if !self.admitted.contains_key(&id) {
                let obj = self.engine.disk().database().object(id).clone();
                let idx = self.engine.push_query(session, obj, self.qtype);
                self.admitted.insert(id, idx);
            }
        }
    }

    /// The ε-neighborhood of `object` (complete).
    fn query(&mut self, object: ObjectId, queries: &mut usize) -> Vec<ObjectId> {
        *queries += 1;
        match self.session.as_mut() {
            None => {
                let obj = self.engine.disk().database().object(object).clone();
                self.engine
                    .similarity_query(&obj, &self.qtype)
                    .ids()
                    .collect()
            }
            Some(session) => {
                let idx = match self.admitted.get(&object) {
                    Some(&idx) => idx,
                    None => {
                        let obj = self.engine.disk().database().object(object).clone();
                        let idx = self.engine.push_query(session, obj, self.qtype);
                        self.admitted.insert(object, idx);
                        idx
                    }
                };
                while !session.is_complete(idx) {
                    if self.engine.multiple_query_step(session).is_none() {
                        break;
                    }
                }
                session.answers(idx).ids().collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_index::LinearScan;
    use mq_metric::{Euclidean, Vector};
    use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

    /// Two dense blobs plus two isolated points.
    fn blobs() -> Dataset<Vector> {
        let mut pts = Vec::new();
        for i in 0..12 {
            pts.push(Vector::new(vec![
                (i % 4) as f32 * 0.5,
                (i / 4) as f32 * 0.5,
            ]));
        }
        for i in 0..12 {
            pts.push(Vector::new(vec![
                100.0 + (i % 4) as f32 * 0.5,
                (i / 4) as f32 * 0.5,
            ]));
        }
        pts.push(Vector::new(vec![50.0, 50.0]));
        pts.push(Vector::new(vec![-50.0, 50.0]));
        Dataset::new(pts)
    }

    fn engine_parts(ds: &Dataset<Vector>) -> (PagedDatabase<Vector>, usize) {
        let db = PagedDatabase::pack(ds, PageLayout::new(128, 16));
        let pages = db.page_count();
        (db, pages)
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let ds = blobs();
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = Dbscan::new(0.8, 3).run_single(&engine);
        assert_eq!(result.clusters, 2);
        assert_eq!(result.noise_count(), 2);
        // All of blob 1 in one cluster, all of blob 2 in the other.
        let c0 = result.labels[0];
        assert!((0..12).all(|i| result.labels[i] == c0));
        let c1 = result.labels[12];
        assert!((12..24).all(|i| result.labels[i] == c1));
        assert_ne!(c0, c1);
        assert_eq!(result.labels[24], Label::Noise);
        assert_eq!(result.labels[25], Label::Noise);
    }

    #[test]
    fn multiple_mode_produces_identical_clustering() {
        let ds = blobs();
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let single = Dbscan::new(0.8, 3).run_single(&engine);
        for batch in [1, 4, 16] {
            let multi = Dbscan::new(0.8, 3).run_multiple(&engine, batch);
            assert_eq!(multi.labels, single.labels, "batch {batch}");
            assert_eq!(multi.clusters, single.clusters);
            assert_eq!(
                multi.queries, single.queries,
                "same number of range queries"
            );
        }
    }

    #[test]
    fn multiple_mode_reads_fewer_pages() {
        let ds = blobs();
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 1);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);

        disk.reset_stats();
        let _ = Dbscan::new(0.8, 3).run_single(&engine);
        let single_io = disk.stats().logical_reads;

        disk.reset_stats();
        let _ = Dbscan::new(0.8, 3).run_multiple(&engine, 16);
        let multi_io = disk.stats().logical_reads;

        assert!(
            multi_io < single_io,
            "multiple-query DBSCAN should read fewer pages: {multi_io} vs {single_io}"
        );
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let ds = blobs();
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = Dbscan::new(0.8, 100).run_single(&engine);
        assert_eq!(result.clusters, 0);
        assert_eq!(result.noise_count(), ds.len());
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let ds = blobs();
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = Dbscan::new(1000.0, 3).run_single(&engine);
        assert_eq!(result.clusters, 1);
        assert_eq!(result.noise_count(), 0);
    }

    #[test]
    fn border_object_between_dense_regions() {
        // A bridge point within eps of a cluster but not core itself.
        let mut pts: Vec<Vector> = (0..6)
            .map(|i| Vector::new(vec![i as f32 * 0.4, 0.0]))
            .collect();
        pts.push(Vector::new(vec![2.4, 0.0])); // border: within eps of the chain end only
        let ds = Dataset::new(pts);
        let (db, pages) = engine_parts(&ds);
        let scan = LinearScan::new(pages);
        let disk = SimulatedDisk::with_buffer_pages(db, 2);
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        let result = Dbscan::new(0.5, 3).run_single(&engine);
        assert_eq!(result.clusters, 1);
        assert_eq!(
            result.labels[6],
            Label::Cluster(0),
            "border object joins the cluster"
        );
    }

    #[test]
    #[should_panic(expected = "min_pts must be positive")]
    fn zero_min_pts_rejected() {
        let _ = Dbscan::new(1.0, 0);
    }
}

#![warn(missing_docs)]
//! # mq-index — access methods for similarity queries
//!
//! The paper evaluates its multiple-similarity-query technique on top of two
//! access methods (§5.1, §6): the **linear scan** and the **X-tree**
//! (Berchtold/Keim/Kriegel, VLDB'96 — an R\*-tree variant with *supernodes*
//! for high-dimensional data). It further motivates metric indexes via the
//! **M-tree** (Ciaccia/Patella/Zezula, VLDB'97) for databases that are
//! metric but not vector spaces. This crate implements all three from
//! scratch:
//!
//! * [`scan::LinearScan`] — every data page is relevant; pages are served in
//!   physical order (maximizing sequential I/O).
//! * [`xtree::XTree`] — R\*-style insertion (ChooseSubtree + topological
//!   margin/overlap split) with X-tree supernodes, plus a VAMSplit-style
//!   bulk loader; k-NN page ordering follows Hjaltason–Samet \[13\], which is
//!   proven I/O-optimal for nearest-neighbor search \[3\].
//! * [`mtree::MTree`] — a dynamic metric tree with routing objects and
//!   covering radii; search prunes with the triangle inequality and the
//!   classic parent-distance optimization.
//!
//! All access methods implement [`SimilarityIndex`], whose
//! [`plan`](SimilarityIndex::plan) method is the paper's
//! `determine_relevant_data_pages` (Fig. 1): it yields candidate data pages
//! *best-first* under a dynamically shrinking query distance, and the
//! engine's `prune_pages` is realized by passing the current query distance
//! to [`PagePlan::next`].
//!
//! ## I/O accounting convention
//!
//! Directory nodes are assumed memory-resident (the paper's 10 % buffer
//! easily holds the directory); only **data-page** reads are metered, which
//! is what the paper's Fig. 7 reports.

pub mod bbox;
pub mod mtree;
pub mod planner;
pub mod rstar;
pub mod scan;
pub(crate) mod util;
pub mod xtree;

pub use bbox::Mbr;
pub use mtree::{MTree, MTreeConfig};
pub use planner::{PagePlan, SimilarityIndex};
pub use scan::LinearScan;
pub use xtree::{XTree, XTreeConfig};

//! The access-method interface used by the query engine.
//!
//! [`SimilarityIndex::plan`] is the paper's `determine_relevant_data_pages`
//! (Fig. 1): it produces the sequence of data pages that may contain answers
//! for one query object, best-first by a lower-bound distance. The engine's
//! `prune_pages(QueryDist)` is realized by passing the *current* query
//! distance into [`PagePlan::next`], which skips (and permanently discards)
//! pages whose lower bound exceeds it — exactly the Hjaltason–Samet
//! traversal that \[3\] proved reads the minimal number of pages for k-NN
//! queries.

use mq_storage::PageId;

/// A lazily evaluated, best-first sequence of candidate data pages for one
/// query object.
pub trait PagePlan {
    /// Returns the next candidate page whose lower-bound distance does not
    /// exceed `query_dist`, together with that lower bound, or `None` when
    /// no further page can contain an answer.
    ///
    /// `query_dist` must be non-increasing across calls on the same plan
    /// (the query distance of Fig. 1 only ever shrinks); implementations may
    /// rely on this to discard pruned subtrees permanently.
    fn next(&mut self, query_dist: f64) -> Option<(PageId, f64)>;
}

/// An access method over one paged database: the linear scan, the X-tree,
/// or the M-tree.
///
/// The lower bounds returned by [`page_mindist`](Self::page_mindist) and by
/// plans must never exceed the true distance from the query to any object
/// on the page — otherwise qualifying answers would be pruned. (They may be
/// arbitrarily loose; looser bounds only cost extra page reads.)
pub trait SimilarityIndex<O>: Send + Sync {
    /// Starts the relevant-page traversal for one query object.
    fn plan<'a>(&'a self, query: &'a O) -> Box<dyn PagePlan + 'a>;

    /// A lower bound on `dist(query, o)` over all objects `o` stored on
    /// `page`. Used by the multiple-query engine (§5.1) to decide whether a
    /// page loaded for the head query is also *relevant* for a trailing
    /// query.
    fn page_mindist(&self, query: &O, page: PageId) -> f64;

    /// Number of data pages the index covers.
    fn page_count(&self) -> usize;

    /// Short name for reports ("scan", "x-tree", "m-tree").
    fn name(&self) -> &str;
}

impl<O, I: SimilarityIndex<O> + ?Sized> SimilarityIndex<O> for &I {
    fn plan<'a>(&'a self, query: &'a O) -> Box<dyn PagePlan + 'a> {
        (**self).plan(query)
    }

    fn page_mindist(&self, query: &O, page: PageId) -> f64 {
        (**self).page_mindist(query, page)
    }

    fn page_count(&self) -> usize {
        (**self).page_count()
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

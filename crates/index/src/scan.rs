//! The linear scan "access method".
//!
//! §5.1: *"If the implementation is based on the linear scan, each data page
//! is relevant"* — the scan serves all pages in physical order (pure
//! sequential I/O) and provides no lower bounds (`page_mindist` is 0), so no
//! page is ever pruned. In high dimensions this is often the best possible
//! strategy (§2, citing the VA-file analysis).

use crate::planner::{PagePlan, SimilarityIndex};
use mq_storage::PageId;

/// The linear scan over `page_count` data pages.
#[derive(Clone, Copy, Debug)]
pub struct LinearScan {
    page_count: usize,
}

impl LinearScan {
    /// Creates a scan over a database with the given number of pages.
    pub fn new(page_count: usize) -> Self {
        Self { page_count }
    }
}

struct ScanPlan {
    next: u32,
    end: u32,
}

impl PagePlan for ScanPlan {
    fn next(&mut self, _query_dist: f64) -> Option<(PageId, f64)> {
        if self.next == self.end {
            return None;
        }
        let page = PageId(self.next);
        self.next += 1;
        Some((page, 0.0))
    }
}

impl<O> SimilarityIndex<O> for LinearScan {
    fn plan<'a>(&'a self, _query: &'a O) -> Box<dyn PagePlan + 'a> {
        Box::new(ScanPlan {
            next: 0,
            end: self.page_count as u32,
        })
    }

    fn page_mindist(&self, _query: &O, _page: PageId) -> f64 {
        0.0
    }

    fn page_count(&self) -> usize {
        self.page_count
    }

    fn name(&self) -> &str {
        "scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::Vector;

    #[test]
    fn yields_all_pages_in_physical_order() {
        let scan = LinearScan::new(4);
        let q = Vector::new(vec![0.0]);
        let mut plan = SimilarityIndex::<Vector>::plan(&scan, &q);
        let mut got = Vec::new();
        while let Some((pid, lb)) = plan.next(0.001) {
            assert_eq!(lb, 0.0);
            got.push(pid.0);
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_database() {
        let scan = LinearScan::new(0);
        let q = Vector::new(vec![0.0]);
        let mut plan = SimilarityIndex::<Vector>::plan(&scan, &q);
        assert!(plan.next(f64::INFINITY).is_none());
    }

    #[test]
    fn mindist_is_always_zero() {
        let scan = LinearScan::new(2);
        let q = Vector::new(vec![123.0]);
        assert_eq!(
            SimilarityIndex::<Vector>::page_mindist(&scan, &q, PageId(1)),
            0.0
        );
        assert_eq!(SimilarityIndex::<Vector>::page_count(&scan), 2);
        assert_eq!(SimilarityIndex::<Vector>::name(&scan), "scan");
    }
}

//! Dynamic X-tree construction: R\* insertion plus supernodes.

use super::frozen::{FrozenNodes, Target, XTree, XTreeStats};
use super::XTreeConfig;
use crate::bbox::Mbr;
use crate::rstar::{choose_subtree_inner, choose_subtree_leaf_level, rstar_split};
use mq_metric::{ObjectId, Vector};

pub(super) enum BuildNode {
    Leaf {
        entries: Vec<(ObjectId, Vector)>,
    },
    Dir {
        /// `(child MBR, child node index, child is leaf)`
        children: Vec<(Mbr, u32)>,
        children_are_leaves: bool,
        /// Number of blocks this node occupies (> 1 ⇒ supernode).
        blocks: u32,
    },
}

pub(super) struct Builder {
    cfg: XTreeConfig,
    dim: usize,
    nodes: Vec<BuildNode>,
    root: u32,
    supernode_events: u64,
    /// Whether the current top-level insert already triggered a forced
    /// reinsertion (R\*: once per level per insert; we reinsert at the
    /// leaf level).
    leaf_reinserted: bool,
    /// Entries evicted by forced reinsertion, awaiting re-insertion.
    pending_reinserts: Vec<(ObjectId, Vector)>,
    reinsert_events: u64,
}

enum InsertOutcome {
    /// Node absorbed the point; its MBR may have grown to `mbr`.
    Grown { mbr: Mbr },
    /// Node split into itself + a new sibling.
    Split {
        mbr: Mbr,
        sibling: u32,
        sibling_mbr: Mbr,
    },
}

impl Builder {
    pub(super) fn new(cfg: XTreeConfig, dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.max_overlap),
            "max_overlap must be in [0, 1)"
        );
        assert!(
            (0.0..=0.5).contains(&cfg.min_fill),
            "min_fill must be in [0, 0.5]"
        );
        assert!(
            (0.0..1.0).contains(&cfg.reinsert_fraction),
            "reinsert_fraction must be in [0, 1)"
        );
        Self {
            cfg,
            dim,
            nodes: vec![BuildNode::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            supernode_events: 0,
            leaf_reinserted: false,
            pending_reinserts: Vec::new(),
            reinsert_events: 0,
        }
    }

    pub(super) fn insert(&mut self, id: ObjectId, point: Vector) {
        assert_eq!(point.dim(), self.dim, "point dimensionality mismatch");
        self.leaf_reinserted = false;
        self.insert_one(id, point);
        // Forced reinsertion: re-route the evicted entries; with
        // `leaf_reinserted` latched they split normally on overflow.
        while let Some((rid, rpoint)) = self.pending_reinserts.pop() {
            self.insert_one(rid, rpoint);
        }
    }

    fn insert_one(&mut self, id: ObjectId, point: Vector) {
        match self.insert_rec(self.root, id, point) {
            InsertOutcome::Grown { .. } => {}
            InsertOutcome::Split {
                mbr,
                sibling,
                sibling_mbr,
            } => {
                let children_are_leaves =
                    matches!(self.nodes[self.root as usize], BuildNode::Leaf { .. });
                let new_root = BuildNode::Dir {
                    children: vec![(mbr, self.root), (sibling_mbr, sibling)],
                    children_are_leaves,
                    blocks: 1,
                };
                self.nodes.push(new_root);
                self.root = (self.nodes.len() - 1) as u32;
            }
        }
    }

    fn insert_rec(&mut self, node: u32, id: ObjectId, point: Vector) -> InsertOutcome {
        let point_mbr = Mbr::from_point(&point);
        match &mut self.nodes[node as usize] {
            BuildNode::Leaf { entries } => {
                entries.push((id, point));
                if entries.len() <= self.cfg.leaf_capacity(self.dim) {
                    let mbr = Mbr::from_points(entries.iter().map(|(_, p)| p));
                    return InsertOutcome::Grown { mbr };
                }
                if !self.leaf_reinserted && self.cfg.reinsert_fraction > 0.0 && node != self.root {
                    self.leaf_reinserted = true;
                    self.reinsert_events += 1;
                    return self.force_reinsert(node);
                }
                self.split_leaf(node)
            }
            BuildNode::Dir {
                children,
                children_are_leaves,
                ..
            } => {
                let child_mbrs: Vec<Mbr> = children.iter().map(|(m, _)| m.clone()).collect();
                let chosen = if *children_are_leaves {
                    choose_subtree_leaf_level(&child_mbrs, &point_mbr)
                } else {
                    choose_subtree_inner(&child_mbrs, &point_mbr)
                };
                let child_id = children[chosen].1;
                match self.insert_rec(child_id, id, point) {
                    InsertOutcome::Grown { mbr } => {
                        let BuildNode::Dir { children, .. } = &mut self.nodes[node as usize] else {
                            unreachable!("directory node changed kind");
                        };
                        children[chosen].0 = mbr;
                        InsertOutcome::Grown {
                            mbr: self.node_mbr(node),
                        }
                    }
                    InsertOutcome::Split {
                        mbr,
                        sibling,
                        sibling_mbr,
                    } => {
                        let BuildNode::Dir { children, .. } = &mut self.nodes[node as usize] else {
                            unreachable!("directory node changed kind");
                        };
                        children[chosen].0 = mbr;
                        children.push((sibling_mbr, sibling));
                        self.maybe_split_dir(node)
                    }
                }
            }
        }
    }

    /// R\* forced reinsertion: evicts the configured fraction of entries
    /// farthest from the leaf's center; they are re-inserted from the root
    /// by the caller.
    fn force_reinsert(&mut self, node: u32) -> InsertOutcome {
        let BuildNode::Leaf { entries } = &mut self.nodes[node as usize] else {
            unreachable!("force_reinsert on a directory node");
        };
        let mbr = Mbr::from_points(entries.iter().map(|(_, p)| p));
        let center = mbr.center();
        let evict = ((entries.len() as f64 * self.cfg.reinsert_fraction) as usize).max(1);
        // Sort descending by distance from the center; evict the prefix.
        entries.sort_by(|a, b| {
            let da = center_dist(&center, &a.1);
            let db = center_dist(&center, &b.1);
            db.partial_cmp(&da).expect("finite coordinates")
        });
        let remaining = entries.split_off(evict);
        let evicted = std::mem::replace(entries, remaining);
        self.pending_reinserts.extend(evicted);
        let BuildNode::Leaf { entries } = &self.nodes[node as usize] else {
            unreachable!()
        };
        InsertOutcome::Grown {
            mbr: Mbr::from_points(entries.iter().map(|(_, p)| p)),
        }
    }

    /// Splits an overflowing leaf with the R\* topological split.
    fn split_leaf(&mut self, node: u32) -> InsertOutcome {
        let BuildNode::Leaf { entries } = &mut self.nodes[node as usize] else {
            unreachable!("split_leaf on a directory node");
        };
        let entries = std::mem::take(entries);
        let mbrs: Vec<Mbr> = entries.iter().map(|(_, p)| Mbr::from_point(p)).collect();
        let min_fill = ((entries.len() as f64 * self.cfg.min_fill) as usize).max(1);
        let split = rstar_split(&mbrs, min_fill);
        let mut first = Vec::with_capacity(split.first.len());
        let mut second = Vec::with_capacity(split.second.len());
        let mut taken: Vec<Option<(ObjectId, Vector)>> = entries.into_iter().map(Some).collect();
        for &i in &split.first {
            first.push(taken[i].take().expect("split index used twice"));
        }
        for &i in &split.second {
            second.push(taken[i].take().expect("split index used twice"));
        }
        self.nodes[node as usize] = BuildNode::Leaf { entries: first };
        self.nodes.push(BuildNode::Leaf { entries: second });
        let sibling = (self.nodes.len() - 1) as u32;
        InsertOutcome::Split {
            mbr: split.first_mbr,
            sibling,
            sibling_mbr: split.second_mbr,
        }
    }

    /// Handles an overflowing directory node: split if the best split's
    /// overlap is tolerable, otherwise extend the node into a supernode.
    fn maybe_split_dir(&mut self, node: u32) -> InsertOutcome {
        let (len, blocks) = match &self.nodes[node as usize] {
            BuildNode::Dir {
                children, blocks, ..
            } => (children.len(), *blocks),
            BuildNode::Leaf { .. } => unreachable!("maybe_split_dir on a leaf"),
        };
        let capacity = self.cfg.dir_capacity(self.dim) * blocks as usize;
        if len <= capacity {
            return InsertOutcome::Grown {
                mbr: self.node_mbr(node),
            };
        }

        let BuildNode::Dir { children, .. } = &self.nodes[node as usize] else {
            unreachable!();
        };
        let mbrs: Vec<Mbr> = children.iter().map(|(m, _)| m.clone()).collect();
        let min_fill = ((len as f64 * self.cfg.min_fill) as usize).max(1);
        let split = rstar_split(&mbrs, min_fill);

        if split.overlap_fraction() > self.cfg.max_overlap {
            // X-tree supernode: extend the node by one block instead of
            // performing a high-overlap split.
            let BuildNode::Dir { blocks, .. } = &mut self.nodes[node as usize] else {
                unreachable!();
            };
            *blocks += 1;
            self.supernode_events += 1;
            return InsertOutcome::Grown {
                mbr: self.node_mbr(node),
            };
        }

        let BuildNode::Dir {
            children,
            children_are_leaves,
            ..
        } = &mut self.nodes[node as usize]
        else {
            unreachable!();
        };
        let children_are_leaves = *children_are_leaves;
        let old = std::mem::take(children);
        let mut taken: Vec<Option<(Mbr, u32)>> = old.into_iter().map(Some).collect();
        let mut first = Vec::with_capacity(split.first.len());
        let mut second = Vec::with_capacity(split.second.len());
        for &i in &split.first {
            first.push(taken[i].take().expect("split index used twice"));
        }
        for &i in &split.second {
            second.push(taken[i].take().expect("split index used twice"));
        }
        self.nodes[node as usize] = BuildNode::Dir {
            children: first,
            children_are_leaves,
            blocks: 1,
        };
        self.nodes.push(BuildNode::Dir {
            children: second,
            children_are_leaves,
            blocks: 1,
        });
        let sibling = (self.nodes.len() - 1) as u32;
        InsertOutcome::Split {
            mbr: split.first_mbr,
            sibling,
            sibling_mbr: split.second_mbr,
        }
    }

    fn node_mbr(&self, node: u32) -> Mbr {
        match &self.nodes[node as usize] {
            BuildNode::Leaf { entries } => Mbr::from_points(entries.iter().map(|(_, p)| p)),
            BuildNode::Dir { children, .. } => {
                let mut it = children.iter();
                let mut mbr = it.next().expect("directory node has children").0.clone();
                for (m, _) in it {
                    mbr.expand_mbr(m);
                }
                mbr
            }
        }
    }

    /// Freezes the builder: leaves become data pages in DFS order; the
    /// directory is converted into the compact frozen representation.
    pub(super) fn freeze(self) -> (XTree, Vec<Vec<(ObjectId, Vector)>>) {
        let mut groups: Vec<Vec<(ObjectId, Vector)>> = Vec::new();
        let mut leaf_mbrs: Vec<Mbr> = Vec::new();
        let mut frozen = FrozenNodes::default();
        let mut supernode_count = 0u64;
        let mut max_blocks = 1u32;

        // DFS conversion.
        fn convert(
            nodes: &[BuildNode],
            node: u32,
            groups: &mut Vec<Vec<(ObjectId, Vector)>>,
            leaf_mbrs: &mut Vec<Mbr>,
            frozen: &mut FrozenNodes,
            supernode_count: &mut u64,
            max_blocks: &mut u32,
        ) -> (Target, Mbr) {
            match &nodes[node as usize] {
                BuildNode::Leaf { entries } => {
                    assert!(!entries.is_empty(), "frozen leaf must be non-empty");
                    let mbr = Mbr::from_points(entries.iter().map(|(_, p)| p));
                    let page = mq_storage::PageId(groups.len() as u32);
                    groups.push(entries.clone());
                    leaf_mbrs.push(mbr.clone());
                    (Target::Page(page), mbr)
                }
                BuildNode::Dir {
                    children, blocks, ..
                } => {
                    if *blocks > 1 {
                        *supernode_count += 1;
                        *max_blocks = (*max_blocks).max(*blocks);
                    }
                    let mut out_children = Vec::with_capacity(children.len());
                    let mut mbr: Option<Mbr> = None;
                    for (_, child) in children {
                        let (target, child_mbr) = convert(
                            nodes,
                            *child,
                            groups,
                            leaf_mbrs,
                            frozen,
                            supernode_count,
                            max_blocks,
                        );
                        match &mut mbr {
                            None => mbr = Some(child_mbr.clone()),
                            Some(m) => m.expand_mbr(&child_mbr),
                        }
                        out_children.push((child_mbr, target));
                    }
                    let idx = frozen.push_dir(out_children);
                    (Target::Dir(idx), mbr.expect("directory node has children"))
                }
            }
        }

        let has_objects = match &self.nodes[self.root as usize] {
            BuildNode::Leaf { entries } => !entries.is_empty(),
            BuildNode::Dir { .. } => true,
        };
        let root = if has_objects {
            let (target, _) = convert(
                &self.nodes,
                self.root,
                &mut groups,
                &mut leaf_mbrs,
                &mut frozen,
                &mut supernode_count,
                &mut max_blocks,
            );
            Some(target)
        } else {
            None
        };

        let height = tree_height(&self.nodes, self.root);
        let stats = XTreeStats {
            height,
            dir_nodes: frozen.dir_count(),
            supernodes: supernode_count as usize,
            max_supernode_blocks: max_blocks,
            data_pages: groups.len(),
            supernode_events: self.supernode_events,
            reinsert_events: self.reinsert_events,
        };
        let tree = XTree::from_parts(self.dim, frozen, root, leaf_mbrs, stats);
        (tree, groups)
    }
}

fn center_dist(center: &[f64], p: &Vector) -> f64 {
    center
        .iter()
        .zip(p.components())
        .map(|(c, &x)| {
            let d = c - x as f64;
            d * d
        })
        .sum()
}

fn tree_height(nodes: &[BuildNode], node: u32) -> usize {
    match &nodes[node as usize] {
        BuildNode::Leaf { .. } => 1,
        BuildNode::Dir { children, .. } => {
            1 + children
                .iter()
                .map(|(_, c)| tree_height(nodes, *c))
                .max()
                .unwrap_or(0)
        }
    }
}

//! Z-order (Morton-code) bulk loading — an alternative physical
//! clustering.
//!
//! Sorting points along a space-filling curve before packing them into
//! pages is the classic cheap bulk-loading recipe: one sort, full pages,
//! and spatial locality that rewards sequential I/O. Compared to the
//! VAMSplit loader ([`super::XTree::bulk_load`]) it produces slightly
//! looser leaf MBRs (curve jumps) but clusters the *page sequence* better,
//! which matters for the disk model's sequential-read discount. The
//! `ablations` bench compares both.
//!
//! Morton keys interleave the top `B = 64 / d` bits of each quantized
//! coordinate, so the full key fits one `u64` for any dimensionality up to
//! 64. Ties (identical keys) are broken by object id.

use super::frozen::{FrozenNodes, Target, XTree, XTreeStats};
use super::XTreeConfig;
use crate::bbox::Mbr;
use mq_metric::{ObjectId, Vector};
use mq_storage::{Dataset, PageId, PagedDatabase};

/// Builds an X-tree by Z-order bulk loading.
///
/// # Panics
/// Panics if the dataset's vectors do not share one dimensionality or the
/// dimensionality exceeds 64.
pub fn bulk_load_zorder(
    dataset: &Dataset<Vector>,
    cfg: XTreeConfig,
) -> (XTree, PagedDatabase<Vector>) {
    let dim = dataset.objects().first().map(|v| v.dim()).unwrap_or(1);
    assert!(
        dataset.objects().iter().all(|v| v.dim() == dim),
        "all vectors must share one dimensionality"
    );
    assert!(
        dim <= 64,
        "z-order bulk loading supports at most 64 dimensions"
    );

    // Per-dimension min/max for quantization.
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for v in dataset.objects() {
        for (d, &c) in v.components().iter().enumerate() {
            lo[d] = lo[d].min(c);
            hi[d] = hi[d].max(c);
        }
    }

    let bits = (64 / dim).clamp(1, 16);
    let levels = 1u64 << bits;
    let key = |v: &Vector| -> u64 {
        let mut k = 0u64;
        // Interleave bit planes from most significant to least.
        for plane in (0..bits).rev() {
            for d in 0..dim {
                let span = (hi[d] - lo[d]).max(f32::MIN_POSITIVE);
                let cell =
                    (((v.components()[d] - lo[d]) / span) as f64 * (levels - 1) as f64) as u64;
                k = (k << 1) | ((cell >> plane) & 1);
            }
        }
        k
    };

    let mut order: Vec<(u64, ObjectId)> = dataset.iter().map(|(id, v)| (key(v), id)).collect();
    order.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let leaf_cap = cfg.leaf_capacity(dim);
    let dir_cap = cfg.dir_capacity(dim);
    let groups: Vec<Vec<(ObjectId, Vector)>> = order
        .chunks(leaf_cap)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(_, id)| (id, dataset.object(id).clone()))
                .collect()
        })
        .collect();
    let leaf_mbrs: Vec<Mbr> = groups
        .iter()
        .map(|g| Mbr::from_points(g.iter().map(|(_, p)| p)))
        .collect();

    let mut frozen = FrozenNodes::default();
    let mut level: Vec<(Mbr, Target)> = leaf_mbrs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, m)| (m, Target::Page(PageId(i as u32))))
        .collect();
    let mut height = if level.is_empty() { 0 } else { 1 };
    while level.len() > 1 {
        height += 1;
        let mut next = Vec::with_capacity(level.len().div_ceil(dir_cap));
        for chunk in level.chunks(dir_cap) {
            let mut mbr = chunk[0].0.clone();
            for (m, _) in &chunk[1..] {
                mbr.expand_mbr(m);
            }
            let idx = frozen.push_dir(chunk.to_vec());
            next.push((mbr, Target::Dir(idx)));
        }
        level = next;
    }
    let root = level.pop().map(|(_, t)| t);

    let stats = XTreeStats {
        height,
        dir_nodes: frozen.dir_count(),
        supernodes: 0,
        max_supernode_blocks: 1,
        data_pages: groups.len(),
        supernode_events: 0,
        reinsert_events: 0,
    };
    let tree = XTree::from_parts(dim, frozen, root, leaf_mbrs, stats);
    let db = PagedDatabase::from_groups(groups, cfg.layout);
    (tree, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::SimilarityIndex;
    use mq_metric::{Euclidean, Metric};
    use mq_storage::PageLayout;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                Vector::new(
                    (0..dim)
                        .map(|_| (next() * 100.0) as f32)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn tiny_cfg() -> XTreeConfig {
        XTreeConfig {
            layout: PageLayout::new(160, 16),
            ..Default::default()
        }
    }

    #[test]
    fn zorder_covers_all_objects_and_answers_exactly() {
        let pts = random_points(500, 4, 31);
        let ds = Dataset::new(pts);
        let (tree, db) = bulk_load_zorder(&ds, tiny_cfg());
        assert_eq!(db.object_count(), 500);
        assert_eq!(tree.page_count(), db.page_count());

        // Range answers equal brute force.
        let q = ds.object(ObjectId(123)).clone();
        let eps = 20.0;
        let mut plan = tree.plan(&q);
        let mut found = Vec::new();
        while let Some((pid, _)) = plan.next(eps) {
            for (oid, v) in db.page(pid).records() {
                if Euclidean.distance(&q, v) <= eps {
                    found.push(*oid);
                }
            }
        }
        found.sort_unstable();
        let expected: Vec<ObjectId> = ds
            .iter()
            .filter(|(_, v)| Euclidean.distance(&q, v) <= eps)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(found, expected);
    }

    #[test]
    fn zorder_pages_are_spatially_coherent() {
        // Consecutive pages should be near each other: average center
        // distance of adjacent pages well below that of random page pairs.
        let pts = random_points(2000, 2, 37);
        let ds = Dataset::new(pts);
        let (tree, db) = bulk_load_zorder(&ds, tiny_cfg());
        let centers: Vec<Vec<f64>> = db.page_ids().map(|p| tree.leaf_mbr(p).center()).collect();
        let dist = |a: &[f64], b: &[f64]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let n = centers.len();
        let adjacent: f64 = (1..n)
            .map(|i| dist(&centers[i - 1], &centers[i]))
            .sum::<f64>()
            / (n - 1) as f64;
        let far: f64 = (0..n - 1)
            .map(|i| dist(&centers[i], &centers[(i + n / 2) % n]))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!(
            adjacent * 2.0 < far,
            "z-order adjacency lost: adjacent {adjacent:.2} vs far {far:.2}"
        );
    }

    #[test]
    fn zorder_handles_degenerate_data() {
        // All identical points still build a valid tree.
        let pts = vec![Vector::new(vec![1.0, 1.0]); 20];
        let ds = Dataset::new(pts);
        let (tree, db) = bulk_load_zorder(&ds, tiny_cfg());
        assert_eq!(db.object_count(), 20);
        let q = Vector::new(vec![1.0, 1.0]);
        let mut plan = tree.plan(&q);
        let mut count = 0;
        while plan.next(0.0).is_some() {
            count += 1;
        }
        assert_eq!(count, db.page_count(), "all pages contain exact matches");
    }

    #[test]
    fn high_dimensional_keys_fit() {
        // 64 / 20 = 3 bits per dimension still produces a working tree.
        let pts = random_points(300, 20, 41);
        let ds = Dataset::new(pts);
        let (tree, db) = bulk_load_zorder(&ds, XTreeConfig::default());
        assert_eq!(tree.page_count(), db.page_count());
        assert!(db.object_count() == 300);
    }
}

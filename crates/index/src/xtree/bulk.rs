//! VAMSplit-style bulk loading.
//!
//! Recursively partitions the point set at the median of the dimension with
//! maximum spread until partitions fit into one data page. The recursion
//! order yields spatially coherent leaves, so assigning page ids in that
//! order gives nearby leaves adjacent physical addresses — rewarding the
//! disk simulator's sequential-read classification just like a clustering
//! bulk load on a real disk would.

use super::frozen::{FrozenNodes, Target, XTree, XTreeStats};
use super::XTreeConfig;
use crate::bbox::Mbr;
use mq_metric::{ObjectId, Vector};
use mq_storage::PageId;

pub(super) fn bulk_load(
    cfg: &XTreeConfig,
    dim: usize,
    mut objects: Vec<(ObjectId, Vector)>,
) -> (XTree, Vec<Vec<(ObjectId, Vector)>>) {
    assert!(dim > 0, "dimensionality must be positive");
    let leaf_cap = cfg.leaf_capacity(dim);
    let dir_cap = cfg.dir_capacity(dim);

    let mut groups: Vec<Vec<(ObjectId, Vector)>> = Vec::new();
    partition(&mut objects, leaf_cap, dim, &mut groups);

    let leaf_mbrs: Vec<Mbr> = groups
        .iter()
        .map(|g| Mbr::from_points(g.iter().map(|(_, p)| p)))
        .collect();

    // Build the directory bottom-up over consecutive runs of children.
    let mut frozen = FrozenNodes::default();
    let mut level: Vec<(Mbr, Target)> = leaf_mbrs
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, m)| (m, Target::Page(PageId(i as u32))))
        .collect();
    let mut height = if level.is_empty() { 0 } else { 1 };
    while level.len() > 1 {
        height += 1;
        let mut next = Vec::with_capacity(level.len().div_ceil(dir_cap));
        for chunk in level.chunks(dir_cap) {
            let mut mbr = chunk[0].0.clone();
            for (m, _) in &chunk[1..] {
                mbr.expand_mbr(m);
            }
            let idx = frozen.push_dir(chunk.to_vec());
            next.push((mbr, Target::Dir(idx)));
        }
        level = next;
    }
    let root = level.pop().map(|(_, t)| t);

    let stats = XTreeStats {
        height,
        dir_nodes: frozen.dir_count(),
        supernodes: 0,
        max_supernode_blocks: 1,
        data_pages: groups.len(),
        supernode_events: 0,
        reinsert_events: 0,
    };
    (
        XTree::from_parts(dim, frozen, root, leaf_mbrs, stats),
        groups,
    )
}

/// Recursive max-spread median partitioning.
fn partition(
    objects: &mut [(ObjectId, Vector)],
    leaf_cap: usize,
    dim: usize,
    out: &mut Vec<Vec<(ObjectId, Vector)>>,
) {
    if objects.is_empty() {
        return;
    }
    if objects.len() <= leaf_cap {
        out.push(objects.to_vec());
        return;
    }
    // Dimension with maximum spread.
    let mut best_dim = 0usize;
    let mut best_spread = -1.0f32;
    for d in 0..dim {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for (_, p) in objects.iter() {
            let c = p[d];
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best_dim = d;
        }
    }
    // Split at a page-aligned position near the median so that the left
    // half packs full pages (VAMSplit's fill optimization).
    let half_pages = objects.len().div_ceil(leaf_cap) / 2;
    let mid = (half_pages * leaf_cap).clamp(1, objects.len() - 1);
    objects.select_nth_unstable_by(mid, |a, b| {
        a.1[best_dim]
            .partial_cmp(&b.1[best_dim])
            .expect("finite coordinates")
    });
    let (left, right) = objects.split_at_mut(mid);
    partition(left, leaf_cap, dim, out);
    partition(right, leaf_cap, dim, out);
}

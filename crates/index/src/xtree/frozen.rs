//! The frozen (query-time) X-tree and its Hjaltason–Samet page plan.

use super::build::Builder;
use super::{bulk, XTreeConfig};
use crate::bbox::Mbr;
use crate::planner::{PagePlan, SimilarityIndex};
use crate::util::MinHeap;
use mq_metric::{ObjectId, Vector};
use mq_storage::{Dataset, PageId, PagedDatabase};

/// Where a directory entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Target {
    /// An inner directory node (index into the frozen node arena).
    Dir(u32),
    /// A data page (X-tree leaf).
    Page(PageId),
}

/// Arena of frozen directory nodes.
#[derive(Debug, Default)]
pub(super) struct FrozenNodes {
    dirs: Vec<Vec<(Mbr, Target)>>,
}

impl FrozenNodes {
    pub(super) fn push_dir(&mut self, children: Vec<(Mbr, Target)>) -> u32 {
        self.dirs.push(children);
        (self.dirs.len() - 1) as u32
    }

    pub(super) fn dir_count(&self) -> usize {
        self.dirs.len()
    }

    fn children(&self, idx: u32) -> &[(Mbr, Target)] {
        &self.dirs[idx as usize]
    }
}

/// Construction statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XTreeStats {
    /// Tree height including the leaf level (a single-leaf tree has height 1).
    pub height: usize,
    /// Number of directory nodes.
    pub dir_nodes: usize,
    /// Number of supernodes (directory nodes spanning > 1 block).
    pub supernodes: usize,
    /// Largest supernode size in blocks.
    pub max_supernode_blocks: u32,
    /// Number of data pages (leaves).
    pub data_pages: usize,
    /// How many times an overflow was absorbed by extending a supernode.
    pub supernode_events: u64,
    /// How many forced reinsertions occurred during dynamic construction.
    pub reinsert_events: u64,
}

/// The frozen X-tree: an in-memory directory over the data pages of one
/// [`PagedDatabase`].
///
/// ```
/// use mq_index::{SimilarityIndex, XTree, XTreeConfig};
/// use mq_metric::Vector;
/// use mq_storage::Dataset;
///
/// let ds = Dataset::new(
///     (0..1000).map(|i| Vector::new(vec![(i % 37) as f32, (i % 61) as f32])).collect(),
/// );
/// let (tree, db) = XTree::bulk_load(&ds, XTreeConfig::default());
/// assert_eq!(tree.page_count(), db.page_count());
///
/// // The plan yields candidate pages best-first by MINDIST.
/// let q = Vector::new(vec![5.0, 5.0]);
/// let mut plan = tree.plan(&q);
/// let (first_page, lower_bound) = plan.next(f64::INFINITY).unwrap();
/// assert!(lower_bound <= tree.page_mindist(&q, first_page) + 1e-12);
/// ```
#[derive(Debug)]
pub struct XTree {
    dim: usize,
    nodes: FrozenNodes,
    root: Option<Target>,
    leaf_mbrs: Vec<Mbr>,
    stats: XTreeStats,
}

impl XTree {
    pub(super) fn from_parts(
        dim: usize,
        nodes: FrozenNodes,
        root: Option<Target>,
        leaf_mbrs: Vec<Mbr>,
        stats: XTreeStats,
    ) -> Self {
        Self {
            dim,
            nodes,
            root,
            leaf_mbrs,
            stats,
        }
    }

    /// Builds an X-tree by VAMSplit bulk loading (the default for large
    /// datasets) and lays the leaves out as the data pages of the returned
    /// database.
    ///
    /// # Panics
    /// Panics if the dataset's vectors do not share one dimensionality.
    pub fn bulk_load(dataset: &Dataset<Vector>, cfg: XTreeConfig) -> (Self, PagedDatabase<Vector>) {
        let dim = check_dim(dataset);
        let objects: Vec<(ObjectId, Vector)> =
            dataset.iter().map(|(id, v)| (id, v.clone())).collect();
        let (tree, groups) = bulk::bulk_load(&cfg, dim, objects);
        let db = PagedDatabase::from_groups(groups, cfg.layout);
        (tree, db)
    }

    /// Builds an X-tree by dynamic R\* insertion with supernodes, then
    /// freezes it into a database layout.
    ///
    /// # Panics
    /// Panics if the dataset's vectors do not share one dimensionality.
    pub fn insert_load(
        dataset: &Dataset<Vector>,
        cfg: XTreeConfig,
    ) -> (Self, PagedDatabase<Vector>) {
        let dim = check_dim(dataset);
        let mut builder = Builder::new(cfg, dim);
        for (id, v) in dataset.iter() {
            builder.insert(id, v.clone());
        }
        let (tree, groups) = builder.freeze();
        let db = PagedDatabase::from_groups(groups, cfg.layout);
        (tree, db)
    }

    /// Construction statistics.
    pub fn stats(&self) -> XTreeStats {
        self.stats
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The MBR of a data page (leaf).
    pub fn leaf_mbr(&self, page: PageId) -> &Mbr {
        &self.leaf_mbrs[page.index()]
    }
}

fn check_dim(dataset: &Dataset<Vector>) -> usize {
    let dim = dataset.objects().first().map(|v| v.dim()).unwrap_or(1);
    assert!(
        dataset.objects().iter().all(|v| v.dim() == dim),
        "all vectors must share one dimensionality"
    );
    dim
}

/// Best-first traversal state for one query (Hjaltason–Samet).
struct XTreePlan<'a> {
    tree: &'a XTree,
    query: &'a Vector,
    frontier: MinHeap<Target>,
}

impl PagePlan for XTreePlan<'_> {
    fn next(&mut self, query_dist: f64) -> Option<(PageId, f64)> {
        while let Some(top) = self.frontier.peek_prio() {
            // The frontier minimum is a lower bound on every remaining
            // page's distance; once it exceeds the (non-increasing) query
            // distance nothing can qualify anymore.
            if top > query_dist {
                self.frontier.clear();
                return None;
            }
            let (lb, target) = self.frontier.pop().expect("frontier is non-empty");
            match target {
                Target::Page(page) => return Some((page, lb)),
                Target::Dir(idx) => {
                    for (mbr, child) in self.tree.nodes.children(idx) {
                        let child_lb = mbr.mindist(self.query);
                        if child_lb <= query_dist {
                            self.frontier.push(child_lb, *child);
                        }
                    }
                }
            }
        }
        None
    }
}

impl SimilarityIndex<Vector> for XTree {
    fn plan<'a>(&'a self, query: &'a Vector) -> Box<dyn PagePlan + 'a> {
        assert!(
            self.root.is_none() || query.dim() == self.dim,
            "query dimensionality mismatch: {} vs index {}",
            query.dim(),
            self.dim
        );
        let mut frontier = MinHeap::new();
        match self.root {
            Some(Target::Page(page)) => {
                frontier.push(
                    self.leaf_mbrs[page.index()].mindist(query),
                    Target::Page(page),
                );
            }
            Some(Target::Dir(idx)) => frontier.push(0.0, Target::Dir(idx)),
            None => {}
        }
        Box::new(XTreePlan {
            tree: self,
            query,
            frontier,
        })
    }

    fn page_mindist(&self, query: &Vector, page: PageId) -> f64 {
        self.leaf_mbrs[page.index()].mindist(query)
    }

    fn page_count(&self) -> usize {
        self.leaf_mbrs.len()
    }

    fn name(&self) -> &str {
        "x-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::{Euclidean, Metric};
    use mq_storage::PageLayout;

    /// Deterministic pseudo-random points in `[0, 100)^dim`.
    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                Vector::new(
                    (0..dim)
                        .map(|_| (next() * 100.0) as f32)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn tiny_cfg() -> XTreeConfig {
        // Small pages so even small datasets produce multi-level trees:
        // 4-d f32 point = 16 bytes payload + 16 header = 32; 160/32 = 5/leaf.
        XTreeConfig {
            layout: PageLayout::new(160, 16),
            ..XTreeConfig::default()
        }
    }

    fn drain_all(tree: &XTree, q: &Vector) -> Vec<PageId> {
        let mut plan = tree.plan(q);
        let mut out = Vec::new();
        while let Some((pid, _)) = plan.next(f64::INFINITY) {
            out.push(pid);
        }
        out
    }

    #[test]
    fn bulk_load_covers_all_objects() {
        let pts = random_points(500, 4, 7);
        let ds = Dataset::new(pts);
        let (tree, db) = XTree::bulk_load(&ds, tiny_cfg());
        assert_eq!(db.object_count(), 500);
        assert_eq!(tree.page_count(), db.page_count());
        assert!(tree.stats().height >= 2);
        // Every object is on the page its directory entry says.
        for (id, v) in ds.iter() {
            let (pid, slot) = db.locate(id);
            let (oid, obj) = &db.page(pid).records()[slot as usize];
            assert_eq!(*oid, id);
            assert_eq!(obj.components(), v.components());
        }
    }

    #[test]
    fn insert_load_covers_all_objects() {
        let pts = random_points(300, 4, 13);
        let ds = Dataset::new(pts);
        let (tree, db) = XTree::insert_load(&ds, tiny_cfg());
        assert_eq!(db.object_count(), 300);
        assert_eq!(tree.page_count(), db.page_count());
        // The plan visits every page exactly once with infinite query dist.
        let q = Vector::new(vec![50.0, 50.0, 50.0, 50.0]);
        let mut pages = drain_all(&tree, &q);
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), db.page_count());
    }

    #[test]
    fn leaf_mbrs_contain_their_points() {
        let ds = Dataset::new(random_points(400, 3, 29));
        for (tree, db) in [
            XTree::bulk_load(&ds, tiny_cfg()),
            XTree::insert_load(&ds, tiny_cfg()),
        ] {
            for pid in db.page_ids() {
                let mbr = tree.leaf_mbr(pid);
                for (_, v) in db.page(pid).records() {
                    assert!(
                        mbr.contains_point(v),
                        "{} not in leaf MBR of {pid}",
                        v.components()[0]
                    );
                }
            }
        }
    }

    #[test]
    fn plan_yields_pages_in_mindist_order() {
        let ds = Dataset::new(random_points(400, 4, 3));
        let (tree, _db) = XTree::bulk_load(&ds, tiny_cfg());
        let q = Vector::new(vec![10.0, 90.0, 40.0, 60.0]);
        let mut plan = tree.plan(&q);
        let mut last = 0.0f64;
        let mut count = 0;
        while let Some((pid, lb)) = plan.next(f64::INFINITY) {
            assert!(lb >= last - 1e-12, "mindist order violated");
            assert!((tree.page_mindist(&q, pid) - lb).abs() < 1e-12);
            last = lb;
            count += 1;
        }
        assert_eq!(count, tree.page_count());
    }

    #[test]
    fn plan_prunes_beyond_query_dist() {
        let ds = Dataset::new(random_points(400, 4, 5));
        let (tree, db) = XTree::bulk_load(&ds, tiny_cfg());
        let q = Vector::new(vec![0.0, 0.0, 0.0, 0.0]);
        let eps = 30.0;
        let mut plan = tree.plan(&q);
        let mut visited = Vec::new();
        while let Some((pid, lb)) = plan.next(eps) {
            assert!(lb <= eps);
            visited.push(pid);
        }
        // Soundness: every object within eps lives on a visited page.
        let visited_set: std::collections::HashSet<PageId> = visited.iter().copied().collect();
        for pid in db.page_ids() {
            for (oid, v) in db.page(pid).records() {
                if Euclidean.distance(&q, v) <= eps {
                    assert!(
                        visited_set.contains(&pid),
                        "page {pid} with answer {oid} pruned"
                    );
                }
            }
        }
    }

    #[test]
    fn shrinking_query_dist_stops_traversal() {
        let ds = Dataset::new(random_points(400, 4, 11));
        let (tree, _db) = XTree::bulk_load(&ds, tiny_cfg());
        let q = Vector::new(vec![50.0; 4]);
        let mut plan = tree.plan(&q);
        // First page at distance ~0; then shrink the radius to zero.
        let first = plan.next(f64::INFINITY);
        assert!(first.is_some());
        let visited_after: Vec<_> = std::iter::from_fn(|| plan.next(0.0)).collect();
        // Only pages whose MBR contains q (mindist 0) may still come.
        for (_, lb) in &visited_after {
            assert_eq!(*lb, 0.0);
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(Vec::<Vector>::new());
        let (tree, db) = XTree::bulk_load(&ds, tiny_cfg());
        assert_eq!(db.page_count(), 0);
        assert_eq!(tree.page_count(), 0);
        let q = Vector::new(vec![0.0; 4]);
        assert!(tree.plan(&q).next(f64::INFINITY).is_none());
    }

    #[test]
    fn single_object_dataset() {
        let ds = Dataset::new(vec![Vector::new(vec![1.0, 2.0, 3.0, 4.0])]);
        let (tree, db) = XTree::insert_load(&ds, tiny_cfg());
        assert_eq!(db.page_count(), 1);
        let q = Vector::new(vec![0.0; 4]);
        let mut plan = tree.plan(&q);
        let (pid, lb) = plan.next(f64::INFINITY).expect("one page");
        assert_eq!(pid, PageId(0));
        assert!(lb > 0.0);
        assert!(plan.next(f64::INFINITY).is_none());
    }

    #[test]
    fn clustered_data_produces_selective_pages() {
        // Two far-apart clusters: a query in one cluster must not visit the
        // other cluster's pages within a small radius.
        let mut pts = random_points(200, 4, 17);
        for p in random_points(200, 4, 19) {
            let shifted: Vec<f32> = p.components().iter().map(|c| c + 10_000.0).collect();
            pts.push(Vector::new(shifted));
        }
        let ds = Dataset::new(pts);
        let (tree, _db) = XTree::bulk_load(&ds, tiny_cfg());
        let q = Vector::new(vec![50.0; 4]);
        let mut plan = tree.plan(&q);
        let mut visited = 0;
        while plan.next(500.0).is_some() {
            visited += 1;
        }
        assert!(
            visited <= tree.page_count() / 2,
            "visited {visited} of {} pages",
            tree.page_count()
        );
    }

    #[test]
    fn forced_reinsertion_improves_or_matches_io_selectivity() {
        // With reinsertion the tree should be at least as selective as
        // without (R*'s motivation); in any case both must answer exactly.
        let pts = random_points(600, 4, 71);
        let ds = Dataset::new(pts);
        let with_cfg = tiny_cfg();
        let without_cfg = XTreeConfig {
            reinsert_fraction: 0.0,
            ..tiny_cfg()
        };
        let (with_tree, _) = XTree::insert_load(&ds, with_cfg);
        let (without_tree, _) = XTree::insert_load(&ds, without_cfg);
        assert!(
            with_tree.stats().reinsert_events > 0,
            "reinsertion never triggered"
        );
        assert_eq!(without_tree.stats().reinsert_events, 0);

        // Count pages visited for a batch of small range queries.
        let visited = |tree: &XTree| -> usize {
            let mut total = 0;
            for i in 0..20 {
                let q = ds.object(ObjectId(i * 29)).clone();
                let mut plan = tree.plan(&q);
                while plan.next(8.0).is_some() {
                    total += 1;
                }
            }
            total
        };
        let v_with = visited(&with_tree);
        let v_without = visited(&without_tree);
        // Reinsertion typically tightens MBRs; allow equality plus slack
        // for unlucky data, but catch gross regressions.
        assert!(
            v_with as f64 <= v_without as f64 * 1.25,
            "reinsertion degraded selectivity: {v_with} vs {v_without}"
        );
    }

    #[test]
    fn heavily_overlapping_data_creates_supernodes() {
        // Points jittered around one location: every leaf MBR overlaps
        // every other, so no directory split can stay below max_overlap
        // and the builder must extend supernodes instead.
        let mut pts = Vec::new();
        let mut x = 1u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 11) as f64 / (1u64 << 53) as f64) as f32
        };
        for _ in 0..400 {
            pts.push(Vector::new(vec![
                5.0 + 0.01 * next(),
                5.0 + 0.01 * next(),
                5.0 + 0.01 * next(),
                5.0 + 0.01 * next(),
            ]));
        }
        let ds = Dataset::new(pts);
        let (tree, db) = XTree::insert_load(&ds, tiny_cfg());
        assert!(
            tree.stats().supernodes > 0,
            "expected supernodes on fully-overlapping data: {:?}",
            tree.stats()
        );
        assert!(tree.stats().max_supernode_blocks > 1);
        // Queries remain exact despite supernodes.
        let q = Vector::new(vec![5.0, 5.0, 5.0, 5.0]);
        let mut plan = tree.plan(&q);
        let mut pages = Vec::new();
        while let Some((pid, _)) = plan.next(f64::INFINITY) {
            pages.push(pid);
        }
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), db.page_count());
    }

    #[test]
    fn insert_load_on_correlated_data_may_create_supernodes() {
        // Heavily duplicated coordinates force high-overlap directory splits
        // in a thin config; we only assert the structure remains consistent.
        let mut pts = Vec::new();
        for i in 0..300 {
            let base = (i % 5) as f32;
            pts.push(Vector::new(vec![base, base, base, (i as f32) * 1e-3]));
        }
        let ds = Dataset::new(pts);
        let (tree, db) = XTree::insert_load(&ds, tiny_cfg());
        assert_eq!(db.object_count(), 300);
        let q = Vector::new(vec![2.0, 2.0, 2.0, 0.1]);
        let mut pages = drain_all(&tree, &q);
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(
            pages.len(),
            tree.page_count(),
            "every page reachable exactly once"
        );
    }
}

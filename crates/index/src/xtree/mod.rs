//! The X-tree: an R\*-tree variant for high-dimensional point data
//! (Berchtold, Keim, Kriegel — VLDB'96; paper ref. \[2\]).
//!
//! The X-tree avoids the performance collapse of R-trees in high dimensions
//! by refusing to perform *high-overlap* directory splits: when the best
//! R\* split of an overflowing directory node would produce groups whose
//! MBRs overlap more than a threshold, the node becomes a **supernode** —
//! a directory node of variable size (multiple disk blocks) that is scanned
//! linearly instead of being split into useless overlapping halves.
//!
//! Construction paths:
//! * [`XTree::insert_load`] — dynamic R\* insertion (ChooseSubtree +
//!   topological split, forced reinsertion at the leaf level per \[4\])
//!   with the supernode mechanism, faithful to \[2\].
//! * [`XTree::bulk_load`] — a VAMSplit-style bulk loader (recursive
//!   max-spread median splits) that produces overlap-free leaves; used for
//!   large experiment datasets where building by insertion would dominate
//!   runtime.
//!
//! After construction the tree is *frozen*: leaves become the data pages of
//! a [`mq_storage::PagedDatabase`] (leaf = page, numbered in DFS order so
//! that spatially close pages get adjacent physical addresses), and the
//! directory is retained in memory — matching the paper's I/O accounting,
//! which counts data-page reads.

mod build;
mod bulk;
mod frozen;
pub mod zorder;

pub use frozen::{XTree, XTreeStats};

use mq_storage::PageLayout;

/// X-tree construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct XTreeConfig {
    /// Page layout shared with the storage layer (block size, record header).
    pub layout: PageLayout,
    /// Maximum tolerated overlap fraction of a directory split before the
    /// node becomes a supernode (\[2\] uses 20 %).
    pub max_overlap: f64,
    /// Minimum fill fraction per split group (R\*: 40 %).
    pub min_fill: f64,
    /// R\* forced reinsertion: on the first leaf overflow of an insert,
    /// this fraction of the entries farthest from the leaf's center are
    /// reinserted instead of splitting (R\* recommends 30 %; `0` disables).
    /// Only affects [`XTree::insert_load`]; bulk loading never overflows.
    pub reinsert_fraction: f64,
}

impl Default for XTreeConfig {
    fn default() -> Self {
        Self {
            layout: PageLayout::PAPER,
            max_overlap: 0.2,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
        }
    }
}

impl XTreeConfig {
    /// Data-page (leaf) capacity for `dim`-dimensional `f32` points —
    /// identical to the storage layer's page capacity, since leaf = page.
    pub fn leaf_capacity(&self, dim: usize) -> usize {
        self.layout
            .capacity_for(dim * std::mem::size_of::<f32>())
            .max(2)
    }

    /// Directory-node capacity per block: each entry stores a `dim`-d MBR
    /// (two `f32` bounds per dimension on disk) plus a child pointer.
    pub fn dir_capacity(&self, dim: usize) -> usize {
        let entry = 2 * dim * std::mem::size_of::<f32>() + 8;
        (self.layout.block_bytes / entry).max(2)
    }
}

//! Internal helpers: a min-heap keyed by a non-NaN `f64` priority.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A totally ordered, finite-or-infinite `f64` priority.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Priority(pub f64);

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert!(!self.0.is_nan() && !other.0.is_nan(), "NaN priority");
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Min-heap of `(priority, item)` pairs — the frontier of a best-first
/// (Hjaltason–Samet) traversal.
#[derive(Debug)]
pub(crate) struct MinHeap<T> {
    heap: BinaryHeap<Entry<T>>,
}

#[derive(Debug)]
struct Entry<T> {
    prio: Priority,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the minimum first.
        other.prio.cmp(&self.prio)
    }
}

impl<T> MinHeap<T> {
    pub(crate) fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }

    pub(crate) fn push(&mut self, prio: f64, item: T) {
        self.heap.push(Entry {
            prio: Priority(prio),
            item,
        });
    }

    pub(crate) fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.prio.0, e.item))
    }

    pub(crate) fn peek_prio(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.prio.0)
    }

    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_priority_order() {
        let mut h = MinHeap::new();
        for (p, v) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b'), (0.5, 'z')] {
            h.push(p, v);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = h.pop() {
            out.push(v);
        }
        assert_eq!(out, vec!['z', 'a', 'b', 'c']);
    }

    #[test]
    fn peek_and_clear() {
        let mut h = MinHeap::new();
        assert!(h.is_empty());
        h.push(2.0, 1);
        h.push(1.0, 2);
        assert_eq!(h.peek_prio(), Some(1.0));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn infinite_priorities_sort_last() {
        let mut h = MinHeap::new();
        h.push(f64::INFINITY, 'i');
        h.push(1.0, 'a');
        assert_eq!(h.pop().map(|(_, v)| v), Some('a'));
        assert_eq!(h.pop().map(|(_, v)| v), Some('i'));
    }
}

//! R\*-tree heuristics: ChooseSubtree and the topological split.
//!
//! The X-tree (paper ref. \[2\]) reuses the R\*-tree's insertion heuristics
//! (Beckmann et al., SIGMOD'90 — paper ref. \[4\]) and adds supernodes when a
//! split cannot avoid high overlap. This module implements the two R\*
//! heuristics as free functions over slices of MBRs so that both leaf and
//! directory nodes (and the tests) can reuse them.

use crate::bbox::Mbr;

/// Result of splitting a set of entries into two groups.
#[derive(Clone, Debug)]
pub struct SplitResult {
    /// Indices of entries assigned to the first group.
    pub first: Vec<usize>,
    /// Indices of entries assigned to the second group.
    pub second: Vec<usize>,
    /// MBR of the first group.
    pub first_mbr: Mbr,
    /// MBR of the second group.
    pub second_mbr: Mbr,
    /// Volume of the intersection of the two group MBRs.
    pub overlap: f64,
}

impl SplitResult {
    /// Overlap fraction used for the X-tree supernode decision: intersection
    /// volume over union-of-volumes (`0` when both groups are volume-free,
    /// e.g. single points or axis-degenerate boxes).
    pub fn overlap_fraction(&self) -> f64 {
        let denom = self.first_mbr.area() + self.second_mbr.area() - self.overlap;
        if denom <= 0.0 {
            // Degenerate volumes: fall back to a margin-based proxy so that
            // genuinely separated groups still report zero.
            let m = self.first_mbr.margin() + self.second_mbr.margin();
            if m <= 0.0 {
                return 0.0;
            }
            let inter = self.first_mbr.overlap(&self.second_mbr);
            return if inter > 0.0 { 1.0 } else { 0.0 };
        }
        (self.overlap / denom).clamp(0.0, 1.0)
    }
}

fn union_of(mbrs: &[Mbr], idx: &[usize]) -> Mbr {
    let mut it = idx.iter();
    let first = *it.next().expect("group must be non-empty");
    let mut u = mbrs[first].clone();
    for &i in it {
        u.expand_mbr(&mbrs[i]);
    }
    u
}

/// R\* topological split of `mbrs` into two groups, each with at least
/// `min_fill` entries.
///
/// Axis choice: the axis minimizing the sum of group margins over all
/// allowed distributions (computed for both the lower-bound and upper-bound
/// sort orders). Distribution choice on that axis: minimal overlap volume,
/// ties broken by minimal total area.
///
/// # Panics
/// Panics if `mbrs.len() < 2` or `min_fill` leaves no legal distribution
/// (`2 * min_fill > mbrs.len()`).
pub fn rstar_split(mbrs: &[Mbr], min_fill: usize) -> SplitResult {
    let n = mbrs.len();
    assert!(n >= 2, "cannot split fewer than two entries");
    let min_fill = min_fill.max(1);
    assert!(
        2 * min_fill <= n,
        "min_fill {min_fill} leaves no legal distribution for {n} entries"
    );
    let dim = mbrs[0].dim();

    // For each axis and sort order, evaluate all distributions using
    // prefix/suffix MBR unions (O(n·d) per axis per order).
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    for axis in 0..dim {
        let mut margin_sum = 0.0;
        for by_upper in [false, true] {
            let order = sorted_order(mbrs, axis, by_upper);
            let (prefix, suffix) = prefix_suffix_unions(mbrs, &order);
            for k in min_fill..=(n - min_fill) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
    }

    // On the chosen axis pick the distribution with minimal overlap
    // (ties: minimal area).
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap, area, order, k)
    for by_upper in [false, true] {
        let order = sorted_order(mbrs, best_axis, by_upper);
        let (prefix, suffix) = prefix_suffix_unions(mbrs, &order);
        for k in min_fill..=(n - min_fill) {
            let (g1, g2) = (&prefix[k - 1], &suffix[k]);
            let overlap = g1.overlap(g2);
            let area = g1.area() + g2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => {
                    overlap < *bo - 1e-12 || ((overlap - *bo).abs() <= 1e-12 && area < *ba)
                }
            };
            if better {
                best = Some((overlap, area, order.clone(), k));
            }
        }
    }
    let (_, _, order, k) = best.expect("at least one distribution exists");
    let first: Vec<usize> = order[..k].to_vec();
    let second: Vec<usize> = order[k..].to_vec();
    let first_mbr = union_of(mbrs, &first);
    let second_mbr = union_of(mbrs, &second);
    let overlap = first_mbr.overlap(&second_mbr);
    SplitResult {
        first,
        second,
        first_mbr,
        second_mbr,
        overlap,
    }
}

fn sorted_order(mbrs: &[Mbr], axis: usize, by_upper: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..mbrs.len()).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = if by_upper {
            (mbrs[a].hi()[axis], mbrs[b].hi()[axis])
        } else {
            (mbrs[a].lo()[axis], mbrs[b].lo()[axis])
        };
        ka.partial_cmp(&kb).expect("MBR bounds are finite")
    });
    order
}

/// `prefix[i]` = union of `order[..=i]`, `suffix[i]` = union of `order[i..]`.
fn prefix_suffix_unions(mbrs: &[Mbr], order: &[usize]) -> (Vec<Mbr>, Vec<Mbr>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = mbrs[order[0]].clone();
    prefix.push(acc.clone());
    for &i in &order[1..] {
        acc.expand_mbr(&mbrs[i]);
        prefix.push(acc.clone());
    }
    let mut suffix = vec![mbrs[order[n - 1]].clone(); n];
    for j in (0..n - 1).rev() {
        let mut u = mbrs[order[j]].clone();
        u.expand_mbr(&suffix[j + 1]);
        suffix[j] = u;
    }
    (prefix, suffix)
}

/// R\* ChooseSubtree when the children are leaves: pick the child whose MBR
/// needs the least *overlap enlargement* to absorb `new` (ties: least area
/// enlargement, then least area).
pub fn choose_subtree_leaf_level(children: &[Mbr], new: &Mbr) -> usize {
    assert!(!children.is_empty(), "node has no children");
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, child) in children.iter().enumerate() {
        let enlarged = child.union(new);
        let mut overlap_before = 0.0;
        let mut overlap_after = 0.0;
        for (j, other) in children.iter().enumerate() {
            if i == j {
                continue;
            }
            overlap_before += child.overlap(other);
            overlap_after += enlarged.overlap(other);
        }
        let key = (
            overlap_after - overlap_before,
            enlarged.area() - child.area(),
            child.area(),
        );
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// R\* ChooseSubtree for inner directory levels: pick the child needing the
/// least *area enlargement* (ties: least area).
pub fn choose_subtree_inner(children: &[Mbr], new: &Mbr) -> usize {
    assert!(!children.is_empty(), "node has no children");
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, child) in children.iter().enumerate() {
        let enlarged = child.union(new);
        let key = (enlarged.area() - child.area(), child.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::Vector;

    fn point(x: f64, y: f64) -> Mbr {
        Mbr::from_point(&Vector::new(vec![x as f32, y as f32]))
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated clusters of points along x.
        let mbrs: Vec<Mbr> = vec![
            point(0.0, 0.0),
            point(1.0, 1.0),
            point(0.5, 0.2),
            point(10.0, 0.0),
            point(11.0, 1.0),
            point(10.5, 0.7),
        ];
        let split = rstar_split(&mbrs, 2);
        assert_eq!(split.first.len() + split.second.len(), 6);
        assert_eq!(split.overlap, 0.0);
        assert_eq!(split.overlap_fraction(), 0.0);
        // Each group contains one cluster.
        let mut g1: Vec<usize> = split.first.clone();
        g1.sort_unstable();
        let mut g2: Vec<usize> = split.second.clone();
        g2.sort_unstable();
        let (low, high) = if g1[0] == 0 { (g1, g2) } else { (g2, g1) };
        assert_eq!(low, vec![0, 1, 2]);
        assert_eq!(high, vec![3, 4, 5]);
    }

    #[test]
    fn split_respects_min_fill() {
        let mbrs: Vec<Mbr> = (0..10).map(|i| point(i as f64, 0.0)).collect();
        let split = rstar_split(&mbrs, 4);
        assert!(split.first.len() >= 4);
        assert!(split.second.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "no legal distribution")]
    fn impossible_min_fill_rejected() {
        let mbrs = vec![point(0.0, 0.0), point(1.0, 1.0), point(2.0, 2.0)];
        let _ = rstar_split(&mbrs, 2);
    }

    #[test]
    fn overlapping_boxes_report_positive_fraction() {
        // Four heavily overlapping boxes: any 2/2 split overlaps.
        let mbrs = vec![
            Mbr::from_bounds(vec![0.0, 0.0], vec![10.0, 10.0]),
            Mbr::from_bounds(vec![1.0, 1.0], vec![11.0, 11.0]),
            Mbr::from_bounds(vec![0.0, 1.0], vec![10.0, 11.0]),
            Mbr::from_bounds(vec![1.0, 0.0], vec![11.0, 10.0]),
        ];
        let split = rstar_split(&mbrs, 2);
        assert!(split.overlap > 0.0);
        assert!(
            split.overlap_fraction() > 0.3,
            "fraction = {}",
            split.overlap_fraction()
        );
    }

    #[test]
    fn choose_subtree_prefers_containing_child() {
        let children = vec![
            Mbr::from_bounds(vec![0.0, 0.0], vec![5.0, 5.0]),
            Mbr::from_bounds(vec![10.0, 10.0], vec![15.0, 15.0]),
        ];
        let new = point(2.0, 2.0);
        assert_eq!(choose_subtree_leaf_level(&children, &new), 0);
        assert_eq!(choose_subtree_inner(&children, &new), 0);
        let new = point(12.0, 14.0);
        assert_eq!(choose_subtree_leaf_level(&children, &new), 1);
        assert_eq!(choose_subtree_inner(&children, &new), 1);
    }

    #[test]
    fn choose_subtree_minimizes_overlap_enlargement() {
        // Child 0 is big, child 1 small; point is equidistant-ish but
        // enlarging child 1 toward it would create overlap with child 0.
        let children = vec![
            Mbr::from_bounds(vec![0.0, 0.0], vec![4.0, 4.0]),
            Mbr::from_bounds(vec![5.0, 0.0], vec![6.0, 1.0]),
        ];
        // Inside child 0 → zero enlargement for it.
        let new = point(3.5, 3.5);
        assert_eq!(choose_subtree_leaf_level(&children, &new), 0);
    }

    #[test]
    fn degenerate_point_split_fraction_is_zero() {
        // All points collinear: group MBRs have zero volume, but if they do
        // not intersect the fraction must be zero.
        let mbrs: Vec<Mbr> = (0..6).map(|i| point(i as f64, 0.0)).collect();
        let split = rstar_split(&mbrs, 2);
        assert_eq!(split.overlap_fraction(), 0.0);
    }
}

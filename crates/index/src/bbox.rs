//! Minimum bounding rectangles (MBRs) in d-dimensional space.
//!
//! The geometry kernel of the R\*-/X-tree: MINDIST for best-first k-NN
//! ordering (Roussopoulos et al. / Hjaltason–Samet), plus the margin, area
//! and overlap measures the R\* split heuristics optimize.

use mq_metric::Vector;

/// A d-dimensional axis-aligned minimum bounding rectangle.
///
/// Coordinates are kept in `f64`; point data (`f32`) widens losslessly, so
/// MINDIST lower bounds are exact and never prune a qualifying page.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Mbr {
    /// The MBR of a single point.
    pub fn from_point(p: &Vector) -> Self {
        let lo: Box<[f64]> = p.components().iter().map(|&c| c as f64).collect();
        Self { hi: lo.clone(), lo }
    }

    /// The MBR of a non-empty set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points<'a>(mut points: impl Iterator<Item = &'a Vector>) -> Self {
        let first = points.next().expect("MBR of an empty point set");
        let mut mbr = Self::from_point(first);
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Creates an MBR from explicit bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths or `lo > hi` anywhere.
    pub fn from_bounds(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound dimensionality mismatch");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "lower bound exceeds upper bound"
        );
        Self {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds per dimension.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds per dimension.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows the MBR to cover `p`.
    pub fn expand_point(&mut self, p: &Vector) {
        debug_assert_eq!(p.dim(), self.dim());
        for (i, &c) in p.components().iter().enumerate() {
            let c = c as f64;
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// Grows the MBR to cover `other`.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dim(), self.dim());
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// The union of two MBRs.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut u = self.clone();
        u.expand_mbr(other);
        u
    }

    /// Volume (product of extents). Zero for degenerate MBRs.
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Margin (sum of extents) — the R\* split axis criterion.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Volume of the intersection with `other` (zero if disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(other.dim(), self.dim());
        let mut v = 1.0;
        for i in 0..self.lo.len() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Whether the MBRs share any point.
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(other.dim(), self.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((slo, shi), (olo, ohi))| slo <= ohi && olo <= shi)
    }

    /// Whether `p` lies inside (or on the boundary of) the MBR.
    pub fn contains_point(&self, p: &Vector) -> bool {
        debug_assert_eq!(p.dim(), self.dim());
        p.components()
            .iter()
            .enumerate()
            .all(|(i, &c)| self.lo[i] <= c as f64 && (c as f64) <= self.hi[i])
    }

    /// MINDIST: the minimum Euclidean distance from point `q` to any point
    /// of the MBR (zero if `q` is inside). The exact lower bound used by
    /// the Hjaltason–Samet best-first traversal.
    pub fn mindist(&self, q: &Vector) -> f64 {
        debug_assert_eq!(q.dim(), self.dim());
        let mut acc = 0.0f64;
        for (i, &c) in q.components().iter().enumerate() {
            let c = c as f64;
            let d = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// MAXDIST: the maximum Euclidean distance from `q` to any point of the
    /// MBR — an upper bound used in diagnostics and tests.
    pub fn maxdist(&self, q: &Vector) -> f64 {
        debug_assert_eq!(q.dim(), self.dim());
        let mut acc = 0.0f64;
        for (i, &c) in q.components().iter().enumerate() {
            let c = c as f64;
            let d = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Whether the MBR intersects the closed ball `{x : |x - q| ≤ r}` —
    /// the range-query relevance test of §2.
    #[inline]
    pub fn intersects_ball(&self, q: &Vector, r: f64) -> bool {
        self.mindist(q) <= r
    }

    /// Center of the MBR.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(cs: &[f32]) -> Vector {
        Vector::new(cs.to_vec())
    }

    fn unit_square() -> Mbr {
        Mbr::from_bounds(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [v(&[0.0, 5.0]), v(&[2.0, 1.0]), v(&[-1.0, 3.0])];
        let mbr = Mbr::from_points(pts.iter());
        assert_eq!(mbr.lo(), &[-1.0, 1.0]);
        assert_eq!(mbr.hi(), &[2.0, 5.0]);
        for p in &pts {
            assert!(mbr.contains_point(p));
            assert_eq!(mbr.mindist(p), 0.0);
        }
    }

    #[test]
    fn mindist_outside_corner_and_face() {
        let mbr = unit_square();
        // Corner: distance to (2,2) is sqrt(2).
        assert!((mbr.mindist(&v(&[2.0, 2.0])) - 2f64.sqrt()).abs() < 1e-12);
        // Face: distance to (0.5, 3) is 2.
        assert!((mbr.mindist(&v(&[0.5, 3.0])) - 2.0).abs() < 1e-12);
        // Inside: zero.
        assert_eq!(mbr.mindist(&v(&[0.5, 0.5])), 0.0);
    }

    #[test]
    fn maxdist_bounds_mindist() {
        let mbr = unit_square();
        let q = v(&[3.0, -1.0]);
        assert!(mbr.maxdist(&q) >= mbr.mindist(&q));
        // Farthest corner from (3,-1) is (0,1): dist = sqrt(9+4).
        assert!((mbr.maxdist(&q) - 13f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn area_margin_overlap() {
        let a = unit_square();
        let b = Mbr::from_bounds(vec![0.5, 0.5], vec![2.0, 1.5]);
        assert!((a.area() - 1.0).abs() < 1e-12);
        assert!((a.margin() - 2.0).abs() < 1e-12);
        assert!((a.overlap(&b) - 0.25).abs() < 1e-12);
        assert!(a.intersects(&b));
        let c = Mbr::from_bounds(vec![5.0, 5.0], vec![6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_and_expand() {
        let a = unit_square();
        let b = Mbr::from_bounds(vec![2.0, -1.0], vec![3.0, 0.5]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, -1.0]);
        assert_eq!(u.hi(), &[3.0, 1.0]);
    }

    #[test]
    fn ball_intersection() {
        let mbr = unit_square();
        assert!(mbr.intersects_ball(&v(&[2.0, 0.5]), 1.0));
        assert!(!mbr.intersects_ball(&v(&[2.0, 0.5]), 0.9));
        assert!(mbr.intersects_ball(&v(&[0.5, 0.5]), 0.0));
    }

    #[test]
    fn touching_boxes_intersect_with_zero_overlap() {
        let a = unit_square();
        let b = Mbr::from_bounds(vec![1.0, 0.0], vec![2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn center() {
        let mbr = Mbr::from_bounds(vec![0.0, 2.0], vec![4.0, 6.0]);
        assert_eq!(mbr.center(), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_point_set_rejected() {
        let _ = Mbr::from_points(std::iter::empty::<&Vector>());
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn inverted_bounds_rejected() {
        let _ = Mbr::from_bounds(vec![1.0], vec![0.0]);
    }
}

//! The frozen (query-time) M-tree and its best-first page plan.

use super::build::{Builder, MNode, RouteItem};
use super::MTreeConfig;
use crate::planner::{PagePlan, SimilarityIndex};
use crate::util::MinHeap;
use mq_metric::{Metric, ObjectId};
use mq_storage::{Dataset, PageId, PagedDatabase, StorageObject};

#[derive(Clone, Copy, Debug)]
enum FTarget {
    Dir(u32),
    Page(PageId),
}

struct FEntry<O> {
    router: O,
    radius: f64,
    /// `dist(router, parent router)`; `NaN` marks "no parent" (root level).
    dist_to_parent: f64,
    target: FTarget,
}

/// Construction statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MTreeStats {
    /// Tree height including the leaf level.
    pub height: usize,
    /// Number of directory nodes.
    pub dir_nodes: usize,
    /// Number of data pages (leaves).
    pub data_pages: usize,
}

/// The frozen M-tree over one paged database.
///
/// Holds the metric it was built with: query planning computes real
/// distances (routing decisions in a metric index are distance
/// calculations, and are counted by whatever counting wrapper the metric
/// carries).
///
/// ```
/// use mq_index::{MTree, MTreeConfig, SimilarityIndex};
/// use mq_metric::{EditDistance, Symbols};
/// use mq_storage::Dataset;
///
/// // A purely metric database: strings under edit distance.
/// let words: Vec<Symbols> =
///     ["query", "quarry", "berry", "merry", "metric", "matric", "matrix"]
///         .iter().map(|w| Symbols::from(*w)).collect();
/// let ds = Dataset::new(words);
/// let (tree, db) = MTree::insert_load(&ds, EditDistance, MTreeConfig::default());
/// assert_eq!(tree.page_count(), db.page_count());
/// let query = Symbols::from("quern");
/// let mut plan = tree.plan(&query);
/// assert!(plan.next(2.0).is_some(), "a page within edit distance 2 exists");
/// ```
pub struct MTree<O, M> {
    metric: M,
    dirs: Vec<Vec<FEntry<O>>>,
    root: Option<FTarget>,
    /// Per data page: routing object and covering radius.
    leaf_routers: Vec<(O, f64)>,
    stats: MTreeStats,
}

impl<O: StorageObject, M: Metric<O>> MTree<O, M> {
    /// Builds an M-tree by dynamic insertion and freezes it into a database
    /// layout (leaf = data page, DFS page numbering).
    pub fn insert_load(
        dataset: &Dataset<O>,
        metric: M,
        cfg: MTreeConfig,
    ) -> (Self, PagedDatabase<O>) {
        let payload = dataset.max_payload_bytes();
        let mut builder = Builder::new(&metric, &cfg, payload);
        for (id, obj) in dataset.iter() {
            builder.insert(id, obj.clone());
        }

        let mut groups: Vec<Vec<(ObjectId, O)>> = Vec::new();
        let mut leaf_routers: Vec<(O, f64)> = Vec::new();
        let mut dirs: Vec<Vec<FEntry<O>>> = Vec::new();

        // DFS freeze. `route` carries the routing object governing the
        // subtree (None at the root).
        fn convert<O: Clone, M: Metric<O>>(
            metric: &M,
            nodes: &[MNode<O>],
            node: u32,
            route: Option<(&O, f64)>,
            groups: &mut Vec<Vec<(ObjectId, O)>>,
            leaf_routers: &mut Vec<(O, f64)>,
            dirs: &mut Vec<Vec<FEntry<O>>>,
        ) -> FTarget {
            match &nodes[node as usize] {
                MNode::Leaf(items) => {
                    let page = PageId(groups.len() as u32);
                    let (router, radius) = match route {
                        Some((r, rad)) => (r.clone(), rad),
                        None => {
                            // Root leaf: promote the first object.
                            let r = items.first().expect("frozen leaf non-empty").obj.clone();
                            let rad = items
                                .iter()
                                .map(|it| metric.distance(&it.obj, &r))
                                .fold(0.0f64, f64::max);
                            (r, rad)
                        }
                    };
                    groups.push(items.iter().map(|it| (it.id, it.obj.clone())).collect());
                    leaf_routers.push((router, radius));
                    FTarget::Page(page)
                }
                MNode::Dir(entries) => {
                    let mut out = Vec::with_capacity(entries.len());
                    for RouteItem {
                        router,
                        radius,
                        child,
                    } in entries
                    {
                        let target = convert(
                            metric,
                            nodes,
                            *child,
                            Some((router, *radius)),
                            groups,
                            leaf_routers,
                            dirs,
                        );
                        let dist_to_parent = match route {
                            Some((parent, _)) => metric.distance(router, parent),
                            None => f64::NAN,
                        };
                        out.push(FEntry {
                            router: router.clone(),
                            radius: *radius,
                            dist_to_parent,
                            target,
                        });
                    }
                    dirs.push(out);
                    FTarget::Dir((dirs.len() - 1) as u32)
                }
            }
        }

        let has_objects = !dataset.is_empty();
        let root = if has_objects {
            Some(convert(
                &metric,
                &builder.nodes,
                builder.root,
                None,
                &mut groups,
                &mut leaf_routers,
                &mut dirs,
            ))
        } else {
            None
        };

        let height = height_of(&builder.nodes, builder.root);
        let stats = MTreeStats {
            height,
            dir_nodes: dirs.len(),
            data_pages: groups.len(),
        };
        let db = PagedDatabase::from_groups(groups, cfg.layout);
        (
            Self {
                metric,
                dirs,
                root,
                leaf_routers,
                stats,
            },
            db,
        )
    }

    /// Construction statistics.
    pub fn stats(&self) -> MTreeStats {
        self.stats
    }

    /// The routing object and covering radius of a data page.
    pub fn leaf_router(&self, page: PageId) -> (&O, f64) {
        let (r, rad) = &self.leaf_routers[page.index()];
        (r, *rad)
    }
}

fn height_of<O>(nodes: &[MNode<O>], node: u32) -> usize {
    match &nodes[node as usize] {
        MNode::Leaf(_) => 1,
        MNode::Dir(entries) => {
            1 + entries
                .iter()
                .map(|e| height_of(nodes, e.child))
                .max()
                .unwrap_or(0)
        }
    }
}

/// Heap item: a subtree plus the query-to-its-router distance (needed for
/// the parent-distance prune when expanding it).
struct Frontier {
    target: FTarget,
    query_to_router: f64, // NaN for the artificial root item
}

struct MTreePlan<'a, O, M> {
    tree: &'a MTree<O, M>,
    query: &'a O,
    frontier: MinHeap<Frontier>,
}

impl<O: StorageObject, M: Metric<O>> PagePlan for MTreePlan<'_, O, M> {
    fn next(&mut self, query_dist: f64) -> Option<(PageId, f64)> {
        while let Some(top) = self.frontier.peek_prio() {
            if top > query_dist {
                self.frontier.clear();
                return None;
            }
            let (lb, item) = self.frontier.pop().expect("frontier non-empty");
            match item.target {
                FTarget::Page(page) => return Some((page, lb)),
                FTarget::Dir(idx) => {
                    let parent_d = item.query_to_router;
                    for e in &self.tree.dirs[idx as usize] {
                        // Parent-distance prune: skip without a distance
                        // calculation when the triangle inequality already
                        // proves the subtree out of range.
                        if !parent_d.is_nan()
                            && !e.dist_to_parent.is_nan()
                            && (parent_d - e.dist_to_parent).abs() - e.radius > query_dist
                        {
                            continue;
                        }
                        let d = self.tree.metric.distance(self.query, &e.router);
                        let child_lb = (d - e.radius).max(0.0);
                        if child_lb <= query_dist {
                            self.frontier.push(
                                child_lb,
                                Frontier {
                                    target: e.target,
                                    query_to_router: d,
                                },
                            );
                        }
                    }
                }
            }
        }
        None
    }
}

impl<O: StorageObject, M: Metric<O>> SimilarityIndex<O> for MTree<O, M> {
    fn plan<'a>(&'a self, query: &'a O) -> Box<dyn PagePlan + 'a> {
        let mut frontier = MinHeap::new();
        match self.root {
            Some(FTarget::Page(page)) => {
                let (router, radius) = &self.leaf_routers[page.index()];
                let d = self.metric.distance(query, router);
                frontier.push(
                    (d - radius).max(0.0),
                    Frontier {
                        target: FTarget::Page(page),
                        query_to_router: d,
                    },
                );
            }
            Some(FTarget::Dir(idx)) => {
                frontier.push(
                    0.0,
                    Frontier {
                        target: FTarget::Dir(idx),
                        query_to_router: f64::NAN,
                    },
                );
            }
            None => {}
        }
        Box::new(MTreePlan {
            tree: self,
            query,
            frontier,
        })
    }

    fn page_mindist(&self, query: &O, page: PageId) -> f64 {
        let (router, radius) = &self.leaf_routers[page.index()];
        (self.metric.distance(query, router) - radius).max(0.0)
    }

    fn page_count(&self) -> usize {
        self.leaf_routers.len()
    }

    fn name(&self) -> &str {
        "m-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::{CountingMetric, EditDistance, Euclidean, Symbols, Vector};
    use mq_storage::PageLayout;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                Vector::new(
                    (0..dim)
                        .map(|_| (next() * 100.0) as f32)
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn tiny_cfg() -> MTreeConfig {
        MTreeConfig {
            layout: PageLayout::new(200, 16),
            ..MTreeConfig::default()
        }
    }

    #[test]
    fn build_covers_all_objects() {
        let ds = Dataset::new(random_points(300, 3, 41));
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        assert_eq!(db.object_count(), 300);
        assert_eq!(tree.page_count(), db.page_count());
        assert!(tree.stats().height >= 2);
    }

    #[test]
    fn covering_radii_are_sound() {
        let ds = Dataset::new(random_points(300, 3, 43));
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        for pid in db.page_ids() {
            let (router, radius) = tree.leaf_router(pid);
            for (_, obj) in db.page(pid).records() {
                let d = Euclidean.distance(router, obj);
                assert!(
                    d <= radius + 1e-9,
                    "object at distance {d} outside covering radius {radius} of {pid}"
                );
            }
        }
    }

    #[test]
    fn plan_visits_all_pages_with_infinite_radius() {
        let ds = Dataset::new(random_points(250, 3, 47));
        let (tree, _db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        let q = Vector::new(vec![50.0, 50.0, 50.0]);
        let mut plan = tree.plan(&q);
        let mut pages = Vec::new();
        while let Some((pid, _)) = plan.next(f64::INFINITY) {
            pages.push(pid);
        }
        pages.sort_unstable();
        pages.dedup();
        assert_eq!(pages.len(), tree.page_count());
    }

    #[test]
    fn plan_lower_bounds_never_exceed_true_distances() {
        let ds = Dataset::new(random_points(250, 3, 53));
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        let q = Vector::new(vec![10.0, 20.0, 30.0]);
        let mut plan = tree.plan(&q);
        while let Some((pid, lb)) = plan.next(f64::INFINITY) {
            for (_, obj) in db.page(pid).records() {
                assert!(
                    lb <= Euclidean.distance(&q, obj) + 1e-9,
                    "lower bound {lb} exceeds a true distance on {pid}"
                );
            }
        }
    }

    #[test]
    fn range_pruning_is_sound() {
        let ds = Dataset::new(random_points(250, 3, 59));
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        let q = Vector::new(vec![0.0, 0.0, 0.0]);
        let eps = 40.0;
        let mut plan = tree.plan(&q);
        let mut visited = std::collections::HashSet::new();
        while let Some((pid, _)) = plan.next(eps) {
            visited.insert(pid);
        }
        for pid in db.page_ids() {
            for (oid, obj) in db.page(pid).records() {
                if Euclidean.distance(&q, obj) <= eps {
                    assert!(visited.contains(&pid), "answer {oid} on pruned page {pid}");
                }
            }
        }
        assert!(
            visited.len() < db.page_count(),
            "pruning should exclude some pages"
        );
    }

    #[test]
    fn parent_distance_prune_saves_distance_calculations() {
        let ds = Dataset::new(random_points(400, 3, 61));
        let counted = CountingMetric::new(Euclidean);
        let counter = counted.counter().clone();
        let (tree, _db) = MTree::insert_load(&ds, counted, tiny_cfg());
        counter.reset();
        let q = Vector::new(vec![5.0, 5.0, 5.0]);
        let mut plan = tree.plan(&q);
        while plan.next(5.0).is_some() {}
        let with_prune = counter.get();
        // Counting all routing entries gives the no-prune baseline.
        let total_entries: u64 = tree.dirs.iter().map(|d| d.len() as u64).sum();
        assert!(
            with_prune < total_entries,
            "parent-distance prune saved nothing: {with_prune} >= {total_entries}"
        );
    }

    #[test]
    fn works_with_edit_distance_objects() {
        let words: Vec<Symbols> = [
            "mining", "meaning", "metric", "matrix", "matter", "batter", "butter", "better",
            "bitter", "letter", "latter", "ladder", "query", "queries", "quarry", "carry",
            "cherry", "berry", "merry", "marry", "madam", "adam", "atom", "autumn",
        ]
        .iter()
        .map(|w| Symbols::from(*w))
        .collect();
        let ds = Dataset::new(words.clone());
        let cfg = MTreeConfig {
            layout: PageLayout::new(120, 16),
            ..MTreeConfig::default()
        };
        let (tree, db) = MTree::insert_load(&ds, EditDistance, cfg);
        assert_eq!(db.object_count(), 24);
        // Find everything within edit distance 2 of "matter".
        let q = Symbols::from("matter");
        let mut plan = tree.plan(&q);
        let mut found = Vec::new();
        while let Some((pid, _)) = plan.next(2.0) {
            for (_, obj) in db.page(pid).records() {
                if EditDistance.distance(&q, obj) <= 2.0 {
                    found.push(obj.clone());
                }
            }
        }
        // Brute force reference.
        let expected: Vec<&Symbols> = words
            .iter()
            .filter(|w| EditDistance.distance(&q, w) <= 2.0)
            .collect();
        assert_eq!(found.len(), expected.len());
        assert!(found.iter().all(|f| expected.contains(&f)));
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(Vec::<Vector>::new());
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        assert_eq!(db.page_count(), 0);
        let q = Vector::new(vec![0.0]);
        assert!(tree.plan(&q).next(f64::INFINITY).is_none());
    }

    #[test]
    fn single_page_root_leaf() {
        let ds = Dataset::new(random_points(3, 3, 67));
        let (tree, db) = MTree::insert_load(&ds, Euclidean, tiny_cfg());
        assert_eq!(db.page_count(), 1);
        assert_eq!(tree.stats().height, 1);
        let q = Vector::new(vec![0.0, 0.0, 0.0]);
        let mut plan = tree.plan(&q);
        assert!(plan.next(f64::INFINITY).is_some());
        assert!(plan.next(f64::INFINITY).is_none());
    }
}

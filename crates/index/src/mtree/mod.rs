//! The M-tree: a dynamic, paged index for *general metric spaces*
//! (Ciaccia, Patella, Zezula — VLDB'97; paper ref. \[5\]).
//!
//! Where the X-tree needs vector coordinates, the M-tree organizes data by
//! distances alone: directory entries are **routing objects** with
//! **covering radii** (`dist(o, r) ≤ radius` for every object `o` in the
//! subtree), and search prunes subtrees with the triangle inequality. This
//! is the index the paper's title promises for metric (non-vector)
//! databases such as the edit-distance URL sessions of §1.
//!
//! Two triangle-inequality prunes are implemented:
//!
//! 1. **Covering-radius prune** — a subtree can be skipped when
//!    `dist(Q, router) − radius > QueryDist` (its lower bound exceeds the
//!    query distance).
//! 2. **Parent-distance prune** — skip *without computing* `dist(Q, router)`
//!    when `|dist(Q, parent) − dist(router, parent)| − radius > QueryDist`,
//!    using the precomputed router-to-parent distance.
//!
//! After construction the tree is frozen: leaves become data pages
//! (DFS-ordered, like the X-tree) and each page keeps its routing object
//! and covering radius so the engine can compute page relevance bounds.

mod build;
mod frozen;

pub use frozen::{MTree, MTreeStats};

use mq_storage::PageLayout;

/// M-tree construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MTreeConfig {
    /// Page layout shared with the storage layer.
    pub layout: PageLayout,
    /// Candidate promotion pairs sampled per split (higher = better splits,
    /// more build-time distance computations).
    pub promotion_samples: usize,
    /// Minimum fill fraction per split group.
    pub min_fill: f64,
}

impl Default for MTreeConfig {
    fn default() -> Self {
        Self {
            layout: PageLayout::PAPER,
            promotion_samples: 8,
            min_fill: 0.3,
        }
    }
}

impl MTreeConfig {
    /// Leaf (data page) capacity for objects of the given payload size.
    pub fn leaf_capacity(&self, payload_bytes: usize) -> usize {
        self.layout.capacity_for(payload_bytes).max(2)
    }

    /// Directory capacity: each routing entry stores an object copy plus
    /// radius, parent distance and child pointer (24 bytes).
    pub fn dir_capacity(&self, payload_bytes: usize) -> usize {
        self.layout.capacity_for(payload_bytes + 24).max(2)
    }
}

//! Dynamic M-tree construction: insertion, promotion, partition.

use super::MTreeConfig;
use mq_metric::{Metric, ObjectId};

pub(super) struct LeafItem<O> {
    pub id: ObjectId,
    pub obj: O,
}

pub(super) struct RouteItem<O> {
    pub router: O,
    pub radius: f64,
    pub child: u32,
}

pub(super) enum MNode<O> {
    Leaf(Vec<LeafItem<O>>),
    Dir(Vec<RouteItem<O>>),
}

pub(super) struct Builder<'m, O, M> {
    pub metric: &'m M,
    pub nodes: Vec<MNode<O>>,
    pub root: u32,
    leaf_cap: usize,
    dir_cap: usize,
    min_fill: f64,
    samples: usize,
    rng: u64,
}

/// Result of an insertion step: either the subtree's covering requirement
/// for the chosen child grew, or the child split into two routed nodes.
enum Outcome<O> {
    Done,
    Split {
        first: RouteItem<O>,
        second: RouteItem<O>,
    },
}

impl<'m, O: Clone, M: Metric<O>> Builder<'m, O, M> {
    pub(super) fn new(metric: &'m M, cfg: &MTreeConfig, payload_bytes: usize) -> Self {
        Self {
            metric,
            nodes: vec![MNode::Leaf(Vec::new())],
            root: 0,
            leaf_cap: cfg.leaf_capacity(payload_bytes),
            dir_cap: cfg.dir_capacity(payload_bytes),
            min_fill: cfg.min_fill,
            samples: cfg.promotion_samples.max(1),
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_rand(&mut self, bound: usize) -> usize {
        // xorshift64*: deterministic sampling without external dependencies.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize) % bound.max(1)
    }

    pub(super) fn insert(&mut self, id: ObjectId, obj: O) {
        match self.insert_rec(self.root, id, obj) {
            Outcome::Done => {}
            Outcome::Split { first, second } => {
                let new_root = MNode::Dir(vec![first, second]);
                self.nodes.push(new_root);
                self.root = (self.nodes.len() - 1) as u32;
            }
        }
    }

    fn insert_rec(&mut self, node: u32, id: ObjectId, obj: O) -> Outcome<O> {
        match &self.nodes[node as usize] {
            MNode::Leaf(_) => {
                let MNode::Leaf(items) = &mut self.nodes[node as usize] else {
                    unreachable!()
                };
                items.push(LeafItem { id, obj });
                if items.len() <= self.leaf_cap {
                    return Outcome::Done;
                }
                self.split_leaf(node)
            }
            MNode::Dir(entries) => {
                // ChooseSubtree: prefer a router already covering the object
                // (min distance); otherwise minimal radius enlargement.
                let mut best: Option<(usize, f64, bool)> = None; // (idx, key, covered)
                let mut dists = Vec::with_capacity(entries.len());
                for (i, e) in entries.iter().enumerate() {
                    let d = self.metric.distance(&obj, &e.router);
                    dists.push(d);
                    let covered = d <= e.radius;
                    let key = if covered { d } else { d - e.radius };
                    let better = match best {
                        None => true,
                        Some((_, bk, bc)) => (covered && !bc) || (covered == bc && key < bk),
                    };
                    if better {
                        best = Some((i, key, covered));
                    }
                }
                let (chosen, _, _) = best.expect("directory node has entries");
                let d_chosen = dists[chosen];
                {
                    let MNode::Dir(entries) = &mut self.nodes[node as usize] else {
                        unreachable!()
                    };
                    let e = &mut entries[chosen];
                    if d_chosen > e.radius {
                        e.radius = d_chosen;
                    }
                }
                let child = match &self.nodes[node as usize] {
                    MNode::Dir(entries) => entries[chosen].child,
                    MNode::Leaf(_) => unreachable!(),
                };
                match self.insert_rec(child, id, obj) {
                    Outcome::Done => Outcome::Done,
                    Outcome::Split { first, second } => {
                        let MNode::Dir(entries) = &mut self.nodes[node as usize] else {
                            unreachable!()
                        };
                        entries[chosen] = first;
                        entries.push(second);
                        if entries.len() <= self.dir_cap {
                            Outcome::Done
                        } else {
                            self.split_dir(node)
                        }
                    }
                }
            }
        }
    }

    /// Splits an overflowing leaf: sample promotion pairs, partition items
    /// to the nearer router, keep the pair minimizing the larger covering
    /// radius (sampled mM_RAD policy).
    fn split_leaf(&mut self, node: u32) -> Outcome<O> {
        let MNode::Leaf(items) = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        let items = std::mem::take(items);
        let n = items.len();
        let min_fill = ((n as f64 * self.min_fill) as usize).max(1);

        let mut best: Option<(f64, usize, usize)> = None;
        for _ in 0..self.samples {
            let a = self.next_rand(n);
            let mut b = self.next_rand(n);
            if b == a {
                b = (a + 1) % n;
            }
            let score = self.partition_score(
                &items.iter().map(|it| &it.obj).collect::<Vec<_>>(),
                a,
                b,
                min_fill,
            );
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, a, b));
            }
        }
        let (_, pa, pb) = best.expect("at least one promotion sampled");
        let objs: Vec<&O> = items.iter().map(|it| &it.obj).collect();
        let (assign_a, ra, rb) = self.partition(&objs, pa, pb, min_fill);
        let router_a = items[pa].obj.clone();
        let router_b = items[pb].obj.clone();
        let mut first_items = Vec::new();
        let mut second_items = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            if assign_a[i] {
                first_items.push(item);
            } else {
                second_items.push(item);
            }
        }
        self.nodes[node as usize] = MNode::Leaf(first_items);
        self.nodes.push(MNode::Leaf(second_items));
        let sibling = (self.nodes.len() - 1) as u32;
        Outcome::Split {
            first: RouteItem {
                router: router_a,
                radius: ra,
                child: node,
            },
            second: RouteItem {
                router: router_b,
                radius: rb,
                child: sibling,
            },
        }
    }

    /// Splits an overflowing directory node. Covering radii of the new
    /// routers must cover each child subtree:
    /// `dist(router, e.router) + e.radius`.
    fn split_dir(&mut self, node: u32) -> Outcome<O> {
        let MNode::Dir(entries) = &mut self.nodes[node as usize] else {
            unreachable!()
        };
        let entries = std::mem::take(entries);
        let n = entries.len();
        let min_fill = ((n as f64 * self.min_fill) as usize).max(1);

        let routers: Vec<&O> = entries.iter().map(|e| &e.router).collect();
        let mut best: Option<(f64, usize, usize)> = None;
        for _ in 0..self.samples {
            let a = self.next_rand(n);
            let mut b = self.next_rand(n);
            if b == a {
                b = (a + 1) % n;
            }
            let score = self.partition_score(&routers, a, b, min_fill);
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, a, b));
            }
        }
        let (_, pa, pb) = best.expect("at least one promotion sampled");
        let (assign_a, _, _) = self.partition(&routers, pa, pb, min_fill);
        let router_a = entries[pa].router.clone();
        let router_b = entries[pb].router.clone();
        let mut first_entries = Vec::new();
        let mut second_entries = Vec::new();
        let mut ra = 0.0f64;
        let mut rb = 0.0f64;
        for (i, e) in entries.into_iter().enumerate() {
            if assign_a[i] {
                ra = ra.max(self.metric.distance(&router_a, &e.router) + e.radius);
                first_entries.push(e);
            } else {
                rb = rb.max(self.metric.distance(&router_b, &e.router) + e.radius);
                second_entries.push(e);
            }
        }
        self.nodes[node as usize] = MNode::Dir(first_entries);
        self.nodes.push(MNode::Dir(second_entries));
        let sibling = (self.nodes.len() - 1) as u32;
        Outcome::Split {
            first: RouteItem {
                router: router_a,
                radius: ra,
                child: node,
            },
            second: RouteItem {
                router: router_b,
                radius: rb,
                child: sibling,
            },
        }
    }

    /// Assigns each object to the nearer of the two promoted routers,
    /// enforcing `min_fill` by reassigning boundary objects. Returns the
    /// assignment (true = group A) and both covering radii.
    fn partition(
        &self,
        objs: &[&O],
        pa: usize,
        pb: usize,
        min_fill: usize,
    ) -> (Vec<bool>, f64, f64) {
        let n = objs.len();
        let da: Vec<f64> = objs
            .iter()
            .map(|o| self.metric.distance(o, objs[pa]))
            .collect();
        let db: Vec<f64> = objs
            .iter()
            .map(|o| self.metric.distance(o, objs[pb]))
            .collect();
        let mut assign: Vec<bool> = (0..n).map(|i| da[i] <= db[i]).collect();
        assign[pa] = true;
        assign[pb] = false;
        // Enforce minimum fill by moving the objects whose assignment costs
        // the least to flip (generalized-hyperplane with balancing).
        let balance = |assign: &mut Vec<bool>, to_a: bool| {
            let count = assign.iter().filter(|&&x| x == to_a).count();
            if count >= min_fill {
                return;
            }
            let mut candidates: Vec<usize> = (0..n)
                .filter(|&i| assign[i] != to_a && i != pa && i != pb)
                .collect();
            candidates.sort_by(|&i, &j| {
                let ci = if to_a { da[i] - db[i] } else { db[i] - da[i] };
                let cj = if to_a { da[j] - db[j] } else { db[j] - da[j] };
                ci.partial_cmp(&cj).expect("finite distances")
            });
            for &i in candidates.iter().take(min_fill - count) {
                assign[i] = to_a;
            }
        };
        balance(&mut assign, true);
        balance(&mut assign, false);
        let mut ra = 0.0f64;
        let mut rb = 0.0f64;
        for i in 0..n {
            if assign[i] {
                ra = ra.max(da[i]);
            } else {
                rb = rb.max(db[i]);
            }
        }
        (assign, ra, rb)
    }

    /// Split quality: the larger covering radius (mM_RAD criterion).
    fn partition_score(&self, objs: &[&O], pa: usize, pb: usize, min_fill: usize) -> f64 {
        let (_, ra, rb) = self.partition(objs, pa, pb, min_fill);
        ra.max(rb)
    }
}

//! End-to-end tests of the `mq` binary: generate → info → query → batch →
//! dbscan against a real temp file.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mq"))
        .args(args)
        .output()
        .expect("failed to launch mq binary")
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mq-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn generate_info_query_roundtrip() {
    let db = tmpfile("roundtrip.mqdb");
    let db_str = db.to_str().unwrap();

    let gen = mq(&[
        "generate", "--kind", "image", "--n", "800", "--seed", "5", "--out", db_str,
    ]);
    assert!(
        gen.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );
    assert!(stdout(&gen).contains("800 image objects"));

    let info = mq(&["info", db_str]);
    assert!(info.status.success());
    let text = stdout(&info);
    assert!(text.contains("objects     : 800"));
    assert!(text.contains("dimensions  : 64"));

    for index in ["scan", "xtree", "mtree", "vafile"] {
        let q = mq(&[
            "query", db_str, "--object", "7", "--knn", "4", "--index", index,
        ]);
        assert!(q.status.success(), "query via {index} failed");
        let text = stdout(&q);
        assert!(
            text.contains("O7  distance 0.000000"),
            "{index}: self not first\n{text}"
        );
        assert!(text.contains("page reads"), "{index}: no cost line");
    }
    std::fs::remove_file(&db).ok();
}

#[test]
fn batch_reports_speedup() {
    let db = tmpfile("batch.mqdb");
    let db_str = db.to_str().unwrap();
    assert!(
        mq(&["generate", "--kind", "tycho", "--n", "1500", "--out", db_str])
            .status
            .success()
    );
    let out = mq(&[
        "batch",
        db_str,
        "--queries",
        "30",
        "--m",
        "15",
        "--knn",
        "5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("singles"));
    assert!(text.contains("blocks of"));
    assert!(text.contains("speed-up"));
    std::fs::remove_file(&db).ok();
}

#[test]
fn dbscan_runs_in_both_modes() {
    let db = tmpfile("dbscan.mqdb");
    let db_str = db.to_str().unwrap();
    assert!(
        mq(&["generate", "--kind", "image", "--n", "600", "--out", db_str])
            .status
            .success()
    );
    let single = mq(&["dbscan", db_str, "--eps", "0.05", "--min-pts", "4"]);
    assert!(single.status.success());
    let multi = mq(&[
        "dbscan",
        db_str,
        "--eps",
        "0.05",
        "--min-pts",
        "4",
        "--batch",
        "32",
    ]);
    assert!(multi.status.success());
    // Same clustering summary line regardless of mode.
    let line = |o: &Output| {
        stdout(o)
            .lines()
            .find(|l| l.contains("clusters:"))
            .unwrap()
            .trim()
            .to_string()
    };
    assert_eq!(line(&single), line(&multi));
    std::fs::remove_file(&db).ok();
}

#[test]
fn helpful_errors() {
    let no_cmd = mq(&["frobnicate"]);
    assert!(!no_cmd.status.success());
    assert!(String::from_utf8_lossy(&no_cmd.stderr).contains("unknown command"));

    let missing = mq(&["info", "/nonexistent/nope.mqdb"]);
    assert!(!missing.status.success());

    let bad_opt = mq(&["generate", "--n"]);
    assert!(!bad_opt.status.success());
    assert!(String::from_utf8_lossy(&bad_opt.stderr).contains("missing value"));

    let help = mq(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("USAGE"));
}

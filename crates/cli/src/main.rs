//! `mq` — command-line front end for the multiple-similarity-query
//! engine.
//!
//! ```text
//! mq generate --kind tycho|image|embeddings --n 50000 --seed 7 --out db.mqdb
//! mq info db.mqdb
//! mq query db.mqdb --object 42 --knn 10 [--index scan|xtree|mtree|vafile]
//!                  [--metric euclidean|manhattan|cosine|dot]
//! mq batch db.mqdb --queries 100 --m 50 --knn 10 [--index ...] [--metric ...]
//! mq dbscan db.mqdb --eps 0.3 --min-pts 5 [--batch 64]
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
mquery — multiple similarity queries for mining in metric databases (ICDE 2000)

USAGE:
  mq generate --kind tycho|image|embeddings --n <N> [--seed <S>] --out <FILE>
      Generate a synthetic database and save it (binary .mqdb format).
      --kind embeddings produces clustered unit-norm 32-d vectors (a
      retrieval-embedding workload for the cosine/dot metrics).

  mq info <FILE>
      Show object/page statistics of a saved database.

  mq query <FILE> --object <ID> (--knn <K> | --range <EPS>)
                [--index scan|xtree|mtree|vafile]
                [--metric euclidean|manhattan|cosine|dot]
                [--approx bq:<BUDGET>|hnsw:<EF>]
      Run one similarity query and print answers plus cost counters.
      Non-Euclidean metrics require --index scan (tree and VA-file page
      bounds are Euclidean geometry). --approx prescreens candidates
      with a lossy tier (binary-quantized Hamming scan keeping BUDGET
      ids, or an HNSW beam of width EF) and re-ranks them exactly —
      recall may drop, reported distances never lie.

  mq batch <FILE> --queries <N> --m <M> (--knn <K> | --range <EPS>)
                [--index scan|xtree|mtree|vafile] [--metric ...] [--seed <S>]
                [--no-avoidance] [--approx bq:<BUDGET>|hnsw:<EF>]
      Run N random queries in blocks of M and compare against singles.
      With --approx the blocks run through the approximate candidate
      tier (the singles baseline stays exact).

  mq dbscan <FILE> --eps <EPS> --min-pts <P> [--batch <M>]
      Density-based clustering with single or multiple queries.

  mq serve <FILE> [--addr 127.0.0.1:7878] [--index scan|xtree|mtree|vafile]
                [--metric euclidean|manhattan|cosine|dot]
                [--store sim|file:<DIR>] [--max-batch <M>] [--max-wait-ms <MS>]
                [--cluster <S>] [--threads <T>] [--prefetch-depth <D>]
                [--leader fifo|nearest] [--workers <W>] [--no-avoidance]
                [--approx bq:<BUDGET>|hnsw:<EF>]
                [--frontend threads|event] [--max-queue <N>]
                [--quota <RATE:BURST>] [--drain-timeout-s <S>]
      Serve the database over TCP, batching concurrent client queries
      into multiple similarity queries (one engine, or a shared-nothing
      cluster of S servers with --cluster). --store file:<DIR> serves
      from a durable page store in DIR (created from <FILE> on first
      start, recovered from segment + WAL afterwards; one store per
      partition under --cluster). --threads sets the page-evaluation
      threads per engine; --prefetch-depth stages pages ahead of
      evaluation; --leader picks which pending query leads each step
      (nearest = nearest-neighbor chains over the inter-query distance
      matrix); --workers the number of scheduler threads executing
      flushed batches. --metric selects the distance the engines
      evaluate (non-Euclidean metrics require --index scan); clients
      receive distances under the server's configured metric — e.g.
      serve an embeddings database with --metric cosine --index scan.
      A file store serves its recovered layout: --index scan or vafile
      only (the VA page index summarizes the layout in place; trees
      would repack and are refused). --approx installs the lossy
      candidate tier in front of the exact engine; bq sketches persist
      as sketch.mqbq next to a file store's pages and are reloaded,
      checksum-verified, on restart. --frontend event swaps the
      thread-per-connection accept loop for a single readiness-polled
      event-loop thread (same batching tier, bit-identical answers).
      --max-queue bounds in-flight queries per collection and --quota
      installs a per-tenant token bucket; both reject with a typed
      Overloaded{retry_after_ms} reply instead of queueing unboundedly.
      SIGTERM or Ctrl-C drains gracefully under either frontend: stop
      accepting, answer every in-flight query (up to --drain-timeout-s),
      checkpoint file-backed stores, exit 0.

  mq collection create --name <NAME> (--dim <D> | --source <FILE>)
                [--metric euclidean|manhattan|cosine|dot] [--addr <ADDR>]
  mq collection drop --name <NAME> [--addr <ADDR>]
  mq collection list [--addr <ADDR>]
      Manage a running server's named collections. Each collection is an
      isolated dataset + metric + scheduler; queries address one with
      `mq client --collection`. create --source loads a server-side
      .mqdb path; --dim starts the collection empty. drop is refused
      while the collection has queries in flight.

  mq insert <STOREDIR> --vector 1.0,2.0,... [--checkpoint true]
      Append one object to a durable file store: WAL append + fsync,
      then an atomic page rewrite. Offline single-writer — stop any
      server on the directory first.

  mq delete <STOREDIR> --object <ID> [--checkpoint true]
      Tombstone one object in a durable file store (same WAL protocol;
      ids are never reused).

  mq client [--addr 127.0.0.1:7878] --vector 1.0,2.0,... (--knn <K> | --range <EPS>)
                [--collection <NAME>] [--tenant <ID>]
  mq client [--addr 127.0.0.1:7878] --stats true [--collection <NAME>]
      Query a running server, or fetch its batching counters. Answer
      distances use the server's configured --metric (euclidean,
      manhattan, cosine, or dot); under dot the \"distances\" are negated
      inner products, so --range accepts negative thresholds.
      --collection addresses a named collection (default: the server's
      default collection); --tenant labels the request for per-tenant
      quota accounting.

  mq loadgen [<ADDR>] [--mode open|closed | --ramp <START:END:STEPS>]
                [--rate <QPS>] [--sessions <N>]
                [--think-ms <MS>] [--requests <N>] [--seed <S>]
                (--knn <K> | --range <EPS>) [--skew <THETA>] [--pool <N>]
                [--queries-from <FILE> | --dim <D>] [--connections <C>]
                [--collection <NAME>] [--tenant <ID>] [--out <FILE>]
      Replay a seed-deterministic workload against a running server and
      report client-side latency (p50/p95/p99/p999, achieved vs offered
      throughput, errors/timeouts/retries) plus the server's batching
      window. --mode open offers Poisson arrivals at --rate with Zipf
      --skew over a --pool of hot query objects; --mode closed runs
      --sessions concurrent clients with --think-ms between replies.
      The same --seed replays the byte-identical request stream.
      --ramp steps the offered rate from START to END qps across STEPS
      equal request budgets and reports per-step ok/rejected/p99 plus
      the saturation knee (the first step that saw typed Overloaded
      rejections or delivered under 90% of its budget). --queries-from
      samples the pool from a saved database; --out writes the report
      as JSON.

  mq stats [<ADDR>] [--addr 127.0.0.1:7878]
      Scrape a running server's metric registry (Prometheus text
      exposition): distance calculations performed vs. avoided, buffer
      and prefetch hit ratios, batch-size and queue-wait histograms,
      per-worker pool counters, per-partition cluster counters.

GLOBAL OPTIONS:
  --simd off|sse2|avx2|neon|auto
      Pin the distance-kernel SIMD dispatch tier (default: runtime CPU
      detection; the MQ_SIMD environment variable is the same knob).
      Every tier returns bit-identical distances — this only trades
      speed, never answers.
";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Global `--simd` override, equivalent to the MQ_SIMD environment
    // variable: pin the distance-kernel dispatch tier before any command
    // touches a metric. Answers are bit-identical across tiers; this knob
    // exists for benchmarking and for ruling the kernels out when
    // debugging.
    if args.has("simd") {
        let raw = args.string_or("simd", "auto");
        match mq_metric::SimdLevel::parse(&raw) {
            Ok(Some(level)) => {
                mq_metric::kernel::force(level);
            }
            Ok(None) => {} // auto: keep runtime detection
            Err(e) => {
                eprintln!("error: --simd: {e}");
                std::process::exit(2);
            }
        }
    }
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "info" => commands::info(&args),
        "query" => commands::query(&args),
        "batch" => commands::batch(&args),
        "dbscan" => commands::dbscan(&args),
        "serve" => commands::serve(&args),
        "collection" => commands::collection(&args),
        "insert" => commands::insert(&args),
        "delete" => commands::delete(&args),
        "client" => commands::client(&args),
        "loadgen" => commands::loadgen(&args),
        "stats" => commands::stats(&args),
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'").into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` options.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
}

/// A user-facing argument error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an argument list (excluding the program name).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("missing value for --{key}")))?;
                if out.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{key} given twice")));
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// An optional string option with a default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// An optional parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("cannot parse --{key} value '{v}'"))),
        }
    }

    /// Whether an option was provided at all.
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, ArgError> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn basic_parsing() {
        let a = parse(&["query", "db.mqdb", "--knn", "10", "--index", "xtree"]).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.positional, vec!["db.mqdb"]);
        assert_eq!(a.required("knn").unwrap(), "10");
        assert_eq!(a.parse_or("knn", 0usize).unwrap(), 10);
        assert_eq!(a.string_or("index", "scan"), "xtree");
        assert_eq!(a.string_or("missing", "fallback"), "fallback");
        assert!(a.has("index"));
        assert!(!a.has("nope"));
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["generate", "--n"]).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse(&["g", "--n", "1", "--n", "2"]).is_err());
    }

    #[test]
    fn bad_parse_reported() {
        let a = parse(&["g", "--n", "abc"]).unwrap();
        assert!(a.parse_or("n", 0usize).is_err());
    }

    #[test]
    fn empty_command_line() {
        let a = parse(&[]).unwrap();
        assert!(a.command.is_empty());
    }
}

//! The CLI subcommands.

use crate::args::Args;
use mq_approx::{
    ApproxTier, BinarySketch, BqPrescreen, Hnsw, HnswConfig, HnswPrescreen, DEFAULT_PLANES,
};
use mq_core::{CandidatePrescreen, CostModel, QueryEngine, QueryType, StatsProbe};
use mq_datagen::{
    classification_query_ids, embeddings, image_histograms, tycho_like, uniform_vectors,
};
use mq_index::{LinearScan, MTree, MTreeConfig, SimilarityIndex, XTree, XTreeConfig};
use mq_metric::{CountingMetric, Euclidean, Metric, ObjectId, Vector, VectorMetric};
use mq_storage::{persist, Dataset, PageStore, PagedDatabase, SimulatedDisk, VectorCodec};
use mq_vafile::{VaConfig, VaFile, VaPageIndex};
use std::sync::Arc;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

pub fn generate(args: &Args) -> CmdResult {
    let kind = args.string_or("kind", "tycho");
    let n: usize = args.parse_or("n", 10_000)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out = args.required("out")?;
    let objects = match kind.as_str() {
        "tycho" => tycho_like(n, seed),
        "image" => image_histograms(n, seed),
        "embeddings" => embeddings(n, seed),
        other => return Err(format!("unknown --kind '{other}' (tycho|image|embeddings)").into()),
    };
    let dim = objects.first().map(|v| v.dim()).unwrap_or(0);
    let ds = Dataset::new(objects);
    let db = PagedDatabase::pack(&ds, Default::default());
    persist::save(&db, &VectorCodec, out)?;
    println!(
        "wrote {out}: {n} {kind} objects, {dim}-d, {} pages of 32 KB",
        db.page_count()
    );
    Ok(())
}

fn load(args: &Args) -> Result<PagedDatabase<Vector>, Box<dyn std::error::Error>> {
    let path = args
        .positional
        .first()
        .ok_or("missing database file argument")?;
    Ok(persist::load(&VectorCodec, path)?)
}

pub fn info(args: &Args) -> CmdResult {
    let db = load(args)?;
    let dim = db.object(ObjectId(0)).dim();
    println!("objects     : {}", db.object_count());
    println!("dimensions  : {dim}");
    println!(
        "data pages  : {} ({} KB blocks)",
        db.page_count(),
        db.layout().block_bytes / 1024
    );
    println!("avg fill    : {:.1} %", db.avg_fill() * 100.0);
    Ok(())
}

fn parse_qtype(args: &Args) -> Result<QueryType, Box<dyn std::error::Error>> {
    let range = || -> Result<f64, Box<dyn std::error::Error>> {
        let eps: f64 = args.parse_or("range", 1.0)?;
        // QueryType::range asserts on NaN; turn it into a CLI error here.
        // Negative values are fine (dot-product score thresholds).
        if eps.is_nan() {
            return Err("--range must not be NaN".into());
        }
        Ok(eps)
    };
    match (args.has("knn"), args.has("range")) {
        (true, false) => Ok(QueryType::knn(args.parse_or("knn", 10)?)),
        (false, true) => Ok(QueryType::range(range()?)),
        (true, true) => Ok(QueryType::bounded_knn(args.parse_or("knn", 10)?, range()?)),
        (false, false) => Err("one of --knn or --range is required".into()),
    }
}

/// Parses `--metric` (default euclidean) against the registered names.
fn parse_metric(args: &Args) -> Result<VectorMetric, Box<dyn std::error::Error>> {
    let raw = args.string_or("metric", "euclidean");
    VectorMetric::parse(&raw).ok_or_else(|| {
        format!(
            "unknown --metric '{raw}' (expected one of {})",
            VectorMetric::NAMES.join("|")
        )
        .into()
    })
}

/// Resolves the index choice for a metric: tree and VA-file page bounds
/// are Euclidean geometry, so every other metric must run on a sequential
/// scan. The default flips from `default_index` to `scan` accordingly; an
/// explicit incompatible `--index` is an error rather than a silent
/// wrong-answer run.
fn resolve_index_for_metric(
    args: &Args,
    metric: VectorMetric,
    default_index: &str,
) -> Result<String, Box<dyn std::error::Error>> {
    if metric == VectorMetric::Euclidean {
        return Ok(args.string_or("index", default_index));
    }
    let which = args.string_or("index", "scan");
    if which != "scan" {
        return Err(format!(
            "--metric {} requires --index scan: the {which} index prunes with \
             Euclidean page bounds",
            metric.name()
        )
        .into());
    }
    Ok(which)
}

/// Parses `--approx bq:<budget>|hnsw:<ef>` (absent → exact engine). The
/// candidate tiers rank by Euclidean proximity, so any other metric is
/// refused up front rather than silently mis-screened.
fn parse_approx(
    args: &Args,
    metric: VectorMetric,
) -> Result<Option<ApproxTier>, Box<dyn std::error::Error>> {
    if !args.has("approx") {
        return Ok(None);
    }
    let tier: ApproxTier = args.required("approx")?.parse()?;
    if metric != VectorMetric::Euclidean {
        return Err(format!(
            "--approx requires --metric euclidean: the {tier} tier ranks candidates \
             by Euclidean proximity",
        )
        .into());
    }
    Ok(Some(tier))
}

/// Builds the in-memory prescreen for one tier over `db`'s id space (the
/// serve path additionally persists binary sketches next to file stores;
/// the offline commands rebuild per run).
fn build_prescreen(
    tier: ApproxTier,
    db: &PagedDatabase<Vector>,
) -> Box<dyn CandidatePrescreen<Vector>> {
    match tier {
        ApproxTier::Bq { budget } => Box::new(BqPrescreen::new(
            Arc::new(BinarySketch::build(db, DEFAULT_PLANES)),
            budget,
        )),
        ApproxTier::Hnsw { ef } => Box::new(HnswPrescreen::new(
            Arc::new(Hnsw::build(db, HnswConfig::default())),
            ef,
        )),
    }
}

/// An access method plus the database laid out for it.
type IndexedDb = (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>);

/// Builds the selected access method over a freshly laid-out database.
fn build_index(
    db: &PagedDatabase<Vector>,
    which: &str,
) -> Result<IndexedDb, Box<dyn std::error::Error>> {
    let ds = db.to_dataset();
    match which {
        "scan" => {
            let db = PagedDatabase::pack(&ds, db.layout());
            Ok((Box::new(LinearScan::new(db.page_count())), db))
        }
        "xtree" => {
            let (tree, db) = XTree::bulk_load(
                &ds,
                XTreeConfig {
                    layout: db.layout(),
                    ..Default::default()
                },
            );
            Ok((Box::new(tree), db))
        }
        "mtree" => {
            let (tree, db) = MTree::insert_load(
                &ds,
                Euclidean,
                MTreeConfig {
                    layout: db.layout(),
                    ..Default::default()
                },
            );
            Ok((Box::new(tree), db))
        }
        "vafile" => {
            let db = PagedDatabase::pack(&ds, db.layout());
            Ok((Box::new(VaPageIndex::build(&db, 6)), db))
        }
        other => Err(format!("unknown --index '{other}' (scan|xtree|mtree|vafile)").into()),
    }
}

pub fn query(args: &Args) -> CmdResult {
    let stored = load(args)?;
    let qtype = parse_qtype(args)?;
    let object_id: u32 = args.parse_or("object", 0)?;
    if object_id as usize >= stored.object_count() {
        return Err(format!("--object {object_id} out of range").into());
    }
    let q = stored.object(ObjectId(object_id)).clone();
    let metric_choice = parse_metric(args)?;
    let which = resolve_index_for_metric(args, metric_choice, "xtree")?;
    let tier = parse_approx(args, metric_choice)?;
    if tier.is_some() && which == "vafile" {
        return Err(
            "--approx does not combine with the vafile filter-and-refine path; \
             use --index scan, xtree, or mtree"
                .into(),
        );
    }
    let dim = q.dim();
    let model = CostModel::paper_1999(dim);
    let metric = CountingMetric::new(metric_choice);

    let (answers, stats) = if which == "vafile" {
        let ds = stored.to_dataset();
        let (va, data_db) = VaFile::build(
            &ds,
            VaConfig {
                layout: stored.layout(),
                ..Default::default()
            },
        );
        let disk = SimulatedDisk::new(data_db, 0.10);
        let probe = StatsProbe::start(&disk, metric.counter(), Default::default());
        let (answers, va_stats) = va.similarity_query(&disk, &metric, &q, &qtype);
        let mut stats = probe.finish(&disk, Default::default());
        stats.io += va.approx_disk().stats();
        stats.dist_calcs += va_stats.bound_computations;
        (answers, stats)
    } else {
        let (index, db) = build_index(&stored, &which)?;
        let prescreen = tier.map(|t| build_prescreen(t, &db));
        let disk = SimulatedDisk::new(db, 0.10);
        let mut engine = QueryEngine::new(&disk, &*index, metric.clone());
        if let Some(p) = &prescreen {
            engine = engine.with_prescreen(&**p);
        }
        let probe = StatsProbe::start(&disk, metric.counter(), Default::default());
        let answers = if prescreen.is_some() {
            // The prescreen hooks into session admission, so an
            // approximate single query runs as a one-query batch.
            let mut session = engine.new_session(vec![(q.clone(), qtype)]);
            engine.run_to_completion(&mut session);
            let a = session.answers(0).clone();
            let s = session.approx_stats();
            println!(
                "approx {}: {} candidates, {} pages + {} objects prefiltered, {} re-ranked",
                tier.expect("prescreen implies tier"),
                s.candidates_emitted,
                s.pages_skipped,
                s.objects_skipped,
                s.rerank_survivors,
            );
            a
        } else {
            engine.similarity_query(&q, &qtype)
        };
        (answers, probe.finish(&disk, Default::default()))
    };

    println!(
        "{qtype} for O{object_id} via {which} ({} distance):",
        metric_choice.name()
    );
    for a in answers.as_slice() {
        println!("  {}  distance {:.6}", a.id, a.distance);
    }
    println!(
        "\ncost: {} page reads, {} distance calculations, modeled {:.4} s",
        stats.io.physical_reads,
        stats.dist_calcs,
        model.total_seconds(&stats)
    );
    Ok(())
}

pub fn batch(args: &Args) -> CmdResult {
    let stored = load(args)?;
    let qtype = parse_qtype(args)?;
    let n_queries: usize = args.parse_or("queries", 100)?;
    let m: usize = args.parse_or("m", 10)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let metric_choice = parse_metric(args)?;
    let which = resolve_index_for_metric(args, metric_choice, "scan")?;
    let tier = parse_approx(args, metric_choice)?;
    let avoidance = !args.has("no-avoidance");

    let (index, db) = build_index(&stored, &which)?;
    let prescreen = tier.map(|t| build_prescreen(t, &db));
    let dim = db.object(ObjectId(0)).dim();
    let model = CostModel::paper_1999(dim);
    let disk = SimulatedDisk::new(db, 0.10);
    let metric = CountingMetric::new(metric_choice);
    let engine = {
        let mut e = QueryEngine::new(&disk, &*index, metric.clone());
        // The tier only hooks into session admission: the singles loop
        // below stays exact, so the printed comparison is the exact
        // baseline against the approximate shared-batch run.
        if let Some(p) = &prescreen {
            e = e.with_prescreen(&**p);
        }
        if avoidance {
            e
        } else {
            e.without_avoidance()
        }
    };

    let ids = classification_query_ids(
        stored.object_count(),
        n_queries.min(stored.object_count()),
        seed,
    );
    let queries: Vec<(Vector, QueryType)> = ids
        .iter()
        .map(|id| (stored.object(*id).clone(), qtype))
        .collect();

    disk.cold_restart();
    metric.counter().reset();
    let probe = StatsProbe::start(&disk, metric.counter(), Default::default());
    for (q, t) in &queries {
        let _ = engine.similarity_query(q, t);
    }
    let singles = probe.finish(&disk, Default::default());

    disk.cold_restart();
    metric.counter().reset();
    let probe = StatsProbe::start(&disk, metric.counter(), Default::default());
    let mut avoided = 0u64;
    let mut approx_stats = mq_core::ApproxStats::default();
    for block in queries.chunks(m) {
        let mut session = engine.new_session(block.to_vec());
        engine.run_to_completion(&mut session);
        avoided += session.avoidance_stats().avoided;
        approx_stats += session.approx_stats();
    }
    let multiple = probe.finish(&disk, Default::default());

    println!(
        "{n_queries} x {qtype} via {which} ({} distance, avoidance {}, approx {}):",
        metric_choice.name(),
        if avoidance { "on" } else { "off" },
        tier.map_or("off".to_string(), |t| t.to_string()),
    );
    println!(
        "  singles      : {:>9} page reads, {:>11} distance calcs, modeled {:>9.3} s",
        singles.io.physical_reads,
        singles.dist_calcs,
        model.total_seconds(&singles)
    );
    println!(
        "  blocks of {m:>3}: {:>9} page reads, {:>11} distance calcs, modeled {:>9.3} s",
        multiple.io.physical_reads,
        multiple.dist_calcs,
        model.total_seconds(&multiple)
    );
    println!(
        "  speed-up {:.2}x, {} distance calculations avoided",
        model.total_seconds(&singles) / model.total_seconds(&multiple),
        avoided
    );
    if tier.is_some() {
        println!(
            "  approx: {} candidates emitted, {} pages + {} objects prefiltered, \
             {} re-ranked exactly",
            approx_stats.candidates_emitted,
            approx_stats.pages_skipped,
            approx_stats.objects_skipped,
            approx_stats.rerank_survivors,
        );
    }
    Ok(())
}

/// Parses a `--store` value: `sim` (default) or `file:<DIR>`.
fn parse_store(args: &Args) -> Result<mq_server::StoreChoice, Box<dyn std::error::Error>> {
    use mq_server::StoreChoice;
    let raw = args.string_or("store", "sim");
    match raw.as_str() {
        "sim" => Ok(StoreChoice::Sim),
        s => match s.strip_prefix("file:") {
            Some(dir) if !dir.is_empty() => Ok(StoreChoice::File(dir.into())),
            _ => Err(format!("unknown --store '{s}' (expected sim or file:<DIR>)").into()),
        },
    }
}

/// Parses a `--quota RATE:BURST` value into a per-tenant token-bucket
/// configuration (both halves positive finite floats).
fn parse_quota(args: &Args) -> Result<Option<mq_server::QuotaConfig>, Box<dyn std::error::Error>> {
    if !args.has("quota") {
        return Ok(None);
    }
    let raw = args.required("quota")?;
    let (rate, burst) = raw
        .split_once(':')
        .ok_or_else(|| format!("cannot parse --quota '{raw}' (expected RATE:BURST)"))?;
    let rate: f64 = rate
        .parse()
        .map_err(|_| format!("cannot parse --quota rate '{rate}'"))?;
    let burst: f64 = burst
        .parse()
        .map_err(|_| format!("cannot parse --quota burst '{burst}'"))?;
    if !(rate > 0.0 && rate.is_finite() && burst > 0.0 && burst.is_finite()) {
        return Err(format!("--quota '{raw}': rate and burst must be positive").into());
    }
    Ok(Some(mq_server::QuotaConfig { rate, burst }))
}

/// The two interchangeable TCP frontends `mq serve` can run: the
/// thread-per-connection accept loop and the single-threaded
/// readiness-polled event loop. Both serve the same dispatcher contract
/// and answer bit-identically.
enum Frontend {
    Threads(mq_server::QueryServer),
    Event(mq_front::FrontServer),
}

impl Frontend {
    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            Frontend::Threads(s) => s.local_addr(),
            Frontend::Event(s) => s.local_addr(),
        }
    }
    fn metrics(&self) -> mq_server::ServiceMetrics {
        match self {
            Frontend::Threads(s) => s.metrics(),
            Frontend::Event(s) => s.metrics(),
        }
    }
    fn registry(&self) -> &Arc<mq_server::CollectionRegistry> {
        match self {
            Frontend::Threads(s) => s.registry(),
            Frontend::Event(s) => s.registry(),
        }
    }
    fn in_flight(&self) -> u64 {
        match self {
            Frontend::Threads(s) => s.in_flight(),
            Frontend::Event(s) => s.in_flight(),
        }
    }
    /// Stops accepting new connections; existing ones keep being served.
    fn begin_drain(&mut self) {
        match self {
            // The accept thread owns the only blocking accept() call;
            // shutdown flips its flag and joins it, leaving handler
            // threads to finish their in-flight requests.
            Frontend::Threads(s) => s.shutdown(),
            Frontend::Event(s) => s.begin_drain(),
        }
    }
    fn drain(&self, timeout: std::time::Duration) -> bool {
        match self {
            Frontend::Threads(s) => s.drain(timeout),
            Frontend::Event(s) => s.drain(timeout),
        }
    }
}

pub fn serve(args: &Args) -> CmdResult {
    use mq_obs::{Recorder, Registry};
    use mq_server::{
        build_backend_with_recorder, ExecutionMode, FileIndex, QueryServer, ServerConfig,
        StoreChoice,
    };
    let stored = load(args)?;
    let addr = args.string_or("addr", "127.0.0.1:7878");
    let metric = parse_metric(args)?;
    let which = resolve_index_for_metric(args, metric, "xtree")?;
    let store = parse_store(args)?;
    let max_batch: usize = args.parse_or("max-batch", 16)?;
    let max_wait_ms: u64 = args.parse_or("max-wait-ms", 20)?;
    let servers: usize = args.parse_or("cluster", 0)?;
    let threads: usize = args.parse_or("threads", 1)?;
    let prefetch_depth: usize = args.parse_or("prefetch-depth", 0)?;
    let leader_name = args.string_or("leader", "fifo");
    let leader = match leader_name.as_str() {
        "fifo" => mq_core::LeaderPolicy::Fifo,
        "nearest" => mq_core::LeaderPolicy::NearestChain,
        other => {
            return Err(format!("unknown --leader '{other}' (expected fifo or nearest)").into())
        }
    };
    let workers: usize = args.parse_or("workers", 1)?;
    let retry_budget: u32 = args.parse_or("retry-budget", 2)?;
    // 0 = no timeout: a stalled client blocks its handler thread forever.
    let timeout_ms: u64 = args.parse_or("timeout-ms", 0)?;
    let frontend = args.string_or("frontend", "threads");
    if frontend != "threads" && frontend != "event" {
        return Err(format!("unknown --frontend '{frontend}' (expected threads or event)").into());
    }
    // 0 = unbounded queue (no depth-based admission control).
    let max_queue: usize = args.parse_or("max-queue", 0)?;
    let quota = parse_quota(args)?;
    let drain_timeout_s: u64 = args.parse_or("drain-timeout-s", 30)?;

    let mut config = ServerConfig::default()
        .with_max_batch(max_batch)
        .with_max_wait(std::time::Duration::from_millis(max_wait_ms))
        .with_avoidance(!args.has("no-avoidance"))
        .with_threads(threads)
        .with_prefetch_depth(prefetch_depth)
        .with_leader(leader)
        .with_workers(workers)
        .with_retry_budget(retry_budget)
        .with_read_timeout((timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)))
        .with_store(store.clone())
        .with_metric(metric)
        .with_max_queue(max_queue)
        .with_quota(quota)
        .with_approx(parse_approx(args, metric)?);
    if servers > 0 {
        config = config.with_mode(ExecutionMode::Cluster { servers });
    }
    // The file store serves its recovered page layout as-is, so only
    // indexes that summarize an existing layout qualify: the sequential
    // scan and the VA page index. The tree bulk-loaders would repack —
    // an explicit request for one is an error, while the implicit
    // default (xtree) quietly falls back to the scan.
    let which = match (&store, which.as_str()) {
        (StoreChoice::File(_), "scan") => which,
        (StoreChoice::File(_), "vafile") => {
            config = config.with_file_index(FileIndex::VaPage);
            which
        }
        (StoreChoice::File(_), other) if args.has("index") => {
            return Err(format!(
                "--store file:<DIR> serves the recovered page layout; --index {other} \
                 would repack it (supported: scan, vafile)"
            )
            .into())
        }
        (StoreChoice::File(_), _) => "scan".to_string(),
        _ => which,
    };

    let log_interval_s: u64 = args.parse_or("log-interval-s", 60)?;

    // Validate the index name up front so a typo fails fast, not inside
    // the backend builder.
    build_index(&stored, &which)?;
    let layout = stored.layout();
    let which_owned = which.clone();
    let registry = Arc::new(Registry::new());
    let recorder = Recorder::new(Arc::clone(&registry));
    let backend = build_backend_with_recorder(&stored, &config, 0.10, &recorder, move |ds| {
        let db = PagedDatabase::pack(ds, layout);
        build_index(&db, &which_owned).expect("index kind validated before serving")
    })?;

    // Latch SIGTERM/Ctrl-C before the listener goes up so a signal at
    // any point takes the graceful-drain path below.
    mq_front::signals::install();

    let mut server = match frontend.as_str() {
        "event" => Frontend::Event(mq_front::FrontServer::bind_with_recorder(
            addr.as_str(),
            backend,
            &config,
            &recorder,
        )?),
        _ => Frontend::Threads(QueryServer::bind_with_recorder(
            addr.as_str(),
            backend,
            &config,
            &recorder,
        )?),
    };
    println!(
        "mq-server listening on {} ({} objects via {which}, {frontend} frontend)",
        server.local_addr(),
        stored.object_count(),
    );
    println!("config: {}", config.describe());
    println!("metrics: scrape with `mq stats {}`", server.local_addr());
    println!("press Ctrl-C (or send SIGTERM) to drain and stop");
    // Periodic one-line heartbeat with the headline service counters,
    // polling the signal latch between prints so a drain starts within
    // ~100ms of the signal rather than at the next heartbeat.
    let interval = std::time::Duration::from_secs(log_interval_s.max(1));
    let tick = std::time::Duration::from_millis(100);
    let mut last = registry.snapshot();
    let mut since_heartbeat = std::time::Duration::ZERO;
    while !mq_front::signals::triggered() {
        std::thread::sleep(tick);
        since_heartbeat += tick;
        if since_heartbeat < interval {
            continue;
        }
        since_heartbeat = std::time::Duration::ZERO;
        let now = registry.snapshot();
        let delta = now.delta(&last);
        let m = server.metrics();
        println!(
            "served {} queries in {} batches (max {}): +{} queries, \
             +{} distance calcs ({} avoided) in the last {}s",
            m.queries,
            m.batches,
            m.max_batch_size,
            delta.value("mq_server_queries_total") as u64,
            delta.value("mq_core_distance_calculations_total{outcome=\"performed\"}") as u64,
            delta.value("mq_core_distance_calculations_total{outcome=\"avoided\"}") as u64,
            interval.as_secs(),
        );
        last = now;
    }

    // Graceful drain: stop accepting, let every in-flight query answer,
    // then checkpoint file-backed stores so the next start recovers from
    // a clean segment instead of replaying the WAL.
    let in_flight = server.in_flight();
    println!("signal received: draining {in_flight} in-flight queries, no longer accepting");
    server.begin_drain();
    let drained = server.drain(std::time::Duration::from_secs(drain_timeout_s.max(1)));
    if !drained {
        eprintln!(
            "warning: {} queries still in flight after {drain_timeout_s}s drain timeout",
            server.in_flight()
        );
    }
    let m = server.metrics();
    // Per-collection store dirs, collected before the drop releases the
    // single-writer locks; a file-backed cluster's default collection
    // registers no dir, so add its part-<i> partitions from the config.
    let mut dirs = server.registry().store_dirs();
    if let (StoreChoice::File(root), true) = (&store, servers > 0) {
        for p in 0..servers {
            dirs.push(root.join(format!("part-{p}")));
        }
        dirs.sort();
        dirs.dedup();
    }
    drop(server);
    for dir in &dirs {
        let mut s: mq_store::FilePageStore<Vector, VectorCodec> =
            mq_store::FilePageStore::open(dir, VectorCodec, 1)?;
        s.checkpoint()?;
        println!("checkpointed {}", dir.display());
    }
    println!(
        "served {} queries in {} batches; drained {}, exiting",
        m.queries,
        m.batches,
        if drained { "clean" } else { "with stragglers" },
    );
    if drained {
        Ok(())
    } else {
        Err("drain timed out with queries still in flight".into())
    }
}

pub fn stats(args: &Args) -> CmdResult {
    use mq_server::{RetryConfig, RetryingClient};
    let addr = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| args.string_or("addr", "127.0.0.1:7878"));
    let retries: u32 = args.parse_or("retries", 3)?;
    let connect_timeout_ms: u64 = args.parse_or("connect-timeout-ms", 2000)?;
    let timeout_ms: u64 = args.parse_or("timeout-ms", 10_000)?;
    let config = RetryConfig::default()
        .with_max_retries(retries)
        .with_connect_timeout(std::time::Duration::from_millis(connect_timeout_ms.max(1)))
        .with_read_timeout((timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)));
    let mut client = RetryingClient::new(addr, config);
    let text = client.metrics()?;
    if text.is_empty() {
        println!("# no metrics: the server is running without observability");
    } else {
        print!("{text}");
    }
    Ok(())
}

/// The durable store directory of an `insert`/`delete` invocation:
/// positional `<STOREDIR>` or `--store file:<DIR>`.
fn store_dir(args: &Args) -> Result<std::path::PathBuf, Box<dyn std::error::Error>> {
    if let Some(dir) = args.positional.first() {
        return Ok(dir.into());
    }
    match parse_store(args)? {
        mq_server::StoreChoice::File(dir) => Ok(dir),
        mq_server::StoreChoice::Sim => {
            Err("this command needs a durable store: pass <STOREDIR> or --store file:<DIR>".into())
        }
    }
}

/// Refuses offline mutation of a clustered store's partition: the local
/// store would accept it, but the cluster's persisted global-id mapping
/// would no longer cover the partition and every reopen would fail.
fn reject_partition_member(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(manifest) = mq_store::PartitionManifest::load(dir)? {
        return Err(format!(
            "{} is partition {} of a {}-way cluster store; offline mutation would \
             desynchronize the cluster's global-id mapping",
            dir.display(),
            manifest.partition,
            manifest.parts
        )
        .into());
    }
    Ok(())
}

/// Parses a comma-separated `--vector` into a finite [`Vector`].
fn parse_vector(raw: &str) -> Result<Vector, Box<dyn std::error::Error>> {
    let components: Vec<f32> = raw
        .split(',')
        .map(|c| c.trim().parse::<f32>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("cannot parse --vector '{raw}' (comma-separated floats)"))?;
    if components.is_empty() {
        return Err("--vector must have at least one component".into());
    }
    if components.iter().any(|c| !c.is_finite()) {
        return Err(format!("--vector components must be finite, got '{raw}'").into());
    }
    Ok(Vector::new(components))
}

pub fn insert(args: &Args) -> CmdResult {
    use mq_store::FilePageStore;
    let dir = store_dir(args)?;
    reject_partition_member(&dir)?;
    let object = parse_vector(args.required("vector")?)?;
    // Offline single-writer mutation: nothing else may serve this
    // directory while the WAL is appended and the frame rewritten.
    let mut store: FilePageStore<Vector, VectorCodec> = FilePageStore::open(&dir, VectorCodec, 1)?;
    let id = store.insert(object)?;
    let (page, _slot) = store.database().locate(id);
    if args.has("checkpoint") {
        store.checkpoint()?;
    }
    let stats = store.store_stats();
    println!(
        "inserted {id} into {} (page {}); wal {} B, {} appends, {} fsyncs, {} checkpoints",
        dir.display(),
        page.0,
        store.wal_bytes(),
        stats.wal_appends,
        stats.fsyncs,
        stats.checkpoints,
    );
    Ok(())
}

pub fn delete(args: &Args) -> CmdResult {
    use mq_store::FilePageStore;
    let dir = store_dir(args)?;
    reject_partition_member(&dir)?;
    let id: u32 = args.required("object")?.parse().map_err(|_| {
        format!(
            "cannot parse --object '{}' (object id)",
            args.string_or("object", "")
        )
    })?;
    let mut store: FilePageStore<Vector, VectorCodec> = FilePageStore::open(&dir, VectorCodec, 1)?;
    let page = store.delete(ObjectId(id))?;
    if args.has("checkpoint") {
        store.checkpoint()?;
    }
    let stats = store.store_stats();
    println!(
        "deleted object {id} from {} (page {}); {} live objects remain; wal {} B, {} appends, {} fsyncs",
        dir.display(),
        page.0,
        store.database().live_object_count(),
        store.wal_bytes(),
        stats.wal_appends,
        stats.fsyncs,
    );
    Ok(())
}

pub fn client(args: &Args) -> CmdResult {
    use mq_server::{RetryConfig, RetryingClient};
    let addr = args.string_or("addr", "127.0.0.1:7878");
    let retries: u32 = args.parse_or("retries", 3)?;
    let connect_timeout_ms: u64 = args.parse_or("connect-timeout-ms", 2000)?;
    // 0 = no read timeout: wait for the reply however long it takes.
    let timeout_ms: u64 = args.parse_or("timeout-ms", 10_000)?;
    let config = RetryConfig::default()
        .with_max_retries(retries)
        .with_connect_timeout(std::time::Duration::from_millis(connect_timeout_ms.max(1)))
        .with_read_timeout((timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)));
    let mut client = RetryingClient::new(addr, config);

    let collection = args.string_or("collection", "");
    let tenant = args.string_or("tenant", "");

    if args.has("stats") {
        let m = client.stats_for(&collection)?;
        println!("queries served : {}", m.queries);
        println!("batches flushed: {}", m.batches);
        println!("largest batch  : {}", m.max_batch_size);
        println!("totals         : {}", m.totals);
        println!("record         : {}", m.totals.to_record());
        return Ok(());
    }

    let raw = args.required("vector")?;
    let components: Vec<f32> = raw
        .split(',')
        .map(|c| c.trim().parse::<f32>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("cannot parse --vector '{raw}' (comma-separated floats)"))?;
    if components.is_empty() {
        return Err("--vector must have at least one component".into());
    }
    if components.iter().any(|c| !c.is_finite()) {
        return Err(format!("--vector components must be finite, got '{raw}'").into());
    }
    let qtype = parse_qtype(args)?;
    let q = Vector::new(components);

    let reply = client.query_in(&collection, &tenant, &q, &qtype)?;
    println!(
        "{qtype} answered in batch #{} of {} queries:",
        reply.batch_id, reply.batch_size
    );
    if client.retries_performed() > 0 {
        println!(
            "(recovered after {} transport retries)",
            client.retries_performed()
        );
    }
    for a in &reply.answers {
        println!("  {}  distance {:.6}", a.id, a.distance);
    }
    println!("\nbatch cost: {}", reply.stats);
    println!("record    : {}", reply.stats.to_record());
    Ok(())
}

/// `mq collection create|drop|list`: manage a running server's named
/// collections over the wire.
pub fn collection(args: &Args) -> CmdResult {
    use mq_server::{RetryConfig, RetryingClient};
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("list");
    let addr = args.string_or("addr", "127.0.0.1:7878");
    let retries: u32 = args.parse_or("retries", 3)?;
    let connect_timeout_ms: u64 = args.parse_or("connect-timeout-ms", 2000)?;
    let timeout_ms: u64 = args.parse_or("timeout-ms", 10_000)?;
    let config = RetryConfig::default()
        .with_max_retries(retries)
        .with_connect_timeout(std::time::Duration::from_millis(connect_timeout_ms.max(1)))
        .with_read_timeout((timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)));
    let mut client = RetryingClient::new(addr, config);

    match action {
        "create" => {
            let name = args.required("name")?;
            let dim: u32 = args.parse_or("dim", 0)?;
            let metric = args.string_or("metric", "euclidean");
            let source = args.string_or("source", "");
            if source.is_empty() && dim == 0 {
                return Err(
                    "collection create needs --dim <D> (empty collection) or --source <FILE> \
                     (server-side .mqdb path)"
                        .into(),
                );
            }
            let ack = client.create_collection(name, dim, &metric, &source)?;
            println!("{ack}");
        }
        "drop" => {
            let name = args.required("name")?;
            let ack = client.drop_collection(name)?;
            println!("{ack}");
        }
        "list" => {
            let infos = client.list_collections()?;
            println!(
                "{:<24} {:>6} {:>10} {:>10}  metric",
                "collection", "dim", "objects", "in-flight"
            );
            for c in infos {
                println!(
                    "{:<24} {:>6} {:>10} {:>10}  {}",
                    c.name, c.dim, c.objects, c.in_flight, c.metric
                );
            }
        }
        other => {
            return Err(format!("unknown collection action '{other}' (create|drop|list)").into())
        }
    }
    Ok(())
}

pub fn dbscan(args: &Args) -> CmdResult {
    let stored = load(args)?;
    let eps: f64 = args.parse_or("eps", 0.1)?;
    let min_pts: usize = args.parse_or("min-pts", 5)?;
    let batch: usize = args.parse_or("batch", 0)?;

    let ds = stored.to_dataset();
    let (tree, db) = XTree::bulk_load(
        &ds,
        XTreeConfig {
            layout: stored.layout(),
            ..Default::default()
        },
    );
    let dim = db.object(ObjectId(0)).dim();
    let model = CostModel::paper_1999(dim);
    let disk = SimulatedDisk::new(db, 0.10);
    let metric = CountingMetric::new(Euclidean);
    let engine = QueryEngine::new(&disk, &tree, metric.clone());

    let algo = mq_mining::Dbscan::new(eps, min_pts);
    let probe = StatsProbe::start(&disk, metric.counter(), Default::default());
    let result = if batch > 0 {
        algo.run_multiple(&engine, batch)
    } else {
        algo.run_single(&engine)
    };
    let stats = probe.finish(&disk, Default::default());

    println!(
        "DBSCAN(eps = {eps}, min_pts = {min_pts}) {}:",
        if batch > 0 {
            format!("with multiple queries (batch {batch})")
        } else {
            "with single queries".into()
        }
    );
    println!(
        "  clusters: {}   noise: {}   queries: {}",
        result.clusters,
        result.noise_count(),
        result.queries
    );
    println!(
        "  cost: {} page reads, {} distance calcs, modeled {:.2} s",
        stats.io.physical_reads,
        stats.dist_calcs,
        model.total_seconds(&stats)
    );
    // Cluster size histogram (top 10).
    let mut sizes: Vec<usize> = vec![0; result.clusters as usize];
    for l in &result.labels {
        if let mq_mining::Label::Cluster(c) = l {
            sizes[*c as usize] += 1;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("  largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
    Ok(())
}

/// `mq loadgen <ADDR>`: replay a seed-deterministic workload against a
/// running server and print the client-side latency report.
pub fn loadgen(args: &Args) -> CmdResult {
    use mq_loadgen::{run, Mode, RequestPlan, RunOptions, WorkloadSpec};

    let addr = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let requests: usize = args.parse_or("requests", 1_000)?;
    let seed: u64 = args.parse_or("seed", 7)?;
    let skew: f64 = args.parse_or("skew", 0.8)?;
    let pool_n: usize = args.parse_or("pool", 32)?;
    if pool_n == 0 {
        return Err("--pool must be at least 1".into());
    }
    let qtype = parse_qtype(args)?;
    // `--ramp start:end:steps` is a step-rate open-loop profile; it
    // overrides `--mode`.
    let mode = if args.has("ramp") {
        let raw = args.required("ramp")?;
        let parts: Vec<&str> = raw.split(':').collect();
        let bad = || format!("cannot parse --ramp '{raw}' (expected START_QPS:END_QPS:STEPS)");
        if parts.len() != 3 {
            return Err(bad().into());
        }
        let start_qps: f64 = parts[0].parse().map_err(|_| bad())?;
        let end_qps: f64 = parts[1].parse().map_err(|_| bad())?;
        let steps: usize = parts[2].parse().map_err(|_| bad())?;
        if !(start_qps > 0.0 && end_qps > 0.0 && steps > 0) {
            return Err(format!("--ramp '{raw}': rates and steps must be positive").into());
        }
        Mode::Ramp {
            start_qps,
            end_qps,
            steps,
        }
    } else {
        match args.string_or("mode", "open").as_str() {
            "open" => Mode::Open {
                offered_qps: args.parse_or("rate", 500.0)?,
            },
            "closed" => Mode::Closed {
                sessions: args.parse_or("sessions", 4)?,
                think: std::time::Duration::from_millis(args.parse_or("think-ms", 1)?),
            },
            other => return Err(format!("unknown --mode '{other}' (open|closed)").into()),
        }
    };

    // Query pool: objects sampled evenly from a saved database (so the
    // server computes real distances against its own data), or synthetic
    // uniform vectors when no file is at hand.
    let pool: Vec<Vector> = if args.has("queries-from") {
        let db: PagedDatabase<Vector> =
            persist::load(&VectorCodec, args.required("queries-from")?)?;
        let n = db.object_count();
        if n == 0 {
            return Err("--queries-from database is empty".into());
        }
        let take = pool_n.min(n);
        (0..take)
            .map(|i| db.object(ObjectId((i * n / take) as u32)).clone())
            .collect()
    } else {
        let dim: usize = args.parse_or("dim", 3)?;
        uniform_vectors(pool_n, dim, seed ^ 0xF00D)
    };

    let plan = RequestPlan::materialize(&WorkloadSpec {
        mode,
        requests,
        qtype,
        pool,
        skew,
        seed,
    });
    let opts = RunOptions {
        connections: args.parse_or("connections", 4)?,
        collection: args.string_or("collection", ""),
        tenant: args.string_or("tenant", ""),
        ..RunOptions::default()
    };
    println!(
        "replaying {requests} requests against {addr} (stream fingerprint {:016x})",
        plan.fingerprint()
    );
    let report = run(&plan, &addr, &opts);
    println!("{}", report.summary());
    if let Some(w) = &report.server {
        let wait = w
            .queue_wait_p99
            .map(|s| format!(", queue-wait p99 {:.2} ms", s * 1e3))
            .unwrap_or_default();
        println!(
            "  server window: {:.0} queries in {:.0} batches (mean {:.2}/batch{wait})",
            w.queries, w.batches, w.mean_batch_size
        );
    }
    if args.has("out") {
        let path = args.required("out")?;
        std::fs::write(path, format!("{}\n", report.to_json()))?;
        println!("wrote {path}");
    }
    // Typed Overloaded rejections are the server's admission control
    // working as designed, not failures; only transport errors and
    // timeouts make the run exit nonzero.
    if (report.ok + report.rejected) as usize != requests {
        return Err(format!(
            "{} of {requests} requests failed ({} errors, {} timeouts)",
            requests as u64 - report.ok - report.rejected,
            report.errors,
            report.timeouts
        )
        .into());
    }
    Ok(())
}

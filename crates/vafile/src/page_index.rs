//! VA-file page index: a [`SimilarityIndex`] over an **existing** page
//! layout.
//!
//! [`VaFile`](crate::VaFile) is a filter-and-refine processor that packs
//! its own data file, which makes it unusable over a *recovered* layout —
//! a durable store's pages must be served exactly as crash recovery left
//! them. This adapter keeps the recovered layout untouched and instead
//! summarizes each page: per dimension, the min/max quantization cell of
//! the page's live vectors (equi-depth marks, as in the VA-file). That
//! summary yields a true per-page lower bound on the query distance, so
//! the multiple-query engine can serve pages best-first and prune pages
//! whose bound exceeds the current query distance — the VA-file's filter
//! step lifted from objects to pages, with no repacking.
//!
//! Bounds are Euclidean geometry; pair this index only with the
//! Euclidean metric (the same restriction as the tree indexes).

use crate::{dimension_marks, quantize};
use mq_index::{PagePlan, SimilarityIndex};
use mq_metric::Vector;
use mq_storage::{PageId, PagedDatabase};

/// Per-page VA summary: for every dimension the closed cell interval
/// `[min_cell, max_cell]` covering the page's live vectors.
type PageCells = Vec<(u8, u8)>;

/// A VA-quantized page index over a database's existing layout.
pub struct VaPageIndex {
    /// Per dimension: `2^bits + 1` ascending cell boundaries.
    marks: Vec<Vec<f64>>,
    /// Indexed by `PageId`; `None` for pages with no live vectors (they
    /// can never be relevant).
    pages: Vec<Option<PageCells>>,
    dim: usize,
}

impl VaPageIndex {
    /// Summarizes `db`'s pages as they are laid out — no repacking, so
    /// the index is valid for a recovered file store. `bits` is the
    /// VA-file bits-per-dimension knob (the VLDB'98 paper uses 4–8).
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 8, or if live vectors disagree on
    /// dimensionality. An empty database builds an index that plans no
    /// pages.
    pub fn build(db: &PagedDatabase<Vector>, bits: u8) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "bits per dimension must be in 1..=8"
        );
        let cells = 1usize << bits;
        let live: Vec<&Vector> = db
            .page_ids()
            .flat_map(|pid| db.page(pid).records().iter().map(|(_, v)| v))
            .collect();
        let dim = live.first().map_or(0, |v| v.dim());
        assert!(
            live.iter().all(|v| v.dim() == dim),
            "all vectors must share one dimensionality"
        );
        let marks: Vec<Vec<f64>> = (0..dim)
            .map(|d| {
                dimension_marks(
                    live.iter().map(|v| v.components()[d] as f64).collect(),
                    cells,
                )
            })
            .collect();
        let pages = db
            .page_ids()
            .map(|pid| {
                let records = db.page(pid).records();
                if records.is_empty() {
                    return None;
                }
                let mut bounds: PageCells = vec![(u8::MAX, 0); dim];
                for (_, v) in records {
                    for (d, &x) in v.components().iter().enumerate() {
                        let cell = quantize(&marks[d], x as f64);
                        let (lo, hi) = &mut bounds[d];
                        *lo = (*lo).min(cell);
                        *hi = (*hi).max(cell);
                    }
                }
                Some(bounds)
            })
            .collect();
        Self { marks, pages, dim }
    }

    /// Lower bound on the Euclidean distance from `q` to any live vector
    /// on `page`; infinite for pages without live vectors.
    fn mindist(&self, q: &Vector, page: usize) -> f64 {
        let Some(bounds) = self.pages.get(page).and_then(Option::as_ref) else {
            return f64::INFINITY;
        };
        debug_assert_eq!(q.dim(), self.dim);
        let mut lo = 0.0f64;
        for (d, &(min_cell, max_cell)) in bounds.iter().enumerate() {
            let qd = q.components()[d] as f64;
            // The page's values lie inside the union of its cells — the
            // interval from the lowest cell's lower mark to the highest
            // cell's upper mark.
            let lo_mark = self.marks[d][min_cell as usize];
            let hi_mark = self.marks[d][max_cell as usize + 1];
            let dl = if qd < lo_mark {
                lo_mark - qd
            } else if qd > hi_mark {
                qd - hi_mark
            } else {
                0.0
            };
            lo += dl * dl;
        }
        lo.sqrt()
    }
}

struct VaPagePlan {
    /// `(mindist, page)` ascending by bound, then page id.
    ordered: Vec<(f64, u32)>,
    next: usize,
}

impl PagePlan for VaPagePlan {
    fn next(&mut self, query_dist: f64) -> Option<(PageId, f64)> {
        let &(lb, page) = self.ordered.get(self.next)?;
        // Bounds are served ascending: once the smallest remaining bound
        // exceeds the (non-increasing) query distance, no page qualifies.
        if lb > query_dist {
            self.next = self.ordered.len();
            return None;
        }
        self.next += 1;
        Some((PageId(page), lb))
    }
}

impl SimilarityIndex<Vector> for VaPageIndex {
    fn plan<'a>(&'a self, query: &'a Vector) -> Box<dyn PagePlan + 'a> {
        let mut ordered: Vec<(f64, u32)> = (0..self.pages.len())
            .filter_map(|p| {
                let d = self.mindist(query, p);
                d.is_finite().then_some((d, p as u32))
            })
            .collect();
        ordered.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Box::new(VaPagePlan { ordered, next: 0 })
    }

    fn page_mindist(&self, query: &Vector, page: PageId) -> f64 {
        self.mindist(query, page.0 as usize)
    }

    fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn name(&self) -> &str {
        "vafile"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::{Euclidean, Metric, ObjectId};
    use mq_storage::{Dataset, PageLayout};

    fn db(n: usize, dim: usize, seed: u64) -> PagedDatabase<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let ds = Dataset::new(
            (0..n)
                .map(|_| Vector::new((0..dim).map(|_| (next() * 10.0) as f32).collect::<Vec<_>>()))
                .collect(),
        );
        PagedDatabase::pack(&ds, PageLayout::new(1024, 16))
    }

    #[test]
    fn mindist_lower_bounds_every_resident_vector() {
        let db = db(400, 6, 1);
        let index = VaPageIndex::build(&db, 6);
        let q = db.object(ObjectId(7)).clone();
        for pid in db.page_ids() {
            let lb = index.page_mindist(&q, pid);
            for (_, v) in db.page(pid).records() {
                let true_d = Euclidean.distance(&q, v);
                assert!(
                    lb <= true_d + 1e-6,
                    "page {pid:?}: bound {lb} > true {true_d}"
                );
            }
        }
    }

    #[test]
    fn plan_orders_pages_by_ascending_bound_and_prunes() {
        // Insertion-ordered line data: each packed page covers a disjoint
        // value range, so distant pages get non-zero lower bounds (unlike
        // uniform data, where every page spans the whole space).
        let ds = Dataset::new(
            (0..400)
                .map(|i| Vector::new(vec![i as f32, (i / 2) as f32]))
                .collect(),
        );
        let db = PagedDatabase::pack(&ds, PageLayout::new(1024, 16));
        let index = VaPageIndex::build(&db, 6);
        let q = db.object(ObjectId(11)).clone();
        let mut plan = index.plan(&q);
        let mut last = f64::NEG_INFINITY;
        let mut served = 0usize;
        while let Some((_, lb)) = plan.next(f64::INFINITY) {
            assert!(lb >= last, "bounds must ascend");
            last = lb;
            served += 1;
        }
        assert_eq!(served, db.page_count(), "infinite radius serves all pages");

        // A zero radius around a resident query must stop after the pages
        // whose bound is 0 — strictly fewer than all pages on spread data.
        let mut plan = index.plan(&q);
        let mut tight = 0usize;
        while plan.next(0.0).is_some() {
            tight += 1;
        }
        assert!(
            tight < served,
            "a zero radius must prune ({tight} vs {served})"
        );
    }

    #[test]
    fn agrees_with_linear_scan_through_the_engine() {
        use mq_core::{QueryEngine, QueryType};
        use mq_index::LinearScan;
        use mq_storage::SimulatedDisk;

        let db = db(500, 5, 9);
        let scan = LinearScan::new(db.page_count());
        let va = VaPageIndex::build(&db, 6);
        let queries: Vec<(Vector, QueryType)> = (0..4)
            .map(|i| (db.object(ObjectId(i * 37)).clone(), QueryType::knn(5)))
            .collect();

        let run = |index: &dyn SimilarityIndex<Vector>| {
            let disk = SimulatedDisk::new(db.clone(), 0.10);
            let engine = QueryEngine::new(&disk, index, Euclidean);
            let mut session = engine.new_session(queries.clone());
            engine.run_to_completion(&mut session);
            session
                .into_answers()
                .into_iter()
                .map(|a| a.iter().map(|x| (x.id.0, x.distance)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&scan), run(&va));
    }

    #[test]
    fn empty_database_plans_nothing() {
        let ds = Dataset::new(vec![Vector::new(vec![1.0])]);
        let mut db = PagedDatabase::pack(&ds, PageLayout::new(1024, 16));
        db.delete_object(ObjectId(0));
        let index = VaPageIndex::build(&db, 6);
        let q = Vector::new(vec![0.5]);
        assert!(index.plan(&q).next(f64::INFINITY).is_none());
        assert_eq!(index.page_mindist(&q, PageId(0)), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "bits per dimension")]
    fn invalid_bits_rejected() {
        let _ = VaPageIndex::build(&db(10, 2, 7), 0);
    }
}

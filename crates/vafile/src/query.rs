//! VA-file query processing: filter (approximation scan) and refine
//! (candidate visits), for single and multiple similarity queries.

use crate::VaFile;
use mq_core::{Answer, AnswerList, QueryType};
use mq_metric::{Metric, ObjectId, Vector};
use mq_storage::{PageId, SimulatedDisk};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Counters of one VA-file query run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VaStats {
    /// Bound computations during the filter scan (one per object-query
    /// pair; each costs O(d) like a distance calculation but runs on the
    /// compact approximation).
    pub bound_computations: u64,
    /// Objects surviving the filter.
    pub candidates: u64,
    /// Candidates whose true distance was computed during refinement.
    pub refined: u64,
}

impl std::ops::AddAssign for VaStats {
    fn add_assign(&mut self, rhs: VaStats) {
        self.bound_computations += rhs.bound_computations;
        self.candidates += rhs.candidates;
        self.refined += rhs.refined;
    }
}

/// Max-heap entry for tracking the k-th smallest upper bound (the filter
/// threshold δ of the VA-SSA algorithm).
#[derive(PartialEq)]
struct UpperBound(f64);
impl Eq for UpperBound {}
impl PartialOrd for UpperBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for UpperBound {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Tracks δ = the k-th smallest upper bound seen so far (∞ until k seen),
/// capped by the query's range.
struct Delta {
    heap: BinaryHeap<UpperBound>,
    k: usize,
    range: f64,
}

impl Delta {
    fn new(t: &QueryType) -> Self {
        Self {
            heap: BinaryHeap::new(),
            k: if t.has_cardinality_bound() {
                t.cardinality
            } else {
                0
            },
            range: t.range,
        }
    }

    fn observe(&mut self, upper: f64) {
        if self.k == 0 {
            return; // pure range query: δ is the fixed range
        }
        if self.heap.len() < self.k {
            self.heap.push(UpperBound(upper));
        } else if let Some(top) = self.heap.peek() {
            if upper < top.0 {
                self.heap.pop();
                self.heap.push(UpperBound(upper));
            }
        }
    }

    fn threshold(&self) -> f64 {
        // Until k upper bounds are known (or for a pure range query),
        // only the range caps the threshold.
        let kth_upper = if self.k == 0 || self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|u| u.0).unwrap_or(f64::INFINITY)
        };
        kth_upper.min(self.range)
    }
}

impl VaFile {
    /// Answers one similarity query through the VA-file. Returns the
    /// answers (identical to Fig. 1 semantics) and the filter/refine
    /// counters. Data pages are read through `data_disk` (metered);
    /// approximation pages through the VA-file's own disk.
    pub fn similarity_query<M: Metric<Vector>>(
        &self,
        data_disk: &SimulatedDisk<Vector>,
        metric: &M,
        query: &Vector,
        qtype: &QueryType,
    ) -> (AnswerList, VaStats) {
        let (mut answers_vec, stats) =
            self.multiple_similarity_query(data_disk, metric, &[(query.clone(), *qtype)]);
        (
            answers_vec.pop().expect("one query, one answer list"),
            stats,
        )
    }

    /// Answers a batch of similarity queries with **one** filter scan over
    /// the approximation file (the §5.1 page-sharing idea applied to the
    /// VA-file: both the approximation pages and the candidate data pages
    /// are read once for the whole batch).
    pub fn multiple_similarity_query<M: Metric<Vector>>(
        &self,
        data_disk: &SimulatedDisk<Vector>,
        metric: &M,
        queries: &[(Vector, QueryType)],
    ) -> (Vec<AnswerList>, VaStats) {
        let m = queries.len();
        let mut stats = VaStats::default();
        let mut deltas: Vec<Delta> = queries.iter().map(|(_, t)| Delta::new(t)).collect();
        // Per query: (lower bound, object) candidate list.
        let mut candidates: Vec<Vec<(f64, ObjectId)>> = vec![Vec::new(); m];

        // Phase 1: one sequential scan over the approximation file.
        let approx_db = self.approx_disk().database();
        for pid in approx_db.page_ids().collect::<Vec<_>>() {
            let page = self.approx_disk().read_page(pid);
            for (oid, approx) in page.iter() {
                for (qi, (q, _)) in queries.iter().enumerate() {
                    let (lo, hi) = self.bounds(q, approx);
                    stats.bound_computations += 1;
                    deltas[qi].observe(hi);
                    if lo <= deltas[qi].threshold() {
                        candidates[qi].push((lo, oid));
                    }
                }
            }
        }

        // Final filter with the converged thresholds, then group the
        // surviving candidates by data page so each page is read at most
        // once for the whole batch.
        let mut per_page: std::collections::BTreeMap<PageId, Vec<(usize, ObjectId, f64)>> =
            std::collections::BTreeMap::new();
        for (qi, cands) in candidates.iter().enumerate() {
            let threshold = deltas[qi].threshold();
            for &(lo, oid) in cands {
                if lo <= threshold {
                    stats.candidates += 1;
                    let (pid, _) = data_disk.database().locate(oid);
                    per_page.entry(pid).or_default().push((qi, oid, lo));
                }
            }
        }

        // Phase 2: refine, page by page in physical order.
        let mut answers: Vec<AnswerList> =
            queries.iter().map(|(_, t)| AnswerList::new(t)).collect();
        for (pid, items) in per_page {
            let page = data_disk.read_page(pid);
            for (qi, oid, lo) in items {
                let qd = answers[qi].query_dist(&queries[qi].1);
                if lo > qd {
                    continue; // pruned by answers found meanwhile
                }
                let (_, slot) = data_disk.database().locate(oid);
                let object = &page.records()[slot as usize].1;
                let distance = metric.distance(object, &queries[qi].0);
                stats.refined += 1;
                if distance <= answers[qi].query_dist(&queries[qi].1) {
                    answers[qi].insert(Answer { id: oid, distance });
                }
            }
        }
        (answers, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VaConfig;
    use mq_metric::Euclidean;
    use mq_storage::{Dataset, PageLayout};

    fn dataset(n: usize, dim: usize, seed: u64) -> Dataset<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        Dataset::new(
            (0..n)
                .map(|_| Vector::new((0..dim).map(|_| (next() * 10.0) as f32).collect::<Vec<_>>()))
                .collect(),
        )
    }

    fn brute_knn(ds: &Dataset<Vector>, q: &Vector, k: usize) -> Vec<ObjectId> {
        let mut all: Vec<(f64, u32)> = ds
            .iter()
            .map(|(id, o)| (Euclidean.distance(o, q), id.0))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all.into_iter().map(|(_, i)| ObjectId(i)).collect()
    }

    fn build(ds: &Dataset<Vector>) -> (VaFile, SimulatedDisk<Vector>) {
        let cfg = VaConfig {
            layout: PageLayout::new(512, 16),
            ..Default::default()
        };
        let (va, db) = VaFile::build(ds, cfg);
        (va, SimulatedDisk::new(db, 0.1))
    }

    #[test]
    fn knn_matches_brute_force() {
        let ds = dataset(400, 6, 1);
        let (va, disk) = build(&ds);
        for pick in [0u32, 57, 199, 333] {
            let q = ds.object(ObjectId(pick)).clone();
            let (answers, _) = va.similarity_query(&disk, &Euclidean, &q, &QueryType::knn(7));
            let got: Vec<ObjectId> = answers.ids().collect();
            assert_eq!(got, brute_knn(&ds, &q, 7), "query {pick}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let ds = dataset(400, 4, 3);
        let (va, disk) = build(&ds);
        let q = ds.object(ObjectId(42)).clone();
        let eps = 3.0;
        let (answers, _) = va.similarity_query(&disk, &Euclidean, &q, &QueryType::range(eps));
        let mut got: Vec<ObjectId> = answers.ids().collect();
        got.sort_unstable();
        let mut expected: Vec<ObjectId> = ds
            .iter()
            .filter(|(_, o)| Euclidean.distance(o, &q) <= eps)
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn multiple_matches_singles() {
        let ds = dataset(350, 5, 5);
        let (va, disk) = build(&ds);
        let queries: Vec<(Vector, QueryType)> = vec![
            (ds.object(ObjectId(3)).clone(), QueryType::knn(5)),
            (ds.object(ObjectId(77)).clone(), QueryType::range(2.0)),
            (
                ds.object(ObjectId(180)).clone(),
                QueryType::bounded_knn(4, 3.0),
            ),
        ];
        let (multi, _) = va.multiple_similarity_query(&disk, &Euclidean, &queries);
        for (i, (q, t)) in queries.iter().enumerate() {
            let (single, _) = va.similarity_query(&disk, &Euclidean, q, t);
            let a: Vec<ObjectId> = multi[i].ids().collect();
            let b: Vec<ObjectId> = single.ids().collect();
            assert_eq!(a, b, "query {i}");
        }
    }

    #[test]
    fn filter_skips_most_distance_calculations() {
        let ds = dataset(2000, 8, 7);
        let (va, disk) = build(&ds);
        let q = ds.object(ObjectId(100)).clone();
        let (_, stats) = va.similarity_query(&disk, &Euclidean, &q, &QueryType::knn(10));
        assert_eq!(stats.bound_computations, 2000);
        assert!(
            stats.refined < 400,
            "filter should discard most objects, refined {}",
            stats.refined
        );
    }

    #[test]
    fn batch_shares_approximation_scan() {
        let ds = dataset(1000, 6, 9);
        let (va, disk) = build(&ds);
        let queries: Vec<(Vector, QueryType)> = (0..10)
            .map(|i| (ds.object(ObjectId(i * 99)).clone(), QueryType::knn(5)))
            .collect();

        va.approx_disk().cold_restart();
        let (_, _) = va.multiple_similarity_query(&disk, &Euclidean, &queries);
        let batch_io = va.approx_disk().stats().logical_reads;

        va.approx_disk().cold_restart();
        for (q, t) in &queries {
            let _ = va.similarity_query(&disk, &Euclidean, q, t);
        }
        let single_io = va.approx_disk().stats().logical_reads;
        assert_eq!(
            batch_io * 10,
            single_io,
            "one filter scan for the whole batch"
        );
    }

    #[test]
    fn knn_larger_than_database_returns_all() {
        let ds = dataset(20, 3, 11);
        let (va, disk) = build(&ds);
        let q = ds.object(ObjectId(0)).clone();
        let (answers, _) = va.similarity_query(&disk, &Euclidean, &q, &QueryType::knn(100));
        assert_eq!(answers.len(), 20);
    }
}

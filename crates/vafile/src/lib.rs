#![warn(missing_docs)]
//! The VA-file: vector-approximation filtering for high-dimensional scans
//! (Weber, Schek, Blott — VLDB'98; paper ref. \[22\]).
//!
//! §2 of the paper: *"above a certain dimensionality no index structure can
//! process a nearest neighbor query efficiently. Thus, it is suggested to
//! use the sequential scan … In the VA-file, clever bit encodings of the
//! data are used to speed-up the scan."* This module implements that
//! refinement of the linear scan as a filter-and-refine query processor:
//!
//! 1. **Filter** — a sequential scan over a compact *approximation file*
//!    (each vector quantized to `bits` bits per dimension) computes, per
//!    object, a lower and an upper bound on its distance to the query;
//!    objects whose lower bound exceeds the current query distance are
//!    filtered without touching their full vector.
//! 2. **Refine** — surviving candidates are visited in ascending
//!    lower-bound order; only their data pages are read and only their
//!    true distances computed, stopping as soon as the next lower bound
//!    exceeds the query distance.
//!
//! The approximation file lives on its own simulated disk (its pages are a
//! few percent of the data pages), so the harness can report both I/O
//! components separately.
//!
//! The VA-file's execution model is filter-and-refine over *objects*, not
//! best-first over *pages*, so it intentionally does **not** implement
//! `SimilarityIndex`; it provides its own single- and
//! multiple-query entry points with the same answer semantics
//! (equality with Fig. 1 / Definition 4 is covered by the test suite).

mod page_index;
mod query;

pub use page_index::VaPageIndex;
pub use query::VaStats;

use mq_metric::{ObjectId, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk, StorageObject};

/// A quantized vector: one cell index per dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Approximation {
    cells: Box<[u8]>,
}

impl Approximation {
    /// The per-dimension cell indices.
    pub fn cells(&self) -> &[u8] {
        &self.cells
    }
}

impl StorageObject for Approximation {
    fn payload_bytes(&self) -> usize {
        // The real VA-file packs `bits` per dimension; we model the packed
        // size (cells.len() × bits / 8) through the page layout at build
        // time, but store unpacked bytes in memory for speed. The page
        // capacity is computed from the packed size in `VaFile::build`.
        self.cells.len()
    }
}

/// VA-file construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct VaConfig {
    /// Bits per dimension (the VLDB'98 paper uses 4–8).
    pub bits: u8,
    /// Page layout of both the approximation and the data file.
    pub layout: PageLayout,
    /// Buffer fraction of the approximation disk.
    pub buffer_fraction: f64,
}

impl Default for VaConfig {
    fn default() -> Self {
        Self {
            bits: 6,
            layout: PageLayout::PAPER,
            buffer_fraction: 0.10,
        }
    }
}

/// The VA-file over one vector database.
///
/// ```
/// use mq_core::QueryType;
/// use mq_metric::{Euclidean, Vector};
/// use mq_storage::{Dataset, SimulatedDisk};
/// use mq_vafile::{VaConfig, VaFile};
///
/// let ds = Dataset::new((0..500).map(|i| {
///     Vector::new(vec![(i % 23) as f32, (i % 41) as f32, (i % 7) as f32])
/// }).collect());
/// let (va, data_db) = VaFile::build(&ds, VaConfig::default());
/// let disk = SimulatedDisk::new(data_db, 0.10);
/// let q = Vector::new(vec![3.0, 20.0, 4.0]);
/// let (answers, stats) = va.similarity_query(&disk, &Euclidean, &q, &QueryType::knn(5));
/// assert_eq!(answers.len(), 5);
/// // The filter computed one bound per object but refined far fewer.
/// assert_eq!(stats.bound_computations, 500);
/// assert!(stats.refined < 500);
/// ```
pub struct VaFile {
    /// Per dimension: `2^bits + 1` ascending cell boundaries.
    marks: Vec<Vec<f64>>,
    bits: u8,
    dim: usize,
    approx_disk: SimulatedDisk<Approximation>,
}

impl VaFile {
    /// Builds the VA-file for a dataset and packs the full vectors into a
    /// data-page database (scan layout). Cell boundaries are equi-depth
    /// (quantiles) per dimension, as recommended by \[22\] for non-uniform
    /// data.
    ///
    /// # Panics
    /// Panics if the dataset is empty, dimensionalities differ, or
    /// `bits` is 0 or > 8.
    pub fn build(dataset: &Dataset<Vector>, cfg: VaConfig) -> (Self, PagedDatabase<Vector>) {
        assert!(
            !dataset.is_empty(),
            "cannot build a VA-file over an empty dataset"
        );
        assert!(
            cfg.bits >= 1 && cfg.bits <= 8,
            "bits per dimension must be in 1..=8"
        );
        let dim = dataset.object(ObjectId(0)).dim();
        assert!(
            dataset.objects().iter().all(|v| v.dim() == dim),
            "all vectors must share one dimensionality"
        );
        let cells = 1usize << cfg.bits;

        // Equi-depth marks per dimension.
        let mut marks = Vec::with_capacity(dim);
        for d in 0..dim {
            let values: Vec<f64> = dataset
                .objects()
                .iter()
                .map(|v| v.components()[d] as f64)
                .collect();
            marks.push(dimension_marks(values, cells));
        }

        // Quantize all vectors.
        let approximations: Vec<Approximation> = dataset
            .objects()
            .iter()
            .map(|v| {
                let cells: Box<[u8]> = v
                    .components()
                    .iter()
                    .enumerate()
                    .map(|(d, &x)| quantize(&marks[d], x as f64))
                    .collect();
                Approximation { cells }
            })
            .collect();

        // The packed approximation record is dim × bits / 8 bytes.
        // Approximations are fixed-length records in scan order, so they
        // need no slot directory — a 4-byte header suffices.
        let packed_bytes = (dim * cfg.bits as usize).div_ceil(8);
        let approx_layout = PageLayout::new(cfg.layout.block_bytes, 4);
        let approx_capacity = approx_layout.capacity_for(packed_bytes);
        let groups: Vec<Vec<(ObjectId, Approximation)>> = approximations
            .chunks(approx_capacity)
            .enumerate()
            .map(|(chunk, group)| {
                group
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (ObjectId((chunk * approx_capacity + i) as u32), a.clone()))
                    .collect()
            })
            .collect();
        let approx_db = PagedDatabase::from_groups(groups, approx_layout);
        let approx_disk = SimulatedDisk::new(approx_db, cfg.buffer_fraction);

        let data_db = PagedDatabase::pack(dataset, cfg.layout);
        (
            Self {
                marks,
                bits: cfg.bits,
                dim,
                approx_disk,
            },
            data_db,
        )
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The approximation file's disk (for I/O accounting).
    pub fn approx_disk(&self) -> &SimulatedDisk<Approximation> {
        &self.approx_disk
    }

    /// Number of approximation pages (vs. `data_db.page_count()` data
    /// pages — the compression that makes the filter scan cheap).
    pub fn approx_page_count(&self) -> usize {
        self.approx_disk.database().page_count()
    }

    /// Lower and upper bounds on the Euclidean distance between `q` and
    /// any vector quantized as `approx`.
    pub fn bounds(&self, q: &Vector, approx: &Approximation) -> (f64, f64) {
        debug_assert_eq!(q.dim(), self.dim);
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for (d, &cell) in approx.cells().iter().enumerate() {
            let qd = q.components()[d] as f64;
            let lo_mark = self.marks[d][cell as usize];
            let hi_mark = self.marks[d][cell as usize + 1];
            let dl = if qd < lo_mark {
                lo_mark - qd
            } else if qd > hi_mark {
                qd - hi_mark
            } else {
                0.0
            };
            let dh = (qd - lo_mark).abs().max((qd - hi_mark).abs());
            lo += dl * dl;
            hi += dh * dh;
        }
        (lo.sqrt(), hi.sqrt())
    }
}

/// Equi-depth (quantile) cell boundaries for one dimension's values:
/// `cells + 1` non-decreasing marks with the outermost pair widened so
/// every value falls into a cell even after f32 → f64 rounding.
pub(crate) fn dimension_marks(mut values: Vec<f64>, cells: usize) -> Vec<f64> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite components"));
    let mut m = Vec::with_capacity(cells + 1);
    for c in 0..=cells {
        let idx = (c * (values.len() - 1)) / cells;
        m.push(values[idx]);
    }
    m[0] -= 1e-9;
    m[cells] += 1e-9;
    // Enforce non-decreasing marks (duplicated quantiles collapse).
    for c in 1..=cells {
        if m[c] < m[c - 1] {
            m[c] = m[c - 1];
        }
    }
    m
}

pub(crate) fn quantize(marks: &[f64], x: f64) -> u8 {
    // partition_point gives the first mark > x; the cell is one before.
    let cells = marks.len() - 1;
    let idx = marks.partition_point(|m| *m <= x);
    (idx.saturating_sub(1)).min(cells - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::{Euclidean, Metric};

    fn dataset(n: usize, dim: usize, seed: u64) -> Dataset<Vector> {
        let mut x = seed.max(1);
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        Dataset::new(
            (0..n)
                .map(|_| Vector::new((0..dim).map(|_| (next() * 10.0) as f32).collect::<Vec<_>>()))
                .collect(),
        )
    }

    #[test]
    fn bounds_bracket_true_distances() {
        let ds = dataset(300, 6, 1);
        let (va, db) = VaFile::build(&ds, VaConfig::default());
        let q = ds.object(ObjectId(7)).clone();
        for pid in db.page_ids() {
            for (oid, v) in db.page(pid).records() {
                let approx_page = va.approx_disk.database().locate(*oid).0;
                let approx = &va.approx_disk.database().page(approx_page).records()
                    [va.approx_disk.database().locate(*oid).1 as usize]
                    .1;
                let (lo, hi) = va.bounds(&q, approx);
                let true_d = Euclidean.distance(&q, v);
                assert!(lo <= true_d + 1e-6, "lower bound {lo} > true {true_d}");
                assert!(hi >= true_d - 1e-6, "upper bound {hi} < true {true_d}");
            }
        }
    }

    #[test]
    fn more_bits_tighten_bounds() {
        let ds = dataset(300, 4, 3);
        let q = ds.object(ObjectId(11)).clone();
        let gap = |bits: u8| {
            let (va, _) = VaFile::build(
                &ds,
                VaConfig {
                    bits,
                    ..Default::default()
                },
            );
            let mut total = 0.0;
            for (oid, _) in ds.iter() {
                let (pid, slot) = va.approx_disk.database().locate(oid);
                let approx = &va.approx_disk.database().page(pid).records()[slot as usize].1;
                let (lo, hi) = va.bounds(&q, approx);
                total += hi - lo;
            }
            total
        };
        assert!(gap(6) < gap(2), "6-bit bounds should be tighter than 2-bit");
    }

    #[test]
    fn approximation_file_is_smaller_than_data_file() {
        let ds = dataset(3000, 16, 5);
        let (va, db) = VaFile::build(&ds, VaConfig::default());
        assert!(
            va.approx_page_count() * 3 < db.page_count(),
            "approximation file should be much smaller: {} vs {}",
            va.approx_page_count(),
            db.page_count()
        );
    }

    #[test]
    fn quantize_boundaries() {
        let marks = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(
            quantize(&marks, -5.0),
            0,
            "below range clamps to first cell"
        );
        assert_eq!(quantize(&marks, 0.5), 0);
        assert_eq!(quantize(&marks, 1.0), 1, "boundary goes to upper cell");
        assert_eq!(quantize(&marks, 2.5), 2);
        assert_eq!(quantize(&marks, 99.0), 2, "above range clamps to last cell");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let ds = Dataset::new(Vec::<Vector>::new());
        let _ = VaFile::build(&ds, VaConfig::default());
    }

    #[test]
    #[should_panic(expected = "bits per dimension")]
    fn invalid_bits_rejected() {
        let ds = dataset(10, 2, 7);
        let _ = VaFile::build(
            &ds,
            VaConfig {
                bits: 0,
                ..Default::default()
            },
        );
    }
}

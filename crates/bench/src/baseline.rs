//! Pre-kernel scalar baselines for the batch-kernel benchmarks.

use mq_metric::{Metric, Vector};

/// Euclidean distance exactly as the engine computed it before the blocked
/// batch kernels landed: a per-pair dimensionality assert and one
/// sequential `f64` accumulator. Only [`Metric::distance`] is implemented,
/// so `distance_batch` and `distance_le` run through the trait's pairwise
/// fallbacks — benchmarking against this measures the full kernel win
/// (blocked accumulation + hoisted asserts + bounded early exit), not just
/// the loop body.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveEuclidean;

impl Metric<Vector> for NaiveEuclidean {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(
            a.dim(),
            b.dim(),
            "distance between vectors of different dimensionality ({} vs {})",
            a.dim(),
            b.dim()
        );
        let mut sum = 0.0f64;
        for (x, y) in a.components().iter().zip(b.components()) {
            let d = *x as f64 - *y as f64;
            sum += d * d;
        }
        sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_metric::Euclidean;

    #[test]
    fn naive_agrees_with_kernel_metric() {
        // The blocked kernel reorders additions, so allow an ulp-scale
        // difference — but no more.
        let a = Vector::new((0..64).map(|i| i as f32 * 0.37).collect::<Vec<_>>());
        let b = Vector::new((0..64).map(|i| 20.0 - i as f32 * 0.11).collect::<Vec<_>>());
        let naive = NaiveEuclidean.distance(&a, &b);
        let kernel = Euclidean.distance(&a, &b);
        assert!((naive - kernel).abs() <= naive * 1e-12);
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn naive_rejects_dimension_mismatch() {
        let a = Vector::new(vec![0.0, 1.0]);
        let b = Vector::new(vec![0.0]);
        let _ = NaiveEuclidean.distance(&a, &b);
    }
}

//! Extension table: all four access methods side by side on both §6
//! databases — linear scan, VA-file (the scan refinement §2 recommends for
//! high dimensions, paper ref. \[22\]), X-tree, and M-tree.
//!
//! Reports per-query page reads (data + approximation where applicable),
//! distance calculations, and modeled total cost for single k-NN queries.

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_core::{QueryEngine, StatsProbe};
use mq_datagen::classification_query_ids;
use mq_index::{MTree, MTreeConfig};
use mq_metric::{CountingMetric, Euclidean};
use mq_storage::{Dataset, SimulatedDisk};
use mq_vafile::{VaConfig, VaFile};

const QUERIES: usize = 40;

fn main() {
    let env = BenchEnv::from_env();
    for db in env.dbs() {
        header(&format!(
            "Access methods — {} database ({} objects, {}-d), single {}-NN queries",
            db.name,
            db.objects.len(),
            db.dim,
            db.paper_k()
        ));
        let ids = classification_query_ids(db.objects.len(), QUERIES, env.seed);
        let queries = db.knn_queries(&ids, db.paper_k());
        let model = db.cost_model();
        let mut table = Table::new(&["method", "pages/q", "dists/q", "modeled s/q"]);

        // Scan and X-tree rigs from the shared environment.
        for rig in db.rigs() {
            rig.cold_restart();
            let probe = StatsProbe::start(&rig.disk, rig.metric.counter(), Default::default());
            let engine = rig.engine();
            for (q, t) in &queries {
                let _ = engine.similarity_query(q, t);
            }
            let stats = probe.finish(&rig.disk, Default::default());
            table.row(vec![
                rig.method.name().to_string(),
                fmt(stats.io.physical_reads as f64 / QUERIES as f64),
                fmt(stats.dist_calcs as f64 / QUERIES as f64),
                fmt(model.total_seconds(&stats) / QUERIES as f64),
            ]);
        }

        // VA-file: approximation pages + data pages; bound computations
        // priced like distance calculations on the compressed file.
        let dataset = Dataset::new(db.objects.clone());
        let (va, data_db) = VaFile::build(&dataset, VaConfig::default());
        let data_disk = SimulatedDisk::new(data_db, 0.10);
        let metric = CountingMetric::new(Euclidean);
        va.approx_disk().cold_restart();
        let probe = StatsProbe::start(&data_disk, metric.counter(), Default::default());
        let mut va_stats_total = mq_vafile::VaStats::default();
        for (q, t) in &queries {
            let (_, s) = va.similarity_query(&data_disk, &metric, q, t);
            va_stats_total += s;
        }
        let mut stats = probe.finish(&data_disk, Default::default());
        let approx_io = va.approx_disk().stats();
        stats.io += approx_io;
        // Price a bound computation like a distance calculation (same O(d)
        // loop; the win is in I/O volume and candidate filtering).
        stats.dist_calcs += va_stats_total.bound_computations;
        table.row(vec![
            format!("va-file({}bit)", va.bits()),
            fmt(stats.io.physical_reads as f64 / QUERIES as f64),
            fmt(stats.dist_calcs as f64 / QUERIES as f64),
            fmt(model.total_seconds(&stats) / QUERIES as f64),
        ]);

        // M-tree.
        let (mtree, mdb) = MTree::insert_load(&dataset, Euclidean, MTreeConfig::default());
        let mdisk = SimulatedDisk::new(mdb, 0.10);
        let metric = CountingMetric::new(Euclidean);
        let probe = StatsProbe::start(&mdisk, metric.counter(), Default::default());
        let engine = QueryEngine::new(&mdisk, &mtree, metric.clone());
        for (q, t) in &queries {
            let _ = engine.similarity_query(q, t);
        }
        let stats = probe.finish(&mdisk, Default::default());
        table.row(vec![
            "m-tree".into(),
            fmt(stats.io.physical_reads as f64 / QUERIES as f64),
            fmt(stats.dist_calcs as f64 / QUERIES as f64),
            fmt(model.total_seconds(&stats) / QUERIES as f64),
        ]);

        table.print();
        println!(
            "va-file refinement: {} candidates, {} refined of {} objects per query (avg)",
            fmt(va_stats_total.candidates as f64 / QUERIES as f64),
            fmt(va_stats_total.refined as f64 / QUERIES as f64),
            db.objects.len()
        );
    }
}

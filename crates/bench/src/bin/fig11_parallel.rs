//! Figure 11: parallelization speed-up per similarity query — parallel
//! multiple similarity queries (s servers, m = 100·s) vs. sequential
//! multiple similarity queries (one server, m = 100).
//!
//! Paper shape to reproduce: on the astronomy database the scan is
//! super-linear up to 8 servers (near-linear 13.4× at 16) while the X-tree
//! stays super-linear (17.9× at 16); on the (much smaller) image database
//! speed-ups are sub-linear and degrade from 8 to 16 servers because the
//! quadratic `QObjDists` initialization and per-object avoidance loops grow
//! with m = 100·s while the per-server data shrinks.

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{parallel_sweep, PAPER_SS};

fn main() {
    let env = BenchEnv::from_env();
    let points = parallel_sweep(&env, &PAPER_SS);

    for db in env.dbs() {
        header(&format!(
            "Fig. 11 — {} database ({}-d): parallel vs. sequential multiple queries",
            db.name, db.dim
        ));
        let mut table = Table::new(&[
            "s",
            "m",
            "scan speed-up",
            "x-tree speed-up",
            "scan s/q (par)",
            "x-tree s/q (par)",
        ]);
        for &s in &PAPER_SS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.s == s && p.method.name() == "scan")
                .expect("sweep point");
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.s == s && p.method.name() == "x-tree")
                .expect("sweep point");
            table.row(vec![
                s.to_string(),
                scan.queries.to_string(),
                fmt(scan.parallel_speedup()),
                fmt(tree.parallel_speedup()),
                fmt(scan.parallel_per_query()),
                fmt(tree.parallel_per_query()),
            ]);
        }
        table.print();
        println!(
            "paper at s = 16 (astronomy): scan 13.4x, x-tree 17.9x (super-linear);\n\
             image database: sub-linear, degrading beyond 8 servers."
        );
    }
}

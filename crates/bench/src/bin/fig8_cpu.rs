//! Figure 8: average CPU cost per similarity query vs. m.
//!
//! Paper shape to reproduce: on the scan, the triangle-inequality avoidance
//! cuts CPU by 7.1× on the (nearly uniform) astronomy data and by 28× on
//! the (highly clustered) image data at m = 100; on the X-tree, the gain is
//! only ~2.1× on both — the index already visits only objects close to the
//! query objects, which are the hardest to avoid.

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{m_sweep, PAPER_MS};

fn main() {
    let env = BenchEnv::from_env();
    let total = *PAPER_MS.iter().max().unwrap();
    let points = m_sweep(&env, &PAPER_MS, total);

    for db in env.dbs() {
        header(&format!(
            "Fig. 8 — {} database ({}-d): avg CPU per query",
            db.name, db.dim
        ));
        let mut table = Table::new(&[
            "m",
            "scan dists/q",
            "scan cpu s/q",
            "scan avoided%",
            "x-tree dists/q",
            "x-tree cpu s/q",
            "x-tree avoided%",
        ]);
        for &m in &PAPER_MS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "scan")
                .expect("sweep point");
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "x-tree")
                .expect("sweep point");
            table.row(vec![
                m.to_string(),
                fmt(scan.dists_per_query()),
                fmt(scan.cpu_per_query()),
                fmt(scan.stats.avoidance.avoidance_ratio() * 100.0),
                fmt(tree.dists_per_query()),
                fmt(tree.cpu_per_query()),
                fmt(tree.stats.avoidance.avoidance_ratio() * 100.0),
            ]);
        }
        table.print();
        let at = |method: &str, m: usize| {
            points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == method)
                .unwrap()
                .cpu_per_query()
        };
        println!(
            "CPU reduction m=1 → m={total}: scan {}x (paper: 7.1 astro / 28 image), \
             x-tree {}x (paper: 2.1)",
            fmt(at("scan", 1) / at("scan", total)),
            fmt(at("x-tree", 1) / at("x-tree", total)),
        );
    }
}

//! §6 preamble: "we experimented with a broad range of k values and found
//! that the average cost per k-nearest neighbor query was quite robust to
//! the value of k".
//!
//! This table sweeps k at a fixed block size (m = 20) on both databases
//! and both access methods; per-query cost should vary only mildly with k.

use mq_bench::report::{fmt, header, Table};
use mq_bench::run::run_blocked;
use mq_bench::setup::BenchEnv;
use mq_core::QueryType;
use mq_datagen::classification_query_ids;

const KS: [usize; 5] = [1, 5, 10, 20, 50];
const M: usize = 20;
const QUERIES: usize = 60;

fn main() {
    let env = BenchEnv::from_env();
    for db in env.dbs() {
        header(&format!(
            "k-robustness — {} database ({}-d), m = {M}, {QUERIES} queries",
            db.name, db.dim
        ));
        let ids = classification_query_ids(db.objects.len(), QUERIES, env.seed);
        let model = db.cost_model();
        let mut table = Table::new(&[
            "k",
            "scan total s/q",
            "x-tree total s/q",
            "scan reads/q",
            "x-tree reads/q",
        ]);
        for &k in &KS {
            let queries: Vec<_> = ids
                .iter()
                .map(|id| (db.objects[id.index()].clone(), QueryType::knn(k)))
                .collect();
            let mut cells = vec![k.to_string()];
            let mut reads = Vec::new();
            for rig in db.rigs() {
                let run = run_blocked(rig, &queries, M, true);
                cells.push(fmt(model.total_seconds(&run.stats) / run.queries as f64));
                reads.push(fmt(run.stats.io.physical_reads as f64 / run.queries as f64));
            }
            cells.extend(reads);
            table.row(cells);
        }
        table.print();
    }
    println!("\npaper: per-query cost is quite robust to k; reported figures use k = 10 / 20.");
}

//! End-to-end latency SLO harness: an in-process `mq` server under
//! seed-deterministic open-loop and closed-loop client load.
//!
//! The rig is the full production path — TCP loopback, the batching
//! scheduler, the paged engine with avoidance — driven by `mq-loadgen`:
//!
//! * **open loop** — Poisson arrivals at an offered rate with Zipf
//!   hot-key skew, latency measured from each request's *intended* start
//!   (coordinated-omission-safe);
//! * **closed loop** — N concurrent sessions with think time, latency
//!   per round trip.
//!
//! Each mode's workload plan is materialized **twice** and the two
//! fingerprints asserted equal: the offered request stream is provably a
//! pure function of the seed, so two runs of this binary with the same
//! seed compare latency under identical load. Results (p50/p95/p99/p999,
//! achieved-vs-offered throughput, error/timeout/retry counts, the
//! server-side batching window) go to `BENCH_server.json`.
//!
//! A third run drives the **overload** path: a ramp plan steps the
//! offered rate past a deliberately small admission bound (`--max-queue`
//! territory) on the event-loop frontend, asserting that saturation
//! produces typed `Overloaded` rejections — never transport errors — and
//! that the latency of *admitted* requests stays bounded while the queue
//! sheds load.
//!
//! Flags/env: `--smoke` shrinks the database and request counts for CI;
//! `--assert-slo` exits non-zero when a run has transport errors or its
//! p99 exceeds the bound — and refuses to run at all on a 1-core host,
//! where client threads and server workers time-slice one core and any
//! bound would assert scheduling noise (run without the flag there; the
//! JSON records `cores`). `MQ_BENCH_N` overrides the object count,
//! `MQ_SEED` the seed, `MQ_LOAD_REQUESTS`/`MQ_LOAD_QPS`/
//! `MQ_LOAD_SESSIONS`/`MQ_LOAD_THINK_MS`/`MQ_LOAD_CONNECTIONS` the load
//! shape, `MQ_SLO_P99_MS` the (deliberately generous) p99 bound,
//! `MQ_OVERLOAD_QUEUE` the overload run's admission bound, and
//! `MQ_OVERLOAD_END_QPS` the top of its ramp.

use mq_bench::setup::{env_u64, env_usize};
use mq_core::QueryType;
use mq_datagen::image_histograms;
use mq_front::FrontServer;
use mq_index::LinearScan;
use mq_loadgen::{run, Mode, RequestPlan, RunOptions, RunReport, WorkloadSpec};
use mq_obs::Recorder;
use mq_server::{QueryServer, ServerConfig, SingleEngineBackend};
use mq_storage::{Dataset, PageLayout, PagedDatabase};
use std::time::Duration;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Materializes the spec twice and proves the stream is seed-pure.
fn plan_twice(spec: &WorkloadSpec) -> RequestPlan {
    let a = RequestPlan::materialize(spec);
    let b = RequestPlan::materialize(spec);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "request stream is not a pure function of the seed"
    );
    assert_eq!(a.encode(), b.encode());
    a
}

fn check_slo(report: &RunReport, slo_p99: f64, label: &str) -> Vec<String> {
    let mut violations = Vec::new();
    if report.errors > 0 || report.timeouts > 0 {
        violations.push(format!(
            "{label}: {} transport errors, {} timeouts (SLO requires zero)",
            report.errors, report.timeouts
        ));
    }
    if report.ok as usize != report.requests {
        violations.push(format!(
            "{label}: only {}/{} requests succeeded",
            report.ok, report.requests
        ));
    }
    if report.p99 > slo_p99 {
        violations.push(format!(
            "{label}: p99 {:.1} ms exceeds the {:.1} ms bound",
            report.p99 * 1e3,
            slo_p99 * 1e3
        ));
    }
    violations
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let assert_slo = std::env::args().any(|a| a == "--assert-slo");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if assert_slo && cores == 1 {
        eprintln!(
            "error: --assert-slo requires a multi-core host; this container has 1 core, where \
             client threads and server workers can only take turns on the existing core and a \
             latency bound would assert scheduling noise. Run without --assert-slo to still \
             produce BENCH_server.json (it records cores={cores} for readers)."
        );
        std::process::exit(2);
    }

    let n = env_usize("MQ_BENCH_N", if smoke { 2_000 } else { 10_000 });
    let seed = env_u64("MQ_SEED", 20000203);
    let requests = env_usize("MQ_LOAD_REQUESTS", if smoke { 300 } else { 3_000 });
    let offered_qps = env_f64("MQ_LOAD_QPS", if smoke { 400.0 } else { 1_000.0 });
    let sessions = env_usize("MQ_LOAD_SESSIONS", 4);
    let think_ms = env_u64("MQ_LOAD_THINK_MS", 1);
    let connections = env_usize("MQ_LOAD_CONNECTIONS", 4);
    let slo_p99 = env_f64("MQ_SLO_P99_MS", 250.0) / 1e3;

    // The Fig. 7/8 image workload behind the full server stack.
    let objects = image_histograms(n, seed);
    let dim = objects[0].dim();
    // Hot query pool: 32 database objects, Zipf-skewed below so batching
    // and triangle-inequality reuse see recurring queries.
    let pool: Vec<_> = (0..32).map(|i| objects[i * n / 32].clone()).collect();
    let ds = Dataset::new(objects);
    let db = PagedDatabase::pack(&ds, PageLayout::PAPER);
    let scan = LinearScan::new(db.page_count());
    let backend = SingleEngineBackend::new(db, Box::new(scan), 0.0, true);
    let recorder = Recorder::enabled();
    let config = ServerConfig::default()
        .with_max_batch(8)
        .with_max_wait(Duration::from_millis(2));
    let server =
        QueryServer::bind_with_recorder("127.0.0.1:0", Box::new(backend), &config, &recorder)
            .expect("bind loopback server");
    let addr = server.local_addr().to_string();

    println!(
        "bench_server: {n} objects, {dim}-d, {requests} requests/mode, seed {seed}, {cores} cores"
    );

    let opts = RunOptions {
        connections,
        ..RunOptions::default()
    };
    let qtype = QueryType::knn(10);

    let open_plan = plan_twice(&WorkloadSpec {
        mode: Mode::Open { offered_qps },
        requests,
        qtype,
        pool: pool.clone(),
        skew: 0.8,
        seed,
    });
    let open = run(&open_plan, &addr, &opts);
    println!("{}", open.summary());

    let closed_plan = plan_twice(&WorkloadSpec {
        mode: Mode::Closed {
            sessions,
            think: Duration::from_millis(think_ms),
        },
        requests,
        qtype,
        pool,
        skew: 0.8,
        seed,
    });
    let closed = run(&closed_plan, &addr, &opts);
    println!("{}", closed.summary());

    assert!(
        server.drain(Duration::from_secs(10)),
        "server did not drain after both runs"
    );

    // Overload run: a fresh event-loop frontend with a small per-
    // collection queue bound, rammed past capacity by a step-rate ramp
    // with more concurrent connections than queue slots. Saturation must
    // surface as typed Overloaded rejections (shed at admission, before
    // any distance work), while the requests that *were* admitted keep a
    // bounded p99.
    let overload_queue = env_usize("MQ_OVERLOAD_QUEUE", 8);
    let overload_end_qps = env_f64("MQ_OVERLOAD_END_QPS", if smoke { 2_000.0 } else { 4_000.0 });
    let overload_requests = env_usize("MQ_OVERLOAD_REQUESTS", if smoke { 400 } else { 2_000 });
    let overload_objects = image_histograms(n, seed);
    let overload_pool: Vec<_> = (0..32)
        .map(|i| overload_objects[i * n / 32].clone())
        .collect();
    let overload_db = PagedDatabase::pack(&Dataset::new(overload_objects), PageLayout::PAPER);
    let overload_scan = LinearScan::new(overload_db.page_count());
    let overload_backend =
        SingleEngineBackend::new(overload_db, Box::new(overload_scan), 0.0, true);
    let overload_recorder = Recorder::enabled();
    let overload_config = ServerConfig::default()
        .with_max_batch(8)
        .with_max_wait(Duration::from_millis(2))
        .with_max_queue(overload_queue);
    let overload_server = FrontServer::bind_with_recorder(
        "127.0.0.1:0",
        Box::new(overload_backend),
        &overload_config,
        &overload_recorder,
    )
    .expect("bind overload server");
    let overload_addr = overload_server.local_addr().to_string();
    let overload_plan = plan_twice(&WorkloadSpec {
        mode: Mode::Ramp {
            start_qps: offered_qps / 4.0,
            end_qps: overload_end_qps,
            steps: 4,
        },
        requests: overload_requests,
        qtype,
        pool: overload_pool,
        skew: 0.8,
        seed,
    });
    let overload_opts = RunOptions {
        // More in-flight client requests than queue slots, so the depth
        // bound genuinely engages.
        connections: (overload_queue * 3).max(connections),
        ..RunOptions::default()
    };
    let overload = run(&overload_plan, &overload_addr, &overload_opts);
    println!("{}", overload.summary());
    assert!(
        overload_server.drain(Duration::from_secs(10)),
        "overload server did not drain"
    );
    assert!(
        overload.rejected > 0,
        "the overload ramp (to {overload_end_qps} qps against a {overload_queue}-deep queue) \
         never tripped admission control"
    );
    assert_eq!(
        (overload.ok + overload.rejected) as usize,
        overload.requests,
        "every overload request must end as an answer or a typed rejection, never a transport \
         error ({} errors, {} timeouts)",
        overload.errors,
        overload.timeouts,
    );
    // Post-drain ledger: the scheduler only ever counted admitted queries.
    let overload_metrics = overload_server.metrics();
    assert_eq!(
        overload_metrics.queries, overload.ok,
        "scheduler query counter must equal the admitted (answered) count — rejected requests \
         never reach the engine"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"server_load\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"db\": \"image-histograms\", \"objects\": {n}, \"dim\": {dim}, \
         \"requests\": {requests}, \"offered_qps\": {offered_qps}, \"sessions\": {sessions}, \
         \"think_ms\": {think_ms}, \"connections\": {connections}, \"knn\": 10, \
         \"skew\": 0.8, \"seed\": {seed}, \"smoke\": {smoke}, \"cores\": {cores}, \
         \"slo_p99_ms\": {} }},\n",
        slo_p99 * 1e3
    ));
    json.push_str(&format!(
        "  \"overload_config\": {{ \"frontend\": \"event\", \"max_queue\": {overload_queue}, \
         \"requests\": {overload_requests}, \"ramp_end_qps\": {overload_end_qps}, \
         \"connections\": {} }},\n",
        overload_opts.connections
    ));
    json.push_str(&format!("  \"open\": {},\n", open.to_json()));
    json.push_str(&format!("  \"closed\": {},\n", closed.to_json()));
    json.push_str(&format!("  \"overload\": {}\n", overload.to_json()));
    json.push_str("}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");

    if assert_slo {
        let mut violations = check_slo(&open, slo_p99, "open");
        violations.extend(check_slo(&closed, slo_p99, "closed"));
        // Overload: transport must stay clean and *admitted* requests
        // (the only ones in the latency histogram) must stay under the
        // bound even while the ramp sheds load.
        if overload.errors > 0 || overload.timeouts > 0 {
            violations.push(format!(
                "overload: {} transport errors, {} timeouts (rejections must be typed)",
                overload.errors, overload.timeouts
            ));
        }
        if overload.p99 > slo_p99 {
            violations.push(format!(
                "overload: admitted p99 {:.1} ms exceeds the {:.1} ms bound — the queue bound \
                 failed to keep admitted latency flat under saturation",
                overload.p99 * 1e3,
                slo_p99 * 1e3
            ));
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("SLO violation: {v}");
            }
            std::process::exit(1);
        }
        println!(
            "SLO assertion passed: p99 open {:.1} ms / closed {:.1} ms / overload-admitted \
             {:.1} ms within {:.0} ms, zero errors, {} typed rejections under overload",
            open.p99 * 1e3,
            closed.p99 * 1e3,
            overload.p99 * 1e3,
            slo_p99 * 1e3,
            overload.rejected,
        );
    }
}

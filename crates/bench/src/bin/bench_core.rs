//! Micro-benchmark of the multiple-query page-evaluation hot path:
//! scalar pairwise fallback vs. blocked batch kernels vs. kernels plus
//! intra-batch parallel page evaluation.
//!
//! Setup follows the Fig. 7/8 image workload: 64-d histogram data packed
//! with the paper's page layout, m = 16 k-NN queries (k = 20) answered as
//! one batch over a linear scan, avoidance enabled. Three configurations
//! run the identical batch:
//!
//! * `scalar`   — [`NaiveEuclidean`] (per-pair assert, sequential sum, no
//!   `distance_batch`/`distance_le` overrides), 1 thread: the pre-kernel
//!   engine.
//! * `kernel`   — [`Euclidean`]'s blocked kernels, 1 thread.
//! * `parallel` — blocked kernels + 2 and 4 page-evaluation threads from
//!   the engine's persistent worker pool, with pipelined page prefetch
//!   (depth 2).
//!
//! All configurations produce bit-identical answers (enforced here,
//! property-tested in `mq-core`), so the comparison is pure throughput.
//! Results go to `BENCH_core.json` in the current directory, together
//! with the host's core count — thread-scaling numbers from a 1-core
//! container measure scheduling overhead, not parallelism, so read the
//! `cores` field before comparing rows.
//!
//! Flags/env: `--smoke` shrinks the database and repetitions for CI;
//! `--assert-speedup` exits non-zero when the parallel rows regress
//! against the single-thread kernel row — and refuses to run at all on a
//! 1-core host, where extra threads can only take turns on the one core
//! and any threshold would measure scheduling noise (run without the flag
//! there; the JSON records `cores` so readers can judge); `MQ_BENCH_N`
//! overrides the object count; `MQ_SEED` the seed.

use mq_bench::baseline::NaiveEuclidean;
use mq_bench::setup::{env_u64, env_usize};
use mq_core::{Answer, QueryEngine, QueryType};
use mq_datagen::image_histograms;
use mq_index::LinearScan;
use mq_metric::{kernel, Euclidean, Metric, SimdLevel, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::time::Instant;

const M: usize = 16;
const K: usize = 20;

/// Euclidean pinned to one dispatch tier, so the microbench can put the
/// scalar blocked kernels and the host's SIMD kernels side by side in one
/// process regardless of what `MQ_SIMD` selected globally.
struct ForcedL2(SimdLevel);

impl Metric<Vector> for ForcedL2 {
    fn distance(&self, a: &Vector, b: &Vector) -> f64 {
        kernel::l2_sq_at(self.0, a.components(), b.components()).sqrt()
    }

    fn name(&self) -> &str {
        "forced-l2"
    }
}

struct Measurement {
    name: &'static str,
    threads: usize,
    secs: f64,
    answers: Vec<Vec<Answer>>,
    pairs: u64,
}

/// Times the full m-query batch with the given metric and thread count,
/// returning the best of `reps` cold-buffer repetitions.
fn measure<M2: Metric<Vector> + Sync>(
    name: &'static str,
    dataset: &Dataset<Vector>,
    queries: &[(Vector, QueryType)],
    metric: M2,
    threads: usize,
    prefetch_depth: usize,
    reps: usize,
) -> Measurement {
    let db = PagedDatabase::pack(dataset, PageLayout::PAPER);
    let index = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.10);
    // One engine for all reps: its persistent worker pool is created once
    // and reused, exactly like a long-lived server backend.
    let engine = QueryEngine::new(&disk, &index, metric)
        .with_threads(threads)
        .with_prefetch_depth(prefetch_depth);
    let mut best = f64::INFINITY;
    let mut answers = Vec::new();
    let mut pairs = 0;
    for _ in 0..reps {
        disk.cold_restart();
        let start = Instant::now();
        let mut session = engine.new_session(queries.to_vec());
        engine.run_to_completion(&mut session);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        pairs = session.avoidance_stats().computed;
        answers = session.into_answers();
    }
    Measurement {
        name,
        threads,
        secs: best,
        answers,
        pairs,
    }
}

/// Bit-exact agreement: same kernels, different thread count.
fn assert_identical(base: &Measurement, other: &Measurement) {
    assert_eq!(base.answers.len(), other.answers.len());
    for (a, b) in base.answers.iter().zip(&other.answers) {
        assert_eq!(a.len(), b.len(), "{}: answer count", other.name);
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "{}: answer id", other.name);
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "{}: answer bits",
                other.name
            );
        }
    }
    assert_eq!(base.pairs, other.pairs, "{}: pairs evaluated", other.name);
}

/// Ulp-tolerant agreement: the naive baseline accumulates in a different
/// order than the blocked kernels, so distances (and with them the odd
/// avoidance verdict) may differ in the last bits.
fn assert_close(base: &Measurement, other: &Measurement) {
    assert_eq!(base.answers.len(), other.answers.len());
    for (a, b) in base.answers.iter().zip(&other.answers) {
        assert_eq!(a.len(), b.len(), "{}: answer count", other.name);
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "{}: answer id", other.name);
            assert!(
                (x.distance - y.distance).abs() <= x.distance.abs() * 1e-9,
                "{}: answer distance drifted",
                other.name
            );
        }
    }
    let drift = base.pairs.abs_diff(other.pairs) as f64 / base.pairs as f64;
    assert!(drift < 0.01, "{}: pairs drifted {drift}", other.name);
}

/// Raw batched-kernel throughput: evaluates every page-sized batch of the
/// database against one query through `distance_batch`, with either the
/// blocked kernels (`Euclidean`) or the pairwise trait fallback
/// (`NaiveEuclidean`). This isolates the kernel itself from engine
/// bookkeeping (avoidance, answer lists, I/O accounting).
fn measure_kernel<M2: Metric<Vector>>(
    objects: &[Vector],
    query: &Vector,
    metric: M2,
    reps: usize,
) -> (f64, u64) {
    let batch_size = PageLayout::PAPER
        .capacity_for(objects[0].payload_bytes())
        .max(1);
    let mut out = vec![0.0f64; batch_size];
    let mut best = f64::INFINITY;
    let mut pairs = 0u64;
    let mut checksum = 0.0f64;
    for _ in 0..reps {
        pairs = 0;
        let start = Instant::now();
        for chunk in objects.chunks(batch_size) {
            let refs: Vec<&Vector> = chunk.iter().collect();
            let slots = &mut out[..refs.len()];
            metric.distance_batch(query, &refs, slots);
            checksum += slots[0];
            pairs += refs.len() as u64;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    assert!(checksum.is_finite());
    (best, pairs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if assert_speedup && cores == 1 {
        eprintln!(
            "error: --assert-speedup requires a multi-core host; this container has 1 core, \
             where extra engine threads can only take turns on the existing core and a \
             tolerance would assert scheduling noise. Run without --assert-speedup to still \
             produce BENCH_core.json (it records cores={cores} for readers)."
        );
        std::process::exit(2);
    }
    let n = env_usize("MQ_BENCH_N", if smoke { 2_000 } else { 15_000 });
    let seed = env_u64("MQ_SEED", 20000203);
    let reps = if smoke { 2 } else { 5 };

    let objects = image_histograms(n, seed);
    let dim = objects[0].dim();
    let queries: Vec<(Vector, QueryType)> = (0..M)
        .map(|i| (objects[i * n / M].clone(), QueryType::knn(K)))
        .collect();
    let dataset = Dataset::new(objects);

    println!("bench_core: {n} objects, {dim}-d, m={M} knn({K}), {reps} reps, {cores} cores");

    let simd_level = kernel::active();
    let cpu_features = kernel::cpu_features();
    println!(
        "  simd dispatch: {} (host: {cpu_features})",
        simd_level.name()
    );

    // Raw kernel throughput first: page-sized distance_batch calls, no
    // engine bookkeeping. Three tiers: the pairwise naive loop, the
    // blocked scalar kernels, and the host's SIMD kernels (identical to
    // the scalar tier when dispatch resolved to `scalar`).
    let kernel_reps = reps * 2;
    let (naive_secs, kernel_pairs) = measure_kernel(
        dataset.objects(),
        &queries[0].0,
        NaiveEuclidean,
        kernel_reps,
    );
    let (blocked_secs, _) = measure_kernel(
        dataset.objects(),
        &queries[0].0,
        ForcedL2(SimdLevel::Scalar),
        kernel_reps,
    );
    let (simd_secs, _) = measure_kernel(
        dataset.objects(),
        &queries[0].0,
        ForcedL2(simd_level),
        kernel_reps,
    );
    let kernel_speedup = naive_secs / blocked_secs;
    let simd_speedup = naive_secs / simd_secs;
    println!(
        "  distance_batch kernel: naive {:.2e} pairs/s, blocked {:.2e} pairs/s ({kernel_speedup:.2}x), \
         {} {:.2e} pairs/s ({simd_speedup:.2}x)",
        kernel_pairs as f64 / naive_secs,
        kernel_pairs as f64 / blocked_secs,
        simd_level.name(),
        kernel_pairs as f64 / simd_secs,
    );

    let scalar = measure("scalar", &dataset, &queries, NaiveEuclidean, 1, 0, reps);
    let kernel = measure("kernel", &dataset, &queries, Euclidean, 1, 0, reps);
    let parallel2 = measure("parallel", &dataset, &queries, Euclidean, 2, 2, reps);
    let parallel4 = measure("parallel", &dataset, &queries, Euclidean, 4, 2, reps);

    // Same kernels, different thread count / prefetch depth: bit for bit.
    // Naive baseline: same answers up to accumulation-order ulps.
    assert_identical(&kernel, &parallel2);
    assert_identical(&kernel, &parallel4);
    assert_close(&kernel, &scalar);

    let rows = [&scalar, &kernel, &parallel2, &parallel4];
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"page_eval_multiple_query\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"db\": \"image-histograms\", \"objects\": {n}, \"dim\": {dim}, \
         \"m\": {M}, \"k\": {K}, \"index\": \"scan\", \"page_layout\": \"PAPER\", \
         \"seed\": {seed}, \"reps\": {reps}, \"smoke\": {smoke}, \"cores\": {cores}, \
         \"simd_dispatch\": \"{}\", \"cpu_features\": \"{cpu_features}\" }},\n",
        simd_level.name(),
    ));
    json.push_str(&format!("  \"pairs_evaluated\": {},\n", scalar.pairs));
    json.push_str(&format!(
        "  \"kernel_microbench\": {{ \"pairs\": {kernel_pairs}, \
         \"naive_pairs_per_sec\": {:.1}, \"blocked_pairs_per_sec\": {:.1}, \
         \"speedup\": {kernel_speedup:.3}, \"simd_level\": \"{}\", \
         \"simd_pairs_per_sec\": {:.1}, \"simd_speedup\": {simd_speedup:.3} }},\n",
        kernel_pairs as f64 / naive_secs,
        kernel_pairs as f64 / blocked_secs,
        simd_level.name(),
        kernel_pairs as f64 / simd_secs,
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = scalar.secs / r.secs;
        // More engine threads than cores measures time-slicing, not
        // parallelism: the row is kept (it still proves bit-identity) but
        // flagged, and the speedup assertions below ignore it.
        let oversubscribed = r.threads > cores;
        println!(
            "  {:<8} threads={} : {:.4} s  ({:.2e} pairs/s, {speedup:.2}x vs scalar){}",
            r.name,
            r.threads,
            r.secs,
            r.pairs as f64 / r.secs,
            if oversubscribed {
                "  [oversubscribed: threads > cores]"
            } else {
                ""
            },
        );
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \
             \"pairs_per_sec\": {:.1}, \"speedup_vs_scalar\": {:.3}, \
             \"oversubscribed\": {oversubscribed} }}{}\n",
            r.name,
            r.threads,
            r.secs,
            r.pairs as f64 / r.secs,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_core.json", &json).expect("write BENCH_core.json");
    println!("wrote BENCH_core.json");
    let best_parallel = parallel2.secs.min(parallel4.secs);
    // Thread counts beyond the core count measure time-slicing overhead,
    // not speedup; only rows that fit the host may carry the assertions.
    let best_eligible = [&parallel2, &parallel4]
        .iter()
        .filter(|r| r.threads <= cores)
        .map(|r| r.secs)
        .fold(f64::INFINITY, f64::min);
    let best_engine = scalar.secs / kernel.secs.min(best_parallel);
    if !smoke && kernel_speedup.max(best_engine) < 1.5 {
        eprintln!("warning: best speedup {kernel_speedup:.2}x below the 1.5x target");
    }

    if assert_speedup {
        // The blocked kernels must beat the naive scalar loop everywhere
        // (5% noise allowance — it is the same single thread).
        assert!(
            kernel.secs <= scalar.secs * 1.05,
            "kernel row regressed below scalar: {:.4}s vs {:.4}s",
            kernel.secs,
            scalar.secs,
        );
        // cores >= 2 (the 1-core case refused up front), so the 2-thread
        // row is always eligible and pipelined parallel evaluation must
        // beat the single-thread kernel row outright. Oversubscribed rows
        // (threads > cores) are excluded — on this host they can only
        // take turns on the existing cores.
        assert!(
            best_eligible.is_finite(),
            "no parallel row fits a {cores}-core host"
        );
        assert!(
            best_eligible <= kernel.secs,
            "parallel rows regressed below the single-thread kernel on a \
             {cores}-core host: {best_eligible:.4}s vs {:.4}s",
            kernel.secs,
        );
        println!(
            "speedup assertion passed: parallel {best_eligible:.4}s <= kernel {:.4}s on {cores} cores",
            kernel.secs,
        );
    }
}

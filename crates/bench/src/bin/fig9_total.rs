//! Figure 9: average total query cost (I/O + CPU) per similarity query
//! vs. m.
//!
//! Paper shape to reproduce: total cost falls with m for both methods; the
//! scan's reduction is larger, so the scan overtakes the X-tree at
//! m ≥ 10 (astronomy) / m ≥ 100 (image); for large m the scan becomes
//! CPU-bound while the X-tree stays I/O-bound.

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{m_sweep, PAPER_MS};

fn main() {
    let env = BenchEnv::from_env();
    let total = *PAPER_MS.iter().max().unwrap();
    let points = m_sweep(&env, &PAPER_MS, total);

    for db in env.dbs() {
        header(&format!(
            "Fig. 9 — {} database ({}-d): avg total cost per query (modeled s)",
            db.name, db.dim
        ));
        let mut table = Table::new(&[
            "m",
            "scan io",
            "scan cpu",
            "scan total",
            "x-tree io",
            "x-tree cpu",
            "x-tree total",
            "winner",
        ]);
        let mut crossover: Option<usize> = None;
        for &m in &PAPER_MS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "scan")
                .expect("sweep point");
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "x-tree")
                .expect("sweep point");
            let winner = if scan.total_per_query() < tree.total_per_query() {
                if crossover.is_none() {
                    crossover = Some(m);
                }
                "scan"
            } else {
                "x-tree"
            };
            table.row(vec![
                m.to_string(),
                fmt(scan.io_per_query()),
                fmt(scan.cpu_per_query()),
                fmt(scan.total_per_query()),
                fmt(tree.io_per_query()),
                fmt(tree.cpu_per_query()),
                fmt(tree.total_per_query()),
                winner.into(),
            ]);
        }
        table.print();
        match crossover {
            Some(m) => println!(
                "scan overtakes x-tree at m >= {m} (paper: m >= 10 astro / m >= 100 image)"
            ),
            None => {
                println!("no crossover within the sweep (paper: m >= 10 astro / m >= 100 image)")
            }
        }
    }
}

//! Figure 10: speed-up of m multiple similarity queries over m single
//! similarity queries, with respect to m.
//!
//! Paper shape to reproduce at m = 100: scan 28× (astronomy) / 68× (image);
//! X-tree 7.2× / 12.1×. The image database speeds up more because it is
//! highly clustered (avoiding one cluster member's distance computation
//! tends to avoid the whole cluster).

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{m_sweep, PAPER_MS};

fn main() {
    let env = BenchEnv::from_env();
    let total = *PAPER_MS.iter().max().unwrap();
    let points = m_sweep(&env, &PAPER_MS, total);

    for db in env.dbs() {
        header(&format!(
            "Fig. 10 — {} database ({}-d): speed-up vs. m",
            db.name, db.dim
        ));
        let base = |method: &str| {
            points
                .iter()
                .find(|p| p.db == db.name && p.m == 1 && p.method.name() == method)
                .unwrap()
                .total_per_query()
        };
        let scan_base = base("scan");
        let tree_base = base("x-tree");
        let mut table = Table::new(&[
            "m",
            "scan speed-up",
            "x-tree speed-up",
            "scan measured",
            "x-tree measured",
        ]);
        let measured_base = |method: &str| {
            points
                .iter()
                .find(|p| p.db == db.name && p.m == 1 && p.method.name() == method)
                .unwrap()
                .measured_per_query()
        };
        let scan_mb = measured_base("scan");
        let tree_mb = measured_base("x-tree");
        for &m in &PAPER_MS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "scan")
                .unwrap();
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "x-tree")
                .unwrap();
            table.row(vec![
                m.to_string(),
                fmt(scan_base / scan.total_per_query()),
                fmt(tree_base / tree.total_per_query()),
                fmt(scan_mb / scan.measured_per_query()),
                fmt(tree_mb / tree.measured_per_query()),
            ]);
        }
        table.print();
        println!(
            "paper at m = 100: scan 28x astro / 68x image; x-tree 7.2x astro / 12.1x image\n\
             (modeled speed-ups use the paper's 1999 cost constants; measured = wall-clock)"
        );
    }
}

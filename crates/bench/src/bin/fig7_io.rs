//! Figure 7: average I/O cost per similarity query vs. the number m of
//! multiple similarity queries — linear scan vs. X-tree, both databases.
//!
//! Paper shape to reproduce: at m = 1 the X-tree beats the scan (factors
//! 4.5 / 3.1); with growing m the scan's I/O falls by a factor of nearly m
//! (one shared pass), the X-tree's by a smaller factor (8.7 / 15 at
//! m = 100), so at m = 100 the scan's average I/O undercuts the X-tree's.

use mq_bench::report::{fmt, header, stats_record, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{m_sweep, PAPER_MS};

fn main() {
    let env = BenchEnv::from_env();
    let total = *PAPER_MS.iter().max().unwrap();
    let points = m_sweep(&env, &PAPER_MS, total);

    for db in env.dbs() {
        header(&format!(
            "Fig. 7 — {} database ({} objects, {}-d): avg I/O per query",
            db.name,
            db.objects.len(),
            db.dim
        ));
        let mut table = Table::new(&[
            "m",
            "scan reads/q",
            "scan io s/q",
            "x-tree reads/q",
            "x-tree io s/q",
            "xtree/scan",
        ]);
        for &m in &PAPER_MS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "scan")
                .expect("sweep point");
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.m == m && p.method.name() == "x-tree")
                .expect("sweep point");
            table.row(vec![
                m.to_string(),
                fmt(scan.reads_per_query()),
                fmt(scan.io_per_query()),
                fmt(tree.reads_per_query()),
                fmt(tree.io_per_query()),
                fmt(tree.io_per_query() / scan.io_per_query()),
            ]);
        }
        table.print();
        let scan1 = points
            .iter()
            .find(|p| p.db == db.name && p.m == 1 && p.method.name() == "scan")
            .unwrap();
        let tree1 = points
            .iter()
            .find(|p| p.db == db.name && p.m == 1 && p.method.name() == "x-tree")
            .unwrap();
        let scan100 = points
            .iter()
            .find(|p| p.db == db.name && p.m == total && p.method.name() == "scan")
            .unwrap();
        let tree100 = points
            .iter()
            .find(|p| p.db == db.name && p.m == total && p.method.name() == "x-tree")
            .unwrap();
        println!(
            "single query: x-tree outperforms scan by {}x (paper: 4.5x astro / 3.1x image)",
            fmt(scan1.io_per_query() / tree1.io_per_query())
        );
        println!(
            "m = {total}: scan I/O reduced {}x (paper: ~m), x-tree I/O reduced {}x (paper: 8.7 / 15)",
            fmt(scan1.io_per_query() / scan100.io_per_query()),
            fmt(tree1.io_per_query() / tree100.io_per_query())
        );
        for (name, p) in [("scan", scan100), ("x-tree", tree100)] {
            stats_record(&format!("{} {} m={total}", db.name, name), &p.stats);
        }
    }
}

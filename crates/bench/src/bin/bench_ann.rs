//! Recall@k-vs-speedup curves for the approximate candidate tier.
//!
//! Workload: seeded clustered unit-norm embeddings
//! (`mq_datagen::embeddings_config`), m = 32 held-out queries answered as
//! **one** multiple-query batch over a linear scan — the end-to-end path
//! `mq serve`/`mq batch --approx` exercise. The exact batch is the
//! baseline; each curve point attaches one prescreen (binary-quantized
//! Hamming budget, or an HNSW beam) in front of the *same* engine and
//! measures:
//!
//! * **recall@10** — fraction of the exact k-NN ids the lossy run kept
//!   (reported distances are exact either way; only candidate selection
//!   is approximate);
//! * **speedup** — exact-batch cost over approx-batch cost under the
//!   repo's standard cost model (`CostModel::paper_1999`: modeled seek +
//!   transfer I/O plus per-distance CPU), with the prescreen's own
//!   measured wall time *added* to the approx side so the tier pays for
//!   its Hamming scan / graph walk;
//! * **wall_speedup** — the same ratio in raw wall-clock on this host,
//!   alongside for honesty (on tiny smoke runs it is mostly timer noise).
//!
//! A full-budget row runs first and must be bit-identical to the exact
//! baseline — the exactness boundary the equivalence suites pin.
//!
//! Results go to `BENCH_ann.json` with the host's `cores` and
//! `simd_dispatch` recorded (thread-scaling numbers from a 1-core
//! container are meaningless; recall numbers are not).
//!
//! Flags/env: `--smoke` shrinks the database for CI; `--assert-recall`
//! exits non-zero unless recall@10 ≥ 0.9 at the default budget (N/20);
//! `--assert-speedup` exits non-zero unless some Hamming-budget row
//! reaches ≥ 3× modeled speedup at recall@10 ≥ 0.95 — and refuses to run
//! on a 1-core host, where comparative timing proves nothing; `MQ_BENCH_N`
//! overrides the object count, `MQ_SEED` the seed.

use mq_approx::{BinarySketch, BqPrescreen, Hnsw, HnswConfig, HnswPrescreen, DEFAULT_PLANES};
use mq_bench::setup::{env_u64, env_usize};
use mq_core::{Answer, CandidatePrescreen, CostModel, QueryEngine, QueryType, StatsProbe};
use mq_datagen::embeddings_config;
use mq_index::LinearScan;
use mq_metric::{kernel, CountingMetric, Euclidean, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::sync::Arc;
use std::time::Instant;

const M: usize = 32;
const K: usize = 10;

struct Row {
    tier: String,
    recall: f64,
    wall_secs: f64,
    modeled_secs: f64,
    prescreen_secs: f64,
    dist_calcs: u64,
    logical_reads: u64,
    candidates_emitted: u64,
    pages_skipped: u64,
    objects_skipped: u64,
    rerank_survivors: u64,
    answers: Vec<Vec<Answer>>,
}

/// Runs the m-query batch with an optional prescreen attached: wall time
/// is the best of `reps` cold-buffer repetitions, counters come from the
/// (deterministic) last repetition, and the prescreen's own candidate
/// generation is timed separately so the modeled speedup charges it.
#[allow(clippy::too_many_arguments)]
fn measure(
    tier: String,
    disk: &SimulatedDisk<Vector>,
    index: &LinearScan,
    metric: &CountingMetric<Euclidean>,
    prescreen: Option<&dyn CandidatePrescreen<Vector>>,
    queries: &[(Vector, QueryType)],
    reps: usize,
    model: &CostModel,
) -> Row {
    let mut engine = QueryEngine::new(disk, index, metric.clone());
    if let Some(p) = prescreen {
        engine = engine.with_prescreen(p);
    }
    let mut wall = f64::INFINITY;
    let mut stats = None;
    let mut approx = mq_core::ApproxStats::default();
    let mut answers = Vec::new();
    for _ in 0..reps {
        disk.cold_restart();
        metric.counter().reset();
        let probe = StatsProbe::start(disk, metric.counter(), Default::default());
        let start = Instant::now();
        let mut session = engine.new_session(queries.to_vec());
        engine.run_to_completion(&mut session);
        wall = wall.min(start.elapsed().as_secs_f64());
        stats = Some(probe.finish(disk, session.avoidance_stats()));
        approx = session.approx_stats();
        answers = session.into_answers();
    }
    let stats = stats.expect("at least one repetition");
    // The prescreen runs inside new_session (and so inside `wall`); time
    // it standalone too, because the paper-constant cost model only sees
    // page reads and exact distance calculations — the Hamming scan /
    // graph walk would otherwise ride for free.
    let prescreen_secs = prescreen.map_or(0.0, |p| {
        let start = Instant::now();
        for (q, _) in queries {
            std::hint::black_box(p.candidates(q));
        }
        start.elapsed().as_secs_f64()
    });
    Row {
        tier,
        recall: 0.0, // filled against the exact baseline by the caller
        wall_secs: wall,
        modeled_secs: model.total_seconds(&stats) + prescreen_secs,
        prescreen_secs,
        dist_calcs: stats.dist_calcs,
        logical_reads: stats.io.logical_reads,
        candidates_emitted: approx.candidates_emitted,
        pages_skipped: approx.pages_skipped,
        objects_skipped: approx.objects_skipped,
        rerank_survivors: approx.rerank_survivors,
        answers,
    }
}

/// Mean fraction of the exact top-k ids the lossy run kept.
fn recall_at_k(exact: &[Vec<Answer>], approx: &[Vec<Answer>]) -> f64 {
    let mut total = 0.0;
    for (e, a) in exact.iter().zip(approx) {
        let kept = e
            .iter()
            .take(K)
            .filter(|x| a.iter().any(|y| y.id == x.id))
            .count();
        total += kept as f64 / e.len().clamp(1, K) as f64;
    }
    total / exact.len() as f64
}

fn json_row(r: &Row, exact: &Row) -> String {
    format!(
        "    {{ \"tier\": \"{}\", \"recall_at_10\": {:.4}, \
         \"speedup\": {:.3}, \"wall_speedup\": {:.3}, \
         \"modeled_secs\": {:.6}, \"wall_secs\": {:.6}, \"prescreen_secs\": {:.6}, \
         \"dist_calcs\": {}, \"logical_reads\": {}, \
         \"candidates_emitted\": {}, \"pages_skipped\": {}, \
         \"objects_skipped\": {}, \"rerank_survivors\": {} }}",
        r.tier,
        r.recall,
        exact.modeled_secs / r.modeled_secs,
        exact.wall_secs / r.wall_secs,
        r.modeled_secs,
        r.wall_secs,
        r.prescreen_secs,
        r.dist_calcs,
        r.logical_reads,
        r.candidates_emitted,
        r.pages_skipped,
        r.objects_skipped,
        r.rerank_survivors,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let assert_speedup = std::env::args().any(|a| a == "--assert-speedup");
    let assert_recall = std::env::args().any(|a| a == "--assert-recall");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if assert_speedup && cores == 1 {
        eprintln!(
            "error: --assert-speedup requires a multi-core host; this container has 1 core, \
             where comparative timing measures scheduling noise, not the tier. \
             Run without --assert-speedup to still produce BENCH_ann.json \
             (recall numbers are core-count independent)."
        );
        std::process::exit(2);
    }

    let n = env_usize("MQ_BENCH_N", if smoke { 4_000 } else { 30_000 });
    let seed = env_u64("MQ_SEED", 20000203);
    let reps = if smoke { 2 } else { 3 };
    let dim = 64;
    // More bitplanes sharpen the Hamming ranking (smaller budget for the
    // same recall) at a few extra words per code; 8 is the bench default,
    // the server/CLI default stays DEFAULT_PLANES.
    let planes = env_usize("MQ_ANN_PLANES", 2 * DEFAULT_PLANES);

    // Hold the last M vectors out as queries: the tier must generalize,
    // not memorize.
    let (mut vectors, _topics) = embeddings_config(n + M, dim, 16, 0.15, seed);
    let queries: Vec<(Vector, QueryType)> = vectors
        .split_off(n)
        .into_iter()
        .map(|v| (v, QueryType::knn(K)))
        .collect();
    let db = PagedDatabase::pack(&Dataset::new(vectors), PageLayout::PAPER);
    let disk = SimulatedDisk::new(db, 0.10);
    let index = LinearScan::new(disk.database().page_count());
    let metric = CountingMetric::new(Euclidean);
    let model = CostModel::paper_1999(dim);

    let simd_level = kernel::active();
    let cpu_features = kernel::cpu_features();
    let default_budget = n / 20;
    println!(
        "bench_ann: {n} objects, {dim}-d embeddings, m={M} knn({K}), {reps} reps, {cores} cores"
    );
    println!(
        "  simd dispatch: {} (host: {cpu_features})",
        simd_level.name()
    );

    let build_start = Instant::now();
    let sketch = Arc::new(BinarySketch::build(disk.database(), planes));
    let sketch_build_secs = build_start.elapsed().as_secs_f64();
    let build_start = Instant::now();
    let graph = Arc::new(Hnsw::build(disk.database(), HnswConfig::default()));
    let hnsw_build_secs = build_start.elapsed().as_secs_f64();
    println!(
        "  tier build: sketch {sketch_build_secs:.3} s ({planes} planes), \
         hnsw {hnsw_build_secs:.3} s"
    );

    let exact = measure(
        "exact".into(),
        &disk,
        &index,
        &metric,
        None,
        &queries,
        reps,
        &model,
    );
    println!(
        "  exact    : modeled {:.4} s, wall {:.4} s, {} dists, {} page reads",
        exact.modeled_secs, exact.wall_secs, exact.dist_calcs, exact.logical_reads
    );

    // Exactness boundary first: a budget covering the whole collection
    // must reproduce the exact batch bit for bit.
    {
        let full = BqPrescreen::new(Arc::clone(&sketch), n);
        let row = measure(
            format!("bq:{n}"),
            &disk,
            &index,
            &metric,
            Some(&full),
            &queries,
            1,
            &model,
        );
        assert_eq!(
            exact.answers, row.answers,
            "budget=N must be bit-identical to the exact engine"
        );
    }

    let budgets: Vec<usize> = [n / 200, n / 100, n / 50, n / 20, n / 10]
        .into_iter()
        .filter(|&b| b >= K)
        .collect();
    let efs: &[usize] = &[32, 64, 128, 256];

    let mut bq_rows = Vec::new();
    for &budget in &budgets {
        let prescreen = BqPrescreen::new(Arc::clone(&sketch), budget);
        let mut row = measure(
            format!("bq:{budget}"),
            &disk,
            &index,
            &metric,
            Some(&prescreen),
            &queries,
            reps,
            &model,
        );
        row.recall = recall_at_k(&exact.answers, &row.answers);
        println!(
            "  bq:{budget:<6}: recall@{K} {:.3}, speedup {:.2}x (wall {:.2}x), \
             {} dists, {} page reads",
            row.recall,
            exact.modeled_secs / row.modeled_secs,
            exact.wall_secs / row.wall_secs,
            row.dist_calcs,
            row.logical_reads
        );
        bq_rows.push(row);
    }

    let mut hnsw_rows = Vec::new();
    for &ef in efs {
        let prescreen = HnswPrescreen::new(Arc::clone(&graph), ef);
        let mut row = measure(
            format!("hnsw:{ef}"),
            &disk,
            &index,
            &metric,
            Some(&prescreen),
            &queries,
            reps,
            &model,
        );
        row.recall = recall_at_k(&exact.answers, &row.answers);
        println!(
            "  hnsw:{ef:<4}: recall@{K} {:.3}, speedup {:.2}x (wall {:.2}x), \
             {} dists, {} page reads",
            row.recall,
            exact.modeled_secs / row.modeled_secs,
            exact.wall_secs / row.wall_secs,
            row.dist_calcs,
            row.logical_reads
        );
        hnsw_rows.push(row);
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"ann_recall_vs_speedup\",\n");
    json.push_str(&format!(
        "  \"config\": {{ \"db\": \"embeddings\", \"objects\": {n}, \"dim\": {dim}, \
         \"m\": {M}, \"k\": {K}, \"planes\": {planes}, \"index\": \"scan\", \
         \"page_layout\": \"PAPER\", \"seed\": {seed}, \"reps\": {reps}, \
         \"smoke\": {smoke}, \"cores\": {cores}, \"simd_dispatch\": \"{}\", \
         \"cpu_features\": \"{cpu_features}\", \"default_budget\": {default_budget}, \
         \"cost_model\": \"paper_1999 + measured prescreen secs\" }},\n",
        simd_level.name(),
    ));
    json.push_str(&format!(
        "  \"tier_build_secs\": {{ \"sketch\": {sketch_build_secs:.6}, \
         \"hnsw\": {hnsw_build_secs:.6} }},\n"
    ));
    json.push_str(&format!(
        "  \"exact\": {{ \"modeled_secs\": {:.6}, \"wall_secs\": {:.6}, \
         \"dist_calcs\": {}, \"logical_reads\": {} }},\n",
        exact.modeled_secs, exact.wall_secs, exact.dist_calcs, exact.logical_reads
    ));
    json.push_str("  \"curves\": {\n    \"bq\": [\n");
    for (i, r) in bq_rows.iter().enumerate() {
        json.push_str(&json_row(r, &exact));
        json.push_str(if i + 1 < bq_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n    \"hnsw\": [\n");
    for (i, r) in hnsw_rows.iter().enumerate() {
        json.push_str(&json_row(r, &exact));
        json.push_str(if i + 1 < hnsw_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  }\n}\n");
    std::fs::write("BENCH_ann.json", &json).expect("write BENCH_ann.json");
    println!("wrote BENCH_ann.json");

    if assert_recall {
        let row = bq_rows
            .iter()
            .find(|r| r.tier == format!("bq:{default_budget}"))
            .expect("default budget row present");
        assert!(
            row.recall >= 0.9,
            "recall@{K} {:.3} at the default budget bq:{default_budget} is below 0.9",
            row.recall
        );
        println!(
            "recall assertion passed: {:.3} >= 0.9 at bq:{default_budget}",
            row.recall
        );
    }
    if assert_speedup {
        let ok = bq_rows
            .iter()
            .find(|r| r.recall >= 0.95 && exact.modeled_secs / r.modeled_secs >= 3.0);
        match ok {
            Some(r) => println!(
                "speedup assertion passed: {} reaches {:.2}x at recall {:.3}",
                r.tier,
                exact.modeled_secs / r.modeled_secs,
                r.recall
            ),
            None => {
                eprintln!(
                    "error: no Hamming-budget row reached 3x modeled speedup at recall@{K} >= 0.95"
                );
                std::process::exit(1);
            }
        }
    }
}

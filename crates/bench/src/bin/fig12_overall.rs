//! Figure 12: overall speed-up — parallel multiple similarity queries
//! vs. *sequential single* similarity queries, i.e. the combined effect of
//! the multiple-query transformation and parallelization.
//!
//! Paper shape to reproduce at s = 16 on the astronomy database: ~374× for
//! the parallel scan and ~128× for the parallel X-tree; on the image
//! database at s = 8: 279× (scan) and 52× (X-tree).

use mq_bench::report::{fmt, header, Table};
use mq_bench::setup::BenchEnv;
use mq_bench::sweep::{parallel_sweep, PAPER_SS};

fn main() {
    let env = BenchEnv::from_env();
    let points = parallel_sweep(&env, &PAPER_SS);

    for db in env.dbs() {
        header(&format!(
            "Fig. 12 — {} database ({}-d): overall speed-up vs. sequential single queries",
            db.name, db.dim
        ));
        let mut table = Table::new(&[
            "s",
            "m",
            "scan overall",
            "x-tree overall",
            "seq single s/q (scan)",
            "seq single s/q (x-tree)",
        ]);
        for &s in &PAPER_SS {
            let scan = points
                .iter()
                .find(|p| p.db == db.name && p.s == s && p.method.name() == "scan")
                .expect("sweep point");
            let tree = points
                .iter()
                .find(|p| p.db == db.name && p.s == s && p.method.name() == "x-tree")
                .expect("sweep point");
            table.row(vec![
                s.to_string(),
                scan.queries.to_string(),
                fmt(scan.overall_speedup()),
                fmt(tree.overall_speedup()),
                fmt(scan.seq_single_per_query),
                fmt(tree.seq_single_per_query),
            ]);
        }
        table.print();
        println!(
            "paper: astronomy s = 16 → scan 374x, x-tree 128x; image s = 8 → scan 279x, x-tree 52x"
        );
    }
}

//! §6.2 in-text table: cost of a distance calculation vs. a
//! triangle-inequality comparison.
//!
//! Paper (Pentium II 300 MHz): 20-d Euclidean distance 4.3 µs vs. 0.082 µs
//! per comparison (ratio 52); 64-d: 12.7 µs (ratio 155). We measure the
//! same two operations on the current machine and print both the measured
//! ratios and the paper's constants used by the modeled costs.

use mq_bench::report::{fmt, header, Table};
use mq_core::{AvoidanceStats, QueryDistanceMatrix};
use mq_datagen::uniform_vectors;
use mq_metric::{CpuCostModel, Euclidean, Metric};
use std::hint::black_box;
use std::time::Instant;

fn measure_distance_ns(dim: usize) -> f64 {
    let data = uniform_vectors(2_000, dim, 1);
    let q = &data[0];
    let iters = 2_000_000usize;
    let start = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..iters {
        acc += Euclidean.distance(black_box(&data[i % data.len()]), black_box(q));
    }
    black_box(acc);
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn measure_comparison_ns() -> f64 {
    // One triangle-inequality evaluation = try_avoid with a single pivot
    // that never fires (worst case: both lemmas evaluated).
    let qs = uniform_vectors(2, 4, 2);
    let mut qq = QueryDistanceMatrix::new();
    qq.admit(&Euclidean, &[], &qs[0]);
    qq.admit(&Euclidean, &qs[..1], &qs[1]);
    let known = [(0usize, 0.3f64)];
    let mut stats = AvoidanceStats::default();
    let iters = 20_000_000usize;
    let start = Instant::now();
    let mut fired = 0u64;
    for _ in 0..iters {
        if qq.try_avoid(1, black_box(&known), black_box(10.0), &mut stats) {
            fired += 1;
        }
    }
    black_box((fired, stats.tries));
    // `tries` counts individual lemma evaluations; normalize per lemma.
    start.elapsed().as_nanos() as f64 / stats.tries as f64
}

fn main() {
    header("§6.2 table — distance calculation vs. triangle-inequality comparison");
    let model = CpuCostModel::paper_1999();

    let cmp_ns = measure_comparison_ns();
    let mut table = Table::new(&[
        "operation",
        "paper (µs)",
        "paper ratio",
        "measured (ns)",
        "measured ratio",
    ]);
    for dim in [20usize, 64] {
        let dist_ns = measure_distance_ns(dim);
        table.row(vec![
            format!("euclidean {dim}-d"),
            fmt(model.distance_us(dim)),
            fmt(model.dist_to_comparison_ratio(dim)),
            fmt(dist_ns),
            fmt(dist_ns / cmp_ns),
        ]);
    }
    table.row(vec![
        "comparison".into(),
        fmt(model.comparison_us),
        "1".into(),
        fmt(cmp_ns),
        "1".into(),
    ]);
    table.print();
    println!(
        "\nThe modeled costs in all figure binaries use the paper's constants, so\n\
         crossovers and speed-up shapes are comparable with the 1999 evaluation."
    );
}

//! Benchmark environment: the two databases in both access-method layouts.

use mq_core::{CostModel, QueryEngine, QueryType};
use mq_datagen::{image_histograms, tycho_like};
use mq_index::{LinearScan, SimilarityIndex, XTree, XTreeConfig};
use mq_metric::{CountingMetric, Euclidean, ObjectId, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};

/// Reads a `usize` environment variable with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment variable with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The access method of a rig.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Linear scan (§5.1 scan case).
    Scan,
    /// X-tree (§5.1 index case).
    XTree,
}

impl Method {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Scan => "scan",
            Method::XTree => "x-tree",
        }
    }
}

/// One access-method rig over one database: disk + index + counted metric.
pub struct Rig {
    /// Which access method this rig uses.
    pub method: Method,
    /// The simulated disk serving this rig's page layout.
    pub disk: SimulatedDisk<Vector>,
    /// The access method.
    pub index: Box<dyn SimilarityIndex<Vector>>,
    /// Euclidean distance with a shared calculation counter.
    pub metric: CountingMetric<Euclidean>,
}

impl Rig {
    fn build(method: Method, dataset: &Dataset<Vector>, buffer_fraction: f64) -> Self {
        let layout = PageLayout::PAPER;
        let (index, db): (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>) = match method {
            Method::Scan => {
                let db = PagedDatabase::pack(dataset, layout);
                (Box::new(LinearScan::new(db.page_count())), db)
            }
            Method::XTree => {
                let cfg = XTreeConfig {
                    layout,
                    ..Default::default()
                };
                let (tree, db) = XTree::bulk_load(dataset, cfg);
                (Box::new(tree), db)
            }
        };
        let disk = SimulatedDisk::new(db, buffer_fraction);
        Self {
            method,
            disk,
            index,
            metric: CountingMetric::new(Euclidean),
        }
    }

    /// A query engine over this rig (avoidance enabled).
    pub fn engine(&self) -> QueryEngine<'_, Vector, CountingMetric<Euclidean>> {
        QueryEngine::new(&self.disk, &*self.index, self.metric.clone())
    }

    /// Resets disk statistics, buffer contents and the distance counter.
    pub fn cold_restart(&self) {
        self.disk.cold_restart();
        self.metric.counter().reset();
    }
}

/// One logical database with rigs for both access methods.
pub struct BenchDb {
    /// Short name ("astronomy" / "image").
    pub name: &'static str,
    /// Dimensionality (20 / 64).
    pub dim: usize,
    /// The raw objects (shared by both rigs and the parallel harness).
    pub objects: Vec<Vector>,
    /// Linear-scan rig.
    pub scan: Rig,
    /// X-tree rig.
    pub xtree: Rig,
}

impl BenchDb {
    fn build(name: &'static str, objects: Vec<Vector>, buffer_fraction: f64) -> Self {
        let dim = objects.first().map(|v| v.dim()).unwrap_or(1);
        let dataset = Dataset::new(objects.clone());
        let scan = Rig::build(Method::Scan, &dataset, buffer_fraction);
        let xtree = Rig::build(Method::XTree, &dataset, buffer_fraction);
        Self {
            name,
            dim,
            objects,
            scan,
            xtree,
        }
    }

    /// Both rigs, scan first.
    pub fn rigs(&self) -> [&Rig; 2] {
        [&self.scan, &self.xtree]
    }

    /// The cost model for this database's dimensionality.
    pub fn cost_model(&self) -> CostModel {
        CostModel::paper_1999(self.dim)
    }

    /// The paper's k for this database (10 on astronomy, 20 on image).
    pub fn paper_k(&self) -> usize {
        if self.dim >= 64 {
            20
        } else {
            10
        }
    }

    /// A k-NN query batch over the given object ids.
    pub fn knn_queries(&self, ids: &[ObjectId], k: usize) -> Vec<(Vector, QueryType)> {
        ids.iter()
            .map(|id| (self.objects[id.index()].clone(), QueryType::knn(k)))
            .collect()
    }
}

/// The full §6 environment: both databases.
pub struct BenchEnv {
    /// Tycho-like 20-d near-uniform data (default 60,000 objects;
    /// `MQ_ASTRO_N`).
    pub astro: BenchDb,
    /// Clustered 64-d histogram data (default 15,000 objects;
    /// `MQ_IMAGE_N`).
    pub image: BenchDb,
    /// The seed everything was generated from (`MQ_SEED`).
    pub seed: u64,
}

impl BenchEnv {
    /// Builds the environment from the `MQ_*` environment variables.
    pub fn from_env() -> Self {
        let seed = env_u64("MQ_SEED", 20000203); // ICDE 2000 ;-)
        let astro_n = env_usize("MQ_ASTRO_N", 60_000);
        let image_n = env_usize("MQ_IMAGE_N", 15_000);
        Self::build(astro_n, image_n, seed)
    }

    /// Builds an environment of explicit sizes (tests use small ones).
    pub fn build(astro_n: usize, image_n: usize, seed: u64) -> Self {
        let buffer_fraction = 0.10; // the paper's buffer: 10 % of the pages
        let astro = BenchDb::build("astronomy", tycho_like(astro_n, seed), buffer_fraction);
        let image = BenchDb::build(
            "image",
            image_histograms(image_n, seed ^ 0xA5A5),
            buffer_fraction,
        );
        Self { astro, image, seed }
    }

    /// Both databases.
    pub fn dbs(&self) -> [&BenchDb; 2] {
        [&self.astro, &self.image]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_env_builds_consistently() {
        let env = BenchEnv::build(300, 200, 7);
        assert_eq!(env.astro.dim, 20);
        assert_eq!(env.image.dim, 64);
        assert_eq!(env.astro.objects.len(), 300);
        assert_eq!(env.astro.scan.disk.database().object_count(), 300);
        assert_eq!(env.astro.xtree.disk.database().object_count(), 300);
        assert_eq!(env.image.paper_k(), 20);
        assert_eq!(env.astro.paper_k(), 10);
    }

    #[test]
    fn both_rigs_agree_on_answers() {
        let env = BenchEnv::build(400, 0, 9);
        let q = env.astro.objects[13].clone();
        let t = QueryType::knn(5);
        let scan_ids: Vec<ObjectId> = env
            .astro
            .scan
            .engine()
            .similarity_query(&q, &t)
            .ids()
            .collect();
        let tree_ids: Vec<ObjectId> = env
            .astro
            .xtree
            .engine()
            .similarity_query(&q, &t)
            .ids()
            .collect();
        assert_eq!(scan_ids, tree_ids);
    }

    #[test]
    fn env_parsers() {
        assert_eq!(env_usize("MQ_DOES_NOT_EXIST_XYZ", 7), 7);
        assert_eq!(env_u64("MQ_DOES_NOT_EXIST_XYZ", 9), 9);
    }
}

//! Plain-text table output for the harness binaries.

/// Prints a header line followed by a separator sized to it.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// A fixed-width text table.
pub struct Table {
    columns: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        let widths = columns.iter().map(|c| c.len()).collect();
        Self {
            columns,
            widths,
            rows: Vec::new(),
        }
    }

    /// Adds a row (must have one cell per column).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numbers, left-align first column.
                if i == 0 {
                    out.push_str(&format!("{c:<w$}"));
                } else {
                    out.push_str(&format!("{c:>w$}"));
                }
            }
            out.push('\n');
        };
        line(&self.columns, &self.widths, &mut out);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * (self.widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &self.widths, &mut out);
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints one labelled counter record in the canonical
/// [`mq_core::ExecutionStats::to_record`] form — the same `key=value`
/// encoding the query server puts in its responses, so harness output and
/// server output can be scraped by the same tooling. The leading `#` keeps
/// record lines distinguishable from table rows.
pub fn stats_record(label: &str, stats: &mq_core::ExecutionStats) {
    println!("# {label}: {}", stats.to_record());
}

/// Formats a float compactly (3 significant decimals for small values).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.00".into()]);
        t.row(vec!["b".into(), "123456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].ends_with("123456"));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_row_size_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(2.7244), "2.72");
        assert_eq!(fmt(1234.5), "1234");
    }
}

//! # mq-bench — the evaluation harness (§6)
//!
//! One binary per figure/table of the paper's evaluation; each prints the
//! same rows/series the paper reports, with both *modeled* costs (the
//! paper's 1999 CPU constants + documented 1999-class disk constants, so
//! shapes are comparable) and *measured* wall-clock on the current machine.
//!
//! | binary              | paper content |
//! |---------------------|------------------------------------------|
//! | `table_dist_cost`   | §6.2 distance-vs-comparison cost ratios |
//! | `fig7_io`           | avg I/O cost per query vs. m |
//! | `fig8_cpu`          | avg CPU cost per query vs. m |
//! | `fig9_total`        | avg total cost per query vs. m |
//! | `fig10_speedup`     | speed-up of m-multiple vs. single |
//! | `fig11_parallel`    | parallel vs. sequential multiple, s sweep |
//! | `fig12_overall`     | parallel multiple vs. sequential single |
//! | `table_k_robustness`| robustness of per-query cost to k |
//! | `bench_core`        | batch-kernel / parallel page-eval micro-bench |
//!
//! Scaling: the real datasets (1,000,000 / 112,000 objects) are replaced by
//! seeded synthetic stand-ins (see `mq-datagen`); sizes default to
//! 60,000 / 15,000 and scale via `MQ_ASTRO_N`, `MQ_IMAGE_N`, `MQ_SEED`.

pub mod baseline;
pub mod report;
pub mod run;
pub mod setup;
pub mod sweep;

pub use baseline::NaiveEuclidean;
pub use run::{run_blocked, run_singles, MeasuredRun};
pub use setup::{BenchDb, BenchEnv, Method, Rig};

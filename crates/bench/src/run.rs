//! Measured runs: execute a query workload in blocks of `m` and collect
//! execution statistics.

use crate::setup::Rig;
use mq_core::{Answer, ExecutionStats, QueryType, StatsProbe};
use mq_metric::Vector;

/// The outcome of one measured workload run.
pub struct MeasuredRun {
    /// Aggregate counters over the whole workload.
    pub stats: ExecutionStats,
    /// Number of queries evaluated.
    pub queries: usize,
    /// The answers, in query order (available for correctness checks).
    pub answers: Vec<Vec<Answer>>,
}

/// Runs `queries` in consecutive blocks of `m` simultaneous queries on the
/// rig (cold disk start, reset counters), as in §5's `M/m` block scheme.
/// `m = 1` degrades to single queries but still pays a (trivial) session;
/// use [`run_singles`] for the true Fig. 1 baseline.
pub fn run_blocked(
    rig: &Rig,
    queries: &[(Vector, QueryType)],
    m: usize,
    avoidance: bool,
) -> MeasuredRun {
    assert!(m > 0, "block size must be positive");
    rig.cold_restart();
    let engine = if avoidance {
        rig.engine()
    } else {
        rig.engine().without_avoidance()
    };
    let probe = StatsProbe::start(&rig.disk, rig.metric.counter(), Default::default());
    let mut answers = Vec::with_capacity(queries.len());
    let mut avoidance_totals = mq_core::AvoidanceStats::default();
    for block in queries.chunks(m) {
        let mut session = engine.new_session(block.to_vec());
        engine.run_to_completion(&mut session);
        avoidance_totals += session.avoidance_stats();
        answers.extend(session.into_answers());
    }
    let stats = probe.finish(&rig.disk, avoidance_totals);
    MeasuredRun {
        stats,
        queries: queries.len(),
        answers,
    }
}

/// Runs `queries` as independent single similarity queries (Fig. 1) — the
/// baseline of every figure.
pub fn run_singles(rig: &Rig, queries: &[(Vector, QueryType)]) -> MeasuredRun {
    rig.cold_restart();
    let engine = rig.engine();
    let probe = StatsProbe::start(&rig.disk, rig.metric.counter(), Default::default());
    let answers: Vec<Vec<Answer>> = queries
        .iter()
        .map(|(q, t)| engine.similarity_query(q, t).into_vec())
        .collect();
    let stats = probe.finish(&rig.disk, Default::default());
    MeasuredRun {
        stats,
        queries: queries.len(),
        answers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::BenchEnv;
    use mq_datagen::classification_query_ids;

    #[test]
    fn blocked_and_single_runs_agree_on_answers() {
        let env = BenchEnv::build(500, 0, 3);
        let ids = classification_query_ids(500, 12, 1);
        let queries = env.astro.knn_queries(&ids, 5);
        for rig in env.astro.rigs() {
            let single = run_singles(rig, &queries);
            let blocked = run_blocked(rig, &queries, 6, true);
            assert_eq!(single.answers, blocked.answers, "{:?}", rig.method);
            assert_eq!(blocked.queries, 12);
        }
    }

    #[test]
    fn blocking_reduces_io_on_scan() {
        let env = BenchEnv::build(600, 0, 5);
        let ids = classification_query_ids(600, 10, 2);
        let queries = env.astro.knn_queries(&ids, 5);
        let single = run_singles(&env.astro.scan, &queries);
        let blocked = run_blocked(&env.astro.scan, &queries, 10, true);
        assert!(blocked.stats.io.logical_reads * 9 <= single.stats.io.logical_reads);
    }

    #[test]
    fn avoidance_toggle_changes_cpu_not_answers() {
        let env = BenchEnv::build(400, 0, 7);
        let ids = classification_query_ids(400, 10, 3);
        let queries = env.astro.knn_queries(&ids, 5);
        let with = run_blocked(&env.astro.scan, &queries, 10, true);
        let without = run_blocked(&env.astro.scan, &queries, 10, false);
        assert_eq!(with.answers, without.answers);
        assert!(with.stats.dist_calcs <= without.stats.dist_calcs);
        assert_eq!(without.stats.avoidance.tries, 0);
    }
}

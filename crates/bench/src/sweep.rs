//! The shared experiment drivers behind the figure binaries.
//!
//! Figures 7–10 all stem from one *m*-sweep (per database, per access
//! method, per block size); Figures 11–12 stem from one *s*-sweep on the
//! shared-nothing cluster. Each binary formats a different projection of
//! these sweeps.

use crate::run::{run_blocked, run_singles};
use crate::setup::{BenchDb, BenchEnv, Method};
use mq_core::{CostModel, ExecutionStats, QueryType};
use mq_datagen::{classification_query_ids, ExplorationConfig};
use mq_index::{LinearScan, SimilarityIndex, XTree, XTreeConfig};
use mq_metric::Vector;
use mq_mining::exploration_trace;
use mq_parallel::{Declustering, SharedNothingCluster};
use mq_storage::{Dataset, PageLayout, PagedDatabase};

/// The block sizes of the paper's m-sweep figures.
pub const PAPER_MS: [usize; 6] = [1, 10, 20, 40, 50, 100];

/// The server counts of the paper's parallel figures.
pub const PAPER_SS: [usize; 4] = [1, 4, 8, 16];

/// Queries per server block in the parallel experiments (paper: 100).
pub const PARALLEL_BASE_M: usize = 100;

/// One measured point of the m-sweep.
pub struct SweepPoint {
    /// Database name.
    pub db: &'static str,
    /// Database dimensionality.
    pub dim: usize,
    /// Access method.
    pub method: Method,
    /// Block size (m = 1 means true single queries via Fig. 1).
    pub m: usize,
    /// Number of queries in the workload.
    pub queries: usize,
    /// Aggregate counters.
    pub stats: ExecutionStats,
}

impl SweepPoint {
    /// The cost model matching this point's dimensionality.
    pub fn model(&self) -> CostModel {
        CostModel::paper_1999(self.dim)
    }

    /// Modeled I/O seconds per query.
    pub fn io_per_query(&self) -> f64 {
        self.model().io_seconds(&self.stats) / self.queries as f64
    }

    /// Modeled CPU seconds per query.
    pub fn cpu_per_query(&self) -> f64 {
        self.model().cpu_seconds(&self.stats) / self.queries as f64
    }

    /// Modeled total seconds per query.
    pub fn total_per_query(&self) -> f64 {
        self.io_per_query() + self.cpu_per_query()
    }

    /// Physical page reads per query.
    pub fn reads_per_query(&self) -> f64 {
        self.stats.io.physical_reads as f64 / self.queries as f64
    }

    /// Distance calculations per query.
    pub fn dists_per_query(&self) -> f64 {
        self.stats.dist_calcs as f64 / self.queries as f64
    }

    /// Measured wall-clock seconds per query.
    pub fn measured_per_query(&self) -> f64 {
        self.stats.elapsed.as_secs_f64() / self.queries as f64
    }
}

/// The §6 workload of one database: independent classification queries on
/// the astronomy data, one dependent c-user exploration round on the image
/// data (m = c × k = 100 queries per round).
pub fn workload(db: &BenchDb, total: usize, seed: u64) -> Vec<(Vector, QueryType)> {
    let k = db.paper_k();
    if db.name == "astronomy" {
        let ids = classification_query_ids(db.objects.len(), total.min(db.objects.len()), seed);
        db.knn_queries(&ids, k)
    } else {
        // Manual exploration: c = 5 users, k = 20 ⇒ 100 dependent queries
        // per round; as many rounds as needed for `total`.
        // Round 1 only queries the c start objects; later rounds issue
        // c × k = 100 queries each, so overshoot by one round.
        let per_round = 100;
        let rounds = total.div_ceil(per_round) + 1;
        let cfg = ExplorationConfig {
            users: 5,
            k,
            rounds,
            seed,
        };
        let engine = db.scan.engine();
        let trace = exploration_trace(&engine, &cfg);
        let mut ids: Vec<mq_metric::ObjectId> = Vec::with_capacity(total);
        // Skip round 0 (the c start objects); rounds 1.. are the dependent
        // prefetch batches the paper measures.
        for round in trace.iter().skip(1) {
            ids.extend(round.iter().copied());
            if ids.len() >= total {
                break;
            }
        }
        ids.truncate(total);
        db.knn_queries(&ids, k)
    }
}

/// Runs the m-sweep on both databases and both access methods.
pub fn m_sweep(env: &BenchEnv, ms: &[usize], total: usize) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for db in env.dbs() {
        let queries = workload(db, total, env.seed);
        for rig in db.rigs() {
            for &m in ms {
                let run = if m == 1 {
                    run_singles(rig, &queries)
                } else {
                    run_blocked(rig, &queries, m, true)
                };
                out.push(SweepPoint {
                    db: db.name,
                    dim: db.dim,
                    method: rig.method,
                    m,
                    queries: run.queries,
                    stats: run.stats,
                });
            }
        }
    }
    out
}

/// One measured point of the parallel s-sweep.
pub struct ParallelPoint {
    /// Database name.
    pub db: &'static str,
    /// Database dimensionality.
    pub dim: usize,
    /// Access method.
    pub method: Method,
    /// Number of servers.
    pub s: usize,
    /// Queries in the block (`100·s`).
    pub queries: usize,
    /// Modeled seconds of the dominant server (simulated parallel
    /// wall-clock).
    pub max_server_seconds: f64,
    /// Measured wall-clock of the parallel run.
    pub measured_seconds: f64,
    /// Per-query modeled cost of the **sequential multiple** baseline
    /// (m = 100, one server) — the Fig. 11 denominator.
    pub seq_multiple_per_query: f64,
    /// Per-query modeled cost of the **sequential single** baseline —
    /// the Fig. 12 denominator.
    pub seq_single_per_query: f64,
}

impl ParallelPoint {
    /// Modeled parallel cost per query.
    pub fn parallel_per_query(&self) -> f64 {
        self.max_server_seconds / self.queries as f64
    }

    /// Fig. 11: speed-up of parallel multiple vs. sequential multiple.
    pub fn parallel_speedup(&self) -> f64 {
        self.seq_multiple_per_query / self.parallel_per_query()
    }

    /// Fig. 12: overall speed-up vs. sequential single queries.
    pub fn overall_speedup(&self) -> f64 {
        self.seq_single_per_query / self.parallel_per_query()
    }
}

fn index_builder(
    method: Method,
) -> impl Fn(&Dataset<Vector>) -> (Box<dyn SimilarityIndex<Vector>>, PagedDatabase<Vector>) {
    move |ds: &Dataset<Vector>| match method {
        Method::Scan => {
            let db = PagedDatabase::pack(ds, PageLayout::PAPER);
            (
                Box::new(LinearScan::new(db.page_count())) as Box<dyn SimilarityIndex<Vector>>,
                db,
            )
        }
        Method::XTree => {
            let (tree, db) = XTree::bulk_load(ds, XTreeConfig::default());
            (Box::new(tree) as Box<dyn SimilarityIndex<Vector>>, db)
        }
    }
}

/// Runs the parallel s-sweep on both databases and both access methods,
/// scaling the block to `100·s` queries as in §6.4.
pub fn parallel_sweep(env: &BenchEnv, ss: &[usize]) -> Vec<ParallelPoint> {
    let max_s = ss.iter().copied().max().unwrap_or(1);
    let mut out = Vec::new();
    for db in env.dbs() {
        let model = db.cost_model();
        let all_queries = workload(db, PARALLEL_BASE_M * max_s, env.seed);
        let base: Vec<_> = all_queries.iter().take(PARALLEL_BASE_M).cloned().collect();
        for rig in db.rigs() {
            // Sequential baselines on the single-node rig.
            let seq_multiple = run_blocked(rig, &base, PARALLEL_BASE_M, true);
            let seq_multiple_per_query =
                model.total_seconds(&seq_multiple.stats) / seq_multiple.queries as f64;
            let seq_single = run_singles(rig, &base);
            let seq_single_per_query =
                model.total_seconds(&seq_single.stats) / seq_single.queries as f64;

            for &s in ss {
                let m = PARALLEL_BASE_M * s;
                let block: Vec<_> = all_queries.iter().take(m).cloned().collect();
                let cluster = SharedNothingCluster::build(
                    &db.objects,
                    s,
                    Declustering::RoundRobin,
                    mq_metric::Euclidean,
                    0.10,
                    index_builder(rig.method),
                );
                let (_, stats) = cluster.multiple_query(&block, true);
                let max_server_seconds = stats.max_modeled_seconds(|st| model.total_seconds(st));
                out.push(ParallelPoint {
                    db: db.name,
                    dim: db.dim,
                    method: rig.method,
                    s,
                    queries: m,
                    max_server_seconds,
                    measured_seconds: stats.elapsed.as_secs_f64(),
                    seq_multiple_per_query,
                    seq_single_per_query,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_sweep_small_env() {
        let env = BenchEnv::build(400, 300, 11);
        let points = m_sweep(&env, &[1, 4], 8);
        // 2 dbs × 2 methods × 2 ms.
        assert_eq!(points.len(), 8);
        for p in &points {
            assert_eq!(p.queries, 8);
            assert!(p.total_per_query() > 0.0);
            assert!(p.io_per_query() >= 0.0);
        }
        // Multiple queries never cost more I/O than singles on the scan.
        let scan_points: Vec<&SweepPoint> = points
            .iter()
            .filter(|p| p.method == Method::Scan && p.db == "astronomy")
            .collect();
        let single = scan_points.iter().find(|p| p.m == 1).unwrap();
        let multi = scan_points.iter().find(|p| p.m == 4).unwrap();
        assert!(multi.reads_per_query() <= single.reads_per_query());
    }

    #[test]
    fn parallel_sweep_small_env() {
        let env = BenchEnv::build(400, 300, 13);
        let points = parallel_sweep(&env, &[1, 2]);
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.parallel_per_query() > 0.0);
            assert!(p.parallel_speedup() > 0.0);
            assert!(p.overall_speedup() > 0.0);
        }
    }

    #[test]
    fn workload_shapes() {
        let env = BenchEnv::build(300, 250, 17);
        let astro = workload(&env.astro, 20, 1);
        assert_eq!(astro.len(), 20);
        assert!(astro.iter().all(|(_, t)| t.cardinality == 10));
        let image = workload(&env.image, 120, 1);
        assert_eq!(image.len(), 120);
        assert!(image.iter().all(|(_, t)| t.cardinality == 20));
    }
}

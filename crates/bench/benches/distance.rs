//! Micro-benchmarks of the CPU-cost primitives of §5.2/§6.2: distance
//! kernels across dimensionalities and metrics, and the triangle-
//! inequality comparison. The measured ratio between them is the machine's
//! equivalent of the paper's 52×/155× table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_core::{AvoidanceStats, QueryDistanceMatrix};
use mq_datagen::uniform_vectors;
use mq_metric::{EditDistance, Euclidean, Manhattan, Metric, QuadraticForm, Symbols};
use std::hint::black_box;

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for dim in [4usize, 20, 64, 256] {
        let data = uniform_vectors(256, dim, 1);
        group.bench_with_input(BenchmarkId::new("euclidean", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 255;
                Euclidean.distance(black_box(&data[i]), black_box(&data[i + 1]))
            })
        });
        group.bench_with_input(BenchmarkId::new("manhattan", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 255;
                Manhattan.distance(black_box(&data[i]), black_box(&data[i + 1]))
            })
        });
    }
    // Quadratic form is O(d²): bench only moderate dims.
    for dim in [16usize, 64] {
        let q = QuadraticForm::histogram_similarity(dim, 4.0);
        let data = uniform_vectors(64, dim, 2);
        group.bench_with_input(BenchmarkId::new("quadratic-form", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 63;
                q.distance(black_box(&data[i]), black_box(&data[i + 1]))
            })
        });
    }
    group.finish();
}

fn bench_edit_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit-distance");
    for len in [8usize, 32, 128] {
        let a = Symbols::new((0..len as u32).collect::<Vec<_>>());
        let b_ = Symbols::new((0..len as u32).map(|x| x * 7 % 97).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| EditDistance.distance(black_box(&a), black_box(&b_)))
        });
    }
    group.finish();
}

fn bench_triangle_comparison(c: &mut Criterion) {
    let qs = uniform_vectors(2, 4, 3);
    let mut qq = QueryDistanceMatrix::new();
    qq.admit(&Euclidean, &[], &qs[0]);
    qq.admit(&Euclidean, &qs[..1], &qs[1]);
    let known = [(0usize, 0.3f64)];
    c.bench_function("triangle-inequality-check", |b| {
        let mut stats = AvoidanceStats::default();
        b.iter(|| qq.try_avoid(1, black_box(&known), black_box(10.0), &mut stats))
    });
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_edit_distance,
    bench_triangle_comparison
);
criterion_main!(benches);

//! Ablations of the design choices called out in DESIGN.md:
//!
//! * **buffer size** — the paper fixes the LRU buffer at 10 % of the
//!   pages; sweep the fraction to show its effect on a dependent workload;
//! * **incremental vs. batch-complete evaluation** — §5.1 argues the
//!   incremental scheme wins when query objects arrive dynamically
//!   (ExploreNeighborhoods); compare DBSCAN under both;
//! * **declustering strategy** — round-robin vs. chunk partitioning for
//!   the parallel engine (the §7 future-work knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_core::{QueryEngine, QueryType};
use mq_datagen::image_histograms_config;
use mq_index::{LinearScan, SimilarityIndex, XTree, XTreeConfig};
use mq_metric::{Euclidean, Vector};
use mq_mining::Dbscan;
use mq_parallel::{Declustering, SharedNothingCluster};
use mq_storage::{Dataset, PagedDatabase, SimulatedDisk};
use std::hint::black_box;

fn clustered(n: usize) -> Dataset<Vector> {
    Dataset::new(image_histograms_config(n, 64, 40, 0.004, 11))
}

fn bench_buffer_fraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-buffer-fraction");
    group.sample_size(10);
    let ds = clustered(4_000);
    let queries: Vec<(Vector, QueryType)> = (0..48)
        .map(|i| {
            (
                ds.object(mq_metric::ObjectId(i * 53)).clone(),
                QueryType::knn(20),
            )
        })
        .collect();
    for &fraction in &[0.01f64, 0.10, 0.50] {
        let (tree, db) = XTree::bulk_load(&ds, XTreeConfig::default());
        let disk = SimulatedDisk::new(db, fraction);
        let engine = QueryEngine::new(&disk, &tree, Euclidean);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", fraction * 100.0)),
            &fraction,
            |b, _| {
                b.iter(|| {
                    for (q, t) in &queries {
                        black_box(engine.similarity_query(q, t));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_vs_single_dbscan(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-dbscan-mode");
    group.sample_size(10);
    let ds = clustered(1_500);
    let db = PagedDatabase::pack(&ds, Default::default());
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.1);
    let engine = QueryEngine::new(&disk, &scan, Euclidean);
    let dbscan = Dbscan::new(0.05, 4);
    group.bench_function("single-queries", |b| {
        b.iter(|| black_box(dbscan.run_single(&engine)))
    });
    group.bench_function("multiple-incremental", |b| {
        b.iter(|| black_box(dbscan.run_multiple(&engine, 64)))
    });
    group.finish();
}

fn bench_declustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-declustering");
    group.sample_size(10);
    let ds = clustered(4_000);
    let objects = ds.objects().to_vec();
    let queries: Vec<(Vector, QueryType)> = (0..64)
        .map(|i| (objects[i * 31].clone(), QueryType::knn(20)))
        .collect();
    for strategy in [Declustering::RoundRobin, Declustering::Chunk] {
        let cluster = SharedNothingCluster::build(
            &objects,
            4,
            strategy,
            Euclidean,
            0.1,
            |ds: &Dataset<Vector>| {
                let db = PagedDatabase::pack(ds, Default::default());
                let scan = LinearScan::new(db.page_count());
                (Box::new(scan) as Box<dyn SimilarityIndex<Vector>>, db)
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, _| b.iter(|| black_box(cluster.multiple_query(&queries, true))),
        );
    }
    group.finish();
}

fn bench_buffer_policy(c: &mut Criterion) {
    // LRU (the paper's choice) vs. CLOCK vs. FIFO on a dependent workload.
    use mq_storage::{BufferPolicy, ClockBuffer, FifoBuffer, LruBuffer};
    let mut group = c.benchmark_group("ablation-buffer-policy");
    group.sample_size(10);
    let ds = clustered(3_000);
    let queries: Vec<(Vector, QueryType)> = (0..64)
        .map(|i| {
            (
                ds.object(mq_metric::ObjectId((i * 13) % 200)).clone(),
                QueryType::knn(20),
            )
        })
        .collect();
    let make_policy = |name: &str, cap: usize| -> Box<dyn BufferPolicy> {
        match name {
            "lru" => Box::new(LruBuffer::new(cap)),
            "clock" => Box::new(ClockBuffer::new(cap)),
            _ => Box::new(FifoBuffer::new(cap)),
        }
    };
    for name in ["lru", "clock", "fifo"] {
        let (tree, db) = XTree::bulk_load(&ds, XTreeConfig::default());
        let cap = (db.page_count() / 10).max(1);
        let disk = SimulatedDisk::with_policy(db, make_policy(name, cap));
        let engine = QueryEngine::new(&disk, &tree, Euclidean);
        group.bench_function(name, |b| {
            b.iter(|| {
                for (q, t) in &queries {
                    black_box(engine.similarity_query(q, t));
                }
            })
        });
    }
    group.finish();
}

fn bench_bulk_load_strategies(c: &mut Criterion) {
    // VAMSplit vs. Z-order physical clustering.
    use mq_index::xtree::zorder::bulk_load_zorder;
    let mut group = c.benchmark_group("ablation-bulk-load");
    group.sample_size(10);
    let ds = clustered(8_000);
    group.bench_function("vamsplit", |b| {
        b.iter(|| black_box(XTree::bulk_load(&ds, XTreeConfig::default())))
    });
    group.bench_function("z-order", |b| {
        b.iter(|| black_box(bulk_load_zorder(&ds, XTreeConfig::default())))
    });
    group.finish();
}

fn bench_pivot_cap(c: &mut Criterion) {
    // §7 future work: limit the quadratic pivot overhead of large batches.
    let mut group = c.benchmark_group("ablation-pivot-cap");
    group.sample_size(10);
    let ds = clustered(3_000);
    let db = PagedDatabase::pack(&ds, Default::default());
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.1);
    let queries: Vec<(Vector, QueryType)> = (0..96)
        .map(|i| {
            (
                ds.object(mq_metric::ObjectId(i * 29)).clone(),
                QueryType::knn(20),
            )
        })
        .collect();
    for cap in [Some(2usize), Some(8), None] {
        let label = cap.map_or("unbounded".to_string(), |p| format!("p={p}"));
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            let engine = match cap {
                Some(p) => QueryEngine::new(&disk, &scan, Euclidean).with_max_pivots(p),
                None => QueryEngine::new(&disk, &scan, Euclidean),
            };
            b.iter(|| black_box(engine.multiple_similarity_query(queries.clone())))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_buffer_fraction,
    bench_buffer_policy,
    bench_bulk_load_strategies,
    bench_incremental_vs_single_dbscan,
    bench_declustering,
    bench_pivot_cap
);
criterion_main!(benches);

//! Criterion view of the page-evaluation hot path: the same three
//! configurations as the `bench_core` binary (scalar fallback, blocked
//! kernels, kernels + parallel evaluation) on a small 64-d batch, so
//! regressions show up in routine bench runs without the full harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_bench::baseline::NaiveEuclidean;
use mq_core::{QueryEngine, QueryType};
use mq_datagen::image_histograms;
use mq_index::LinearScan;
use mq_metric::{Euclidean, Metric, Vector};
use mq_storage::{Dataset, PageLayout, PagedDatabase, SimulatedDisk};
use std::hint::black_box;

const N: usize = 2_000;
const M: usize = 8;
const K: usize = 20;

fn run_batch<Me: Metric<Vector> + Sync>(
    dataset: &Dataset<Vector>,
    queries: &[(Vector, QueryType)],
    metric: Me,
    threads: usize,
) -> usize {
    let db = PagedDatabase::pack(dataset, PageLayout::PAPER);
    let index = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.10);
    let engine = QueryEngine::new(&disk, &index, metric).with_threads(threads);
    let answers = engine.multiple_similarity_query(queries.to_vec());
    answers.iter().map(Vec::len).sum()
}

fn bench_page_eval(c: &mut Criterion) {
    let objects = image_histograms(N, 20000203);
    let queries: Vec<(Vector, QueryType)> = (0..M)
        .map(|i| (objects[i * N / M].clone(), QueryType::knn(K)))
        .collect();
    let dataset = Dataset::new(objects);

    let mut group = c.benchmark_group("page-eval");
    group.bench_with_input(BenchmarkId::new("scalar", 1), &1usize, |b, _| {
        b.iter(|| run_batch(black_box(&dataset), &queries, NaiveEuclidean, 1))
    });
    group.bench_with_input(BenchmarkId::new("kernel", 1), &1usize, |b, _| {
        b.iter(|| run_batch(black_box(&dataset), &queries, Euclidean, 1))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("kernel-parallel", threads),
            &threads,
            |b, &t| b.iter(|| run_batch(black_box(&dataset), &queries, Euclidean, t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_page_eval);
criterion_main!(benches);

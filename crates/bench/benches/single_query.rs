//! Single-query benchmarks (Fig. 1 baseline): k-NN and range queries per
//! access method on both §6 data distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mq_core::{QueryEngine, QueryType};
use mq_datagen::{image_histograms_config, tycho_like};
use mq_index::{LinearScan, MTree, MTreeConfig, SimilarityIndex, XTree, XTreeConfig};
use mq_metric::{Euclidean, Vector};
use mq_storage::{Dataset, PagedDatabase, SimulatedDisk};
use std::hint::black_box;

struct Setup {
    disk: SimulatedDisk<Vector>,
    index: Box<dyn SimilarityIndex<Vector>>,
    queries: Vec<Vector>,
}

fn setups(n: usize) -> Vec<(&'static str, Setup)> {
    let astro = Dataset::new(tycho_like(n, 1));
    let queries: Vec<Vector> = (0..16)
        .map(|i| astro.object(mq_metric::ObjectId(i * 131)).clone())
        .collect();

    let mut out = Vec::new();
    let db = PagedDatabase::pack(&astro, Default::default());
    let scan = LinearScan::new(db.page_count());
    out.push((
        "scan",
        Setup {
            disk: SimulatedDisk::new(db, 0.1),
            index: Box::new(scan),
            queries: queries.clone(),
        },
    ));
    let (tree, db) = XTree::bulk_load(&astro, XTreeConfig::default());
    out.push((
        "x-tree",
        Setup {
            disk: SimulatedDisk::new(db, 0.1),
            index: Box::new(tree),
            queries: queries.clone(),
        },
    ));
    let (mtree, db) = MTree::insert_load(&astro, Euclidean, MTreeConfig::default());
    out.push((
        "m-tree",
        Setup {
            disk: SimulatedDisk::new(db, 0.1),
            index: Box::new(mtree),
            queries,
        },
    ));
    out
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("single-knn");
    for (name, setup) in setups(8_000) {
        let engine = QueryEngine::new(&setup.disk, &*setup.index, Euclidean);
        let t = QueryType::knn(10);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % setup.queries.len();
                black_box(engine.similarity_query(&setup.queries[i], &t))
            })
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("single-range");
    for (name, setup) in setups(8_000) {
        let engine = QueryEngine::new(&setup.disk, &*setup.index, Euclidean);
        let t = QueryType::range(0.2);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % setup.queries.len();
                black_box(engine.similarity_query(&setup.queries[i], &t))
            })
        });
    }
    group.finish();
}

fn bench_clustered_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("single-knn-clustered-64d");
    let image = Dataset::new(image_histograms_config(6_000, 64, 80, 0.004, 2));
    let queries: Vec<Vector> = (0..16)
        .map(|i| image.object(mq_metric::ObjectId(i * 37)).clone())
        .collect();
    let (tree, db) = XTree::bulk_load(&image, XTreeConfig::default());
    let disk = SimulatedDisk::new(db, 0.1);
    let engine = QueryEngine::new(&disk, &tree, Euclidean);
    let t = QueryType::knn(20);
    group.bench_function("x-tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            black_box(engine.similarity_query(&queries[i], &t))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_range, bench_clustered_knn);
criterion_main!(benches);

//! Index-construction benchmarks: X-tree bulk loading vs. dynamic R\*
//! insertion, and M-tree insertion — the substrate cost behind every
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq_datagen::{image_histograms_config, tycho_like_dim};
use mq_index::{MTree, MTreeConfig, XTree, XTreeConfig};
use mq_metric::Euclidean;
use mq_storage::Dataset;

fn bench_xtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("xtree-build");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let ds = Dataset::new(tycho_like_dim(n, 20, 1));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bulk", n), &n, |b, _| {
            b.iter(|| XTree::bulk_load(&ds, XTreeConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, _| {
            b.iter(|| XTree::insert_load(&ds, XTreeConfig::default()))
        });
    }
    group.finish();
}

fn bench_mtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mtree-build");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000] {
        let ds = Dataset::new(image_histograms_config(n, 32, 40, 0.004, 2));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| MTree::insert_load(&ds, Euclidean, MTreeConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xtree_build, bench_mtree_build);
criterion_main!(benches);

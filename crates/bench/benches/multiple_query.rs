//! Multiple-query benchmarks: block-size sweep and the §5.2 avoidance
//! ablation — the central measurement of the paper in wall-clock form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mq_core::{QueryEngine, QueryType};
use mq_datagen::{classification_query_ids, image_histograms_config, tycho_like};
use mq_index::{LinearScan, XTree, XTreeConfig};
use mq_metric::{Euclidean, Vector};
use mq_storage::{Dataset, PagedDatabase, SimulatedDisk};
use std::hint::black_box;

fn queries_for(ds: &Dataset<Vector>, m: usize, k: usize) -> Vec<(Vector, QueryType)> {
    classification_query_ids(ds.len(), m, 7)
        .into_iter()
        .map(|id| (ds.object(id).clone(), QueryType::knn(k)))
        .collect()
}

fn bench_block_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiple-query-scan");
    group.sample_size(10);
    let ds = Dataset::new(tycho_like(8_000, 1));
    let db = PagedDatabase::pack(&ds, Default::default());
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.1);
    let engine = QueryEngine::new(&disk, &scan, Euclidean);
    let queries = queries_for(&ds, 64, 10);
    group.throughput(Throughput::Elements(64));
    for m in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            b.iter(|| {
                for block in queries.chunks(m) {
                    black_box(engine.multiple_similarity_query(block.to_vec()));
                }
            })
        });
    }
    group.finish();
}

fn bench_avoidance_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("avoidance-ablation");
    group.sample_size(10);
    // Clustered 64-d data: the avoidance sweet spot (§6.2).
    let ds = Dataset::new(image_histograms_config(6_000, 64, 80, 0.004, 3));
    let db = PagedDatabase::pack(&ds, Default::default());
    let scan = LinearScan::new(db.page_count());
    let disk = SimulatedDisk::new(db, 0.1);
    let queries = queries_for(&ds, 64, 20);
    group.throughput(Throughput::Elements(64));
    group.bench_function("with-avoidance", |b| {
        let engine = QueryEngine::new(&disk, &scan, Euclidean);
        b.iter(|| black_box(engine.multiple_similarity_query(queries.clone())))
    });
    group.bench_function("without-avoidance", |b| {
        let engine = QueryEngine::new(&disk, &scan, Euclidean).without_avoidance();
        b.iter(|| black_box(engine.multiple_similarity_query(queries.clone())))
    });
    group.finish();
}

fn bench_xtree_multiple(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiple-query-xtree");
    group.sample_size(10);
    let ds = Dataset::new(tycho_like(8_000, 5));
    let (tree, db) = XTree::bulk_load(&ds, XTreeConfig::default());
    let disk = SimulatedDisk::new(db, 0.1);
    let engine = QueryEngine::new(&disk, &tree, Euclidean);
    let queries = queries_for(&ds, 64, 10);
    group.throughput(Throughput::Elements(64));
    for m in [1usize, 64] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            b.iter(|| {
                for block in queries.chunks(m) {
                    black_box(engine.multiple_similarity_query(block.to_vec()));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_size_sweep,
    bench_avoidance_ablation,
    bench_xtree_multiple
);
criterion_main!(benches);

//! The exactness boundary of the real vector tiers, quantified over the
//! engine configuration matrix.
//!
//! `mq_core::prescreen` promises: a [`BqPrescreen`] whose budget covers
//! the whole collection admits every object, so the candidate restriction
//! never skips a page or a record and the engine must be bit-identical to
//! running with no tier at all — answers, `AvoidanceStats`, **and**
//! `IoStats` — for every combination of evaluation threads, prefetch
//! depth, and leader policy. This is the test that lets `--approx` ship
//! inside the exact engine: the approximation is entirely in candidate
//! *selection*, never in evaluation.

use mq_approx::{BinarySketch, BqPrescreen, Hnsw, HnswConfig, HnswPrescreen};
use mq_core::{AvoidanceStats, LeaderPolicy, QueryEngine, QueryType};
use mq_datagen::embeddings;
use mq_index::LinearScan;
use mq_metric::{Euclidean, Vector};
use mq_storage::{Dataset, IoStats, PageLayout, PagedDatabase, SimulatedDisk};
use std::sync::Arc;

const N: usize = 600;

fn database(seed: u64) -> PagedDatabase<Vector> {
    let vectors = embeddings(N, seed);
    PagedDatabase::pack(&Dataset::new(vectors), PageLayout::new(4096, 24))
}

fn queries(db: &PagedDatabase<Vector>) -> Vec<(Vector, QueryType)> {
    // A mixed k-NN / range batch drawn from stored objects, like the CLI's
    // batch driver: stride through the collection so queries land in
    // different topic clusters.
    let stored: Vec<Vector> = db
        .page_ids()
        .flat_map(|pid| db.page(pid).records().iter().map(|(_, v)| v.clone()))
        .collect();
    stored
        .iter()
        .step_by(N / 8)
        .take(8)
        .enumerate()
        .map(|(i, v)| {
            let qtype = if i % 2 == 0 {
                QueryType::knn(10)
            } else {
                QueryType::range(0.5)
            };
            (v.clone(), qtype)
        })
        .collect()
}

/// One run: fresh disk, fresh engine, optional prescreen.
fn run(
    db: &PagedDatabase<Vector>,
    prescreen: Option<&dyn mq_core::CandidatePrescreen<Vector>>,
    threads: usize,
    prefetch_depth: usize,
    leader: LeaderPolicy,
) -> (Vec<Vec<mq_core::Answer>>, AvoidanceStats, IoStats) {
    let disk = SimulatedDisk::with_buffer_pages(db.clone(), 4);
    let scan = LinearScan::new(db.page_count());
    let mut engine = QueryEngine::new(&disk, &scan, Euclidean)
        .with_threads(threads)
        .with_prefetch_depth(prefetch_depth)
        .with_leader_policy(leader);
    if let Some(p) = prescreen {
        engine = engine.with_prescreen(p);
    }
    let mut session = engine.new_session(queries(db));
    engine.run_to_completion(&mut session);
    let avoidance = session.avoidance_stats();
    (session.into_answers(), avoidance, disk.stats())
}

#[test]
fn full_budget_bq_is_bit_identical_across_the_matrix() {
    let db = database(7);
    let sketch = Arc::new(BinarySketch::build(&db, 4));
    let prescreen = BqPrescreen::new(sketch, N);
    for &threads in &[1usize, 2, 4] {
        for &depth in &[0usize, 2] {
            for &leader in &[LeaderPolicy::Fifo, LeaderPolicy::NearestChain] {
                let (ea, eav, eio) = run(&db, None, threads, depth, leader);
                let (ta, tav, tio) = run(&db, Some(&prescreen), threads, depth, leader);
                let tag = format!("threads {threads}, depth {depth}, {leader:?}");
                assert_eq!(ea, ta, "{tag}: bq budget=N answers diverged");
                assert_eq!(eav, tav, "{tag}: bq budget=N avoidance counters diverged");
                assert_eq!(eio, tio, "{tag}: bq budget=N I/O counters diverged");
            }
        }
    }
}

#[test]
fn full_ef_hnsw_returns_exact_answers_across_the_matrix() {
    // HNSW with ef = N visits the whole (connected) graph, so answers
    // must match the exact engine; its beam *order* may admit candidates
    // differently than a full scan, so only the answers — not the I/O
    // schedule — are pinned here.
    let db = database(7);
    let graph = Arc::new(Hnsw::build(&db, HnswConfig::default()));
    let prescreen = HnswPrescreen::new(graph, N);
    for &threads in &[1usize, 4] {
        for &leader in &[LeaderPolicy::Fifo, LeaderPolicy::NearestChain] {
            let (ea, _, _) = run(&db, None, threads, 0, leader);
            let (ta, _, _) = run(&db, Some(&prescreen), threads, 0, leader);
            assert_eq!(
                ea, ta,
                "threads {threads}, {leader:?}: hnsw ef=N answers diverged"
            );
        }
    }
}

#[test]
fn narrow_budget_reduces_io_and_distance_work() {
    // Vacuity guard: a 5% budget must skip pages and distance
    // calculations, and range answers stay a subset with exact distances.
    let db = database(7);
    let sketch = Arc::new(BinarySketch::build(&db, 4));
    let prescreen = BqPrescreen::new(sketch, N / 20);
    let (ea, eav, eio) = run(&db, None, 1, 0, LeaderPolicy::Fifo);
    let (ta, tav, tio) = run(&db, Some(&prescreen), 1, 0, LeaderPolicy::Fifo);
    assert!(
        tav.computed < eav.computed,
        "budget N/20 did not reduce distance work ({} vs {})",
        tav.computed,
        eav.computed
    );
    assert!(
        tio.logical_reads <= eio.logical_reads,
        "candidate restriction must never read more pages"
    );
    for (qi, answers) in ta.iter().enumerate().skip(1).step_by(2) {
        for a in answers {
            assert!(
                ea[qi]
                    .iter()
                    .any(|x| x.id == a.id && x.distance == a.distance),
                "range query {qi}: tier reported {:?} @ {} beyond the exact run",
                a.id,
                a.distance
            );
        }
    }
}

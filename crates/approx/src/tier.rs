//! Tier selection and its wire/CLI syntax: `bq:<budget>` | `hnsw:<ef>`.

use std::fmt;
use std::str::FromStr;

/// Which approximate candidate tier to run in front of the exact
/// multi-query re-rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApproxTier {
    /// Binary-quantized Hamming pre-screen with a per-query candidate
    /// budget.
    Bq {
        /// Candidates kept per query (the Hamming-closest ids).
        budget: usize,
    },
    /// In-memory HNSW beam search.
    Hnsw {
        /// Beam width = candidates kept per query.
        ef: usize,
    },
}

impl ApproxTier {
    /// Per-query candidate volume (the budget / beam width).
    pub fn budget(&self) -> usize {
        match *self {
            ApproxTier::Bq { budget } => budget,
            ApproxTier::Hnsw { ef } => ef,
        }
    }
}

impl fmt::Display for ApproxTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxTier::Bq { budget } => write!(f, "bq:{budget}"),
            ApproxTier::Hnsw { ef } => write!(f, "hnsw:{ef}"),
        }
    }
}

impl FromStr for ApproxTier {
    type Err = String;

    /// Parses `bq:<budget>` or `hnsw:<ef>`; both numbers must be positive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, num) = s
            .split_once(':')
            .ok_or_else(|| format!("expected bq:<budget> or hnsw:<ef>, got '{s}'"))?;
        let n: usize = num
            .parse()
            .map_err(|_| format!("'{num}' is not a number in approx tier '{s}'"))?;
        if n == 0 {
            return Err(format!("approx tier '{s}' needs a positive budget"));
        }
        match kind {
            "bq" => Ok(ApproxTier::Bq { budget: n }),
            "hnsw" => Ok(ApproxTier::Hnsw { ef: n }),
            other => Err(format!("unknown approx tier '{other}' (use bq or hnsw)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_round_trip() {
        for s in ["bq:500", "hnsw:64"] {
            let t: ApproxTier = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
        assert_eq!(
            "bq:500".parse::<ApproxTier>().unwrap(),
            ApproxTier::Bq { budget: 500 }
        );
        assert_eq!("bq:500".parse::<ApproxTier>().unwrap().budget(), 500);
    }

    #[test]
    fn rejects_malformed() {
        for s in ["bq", "bq:", "bq:x", "bq:0", "lsh:5", "hnsw:-3"] {
            assert!(s.parse::<ApproxTier>().is_err(), "'{s}' should not parse");
        }
    }
}

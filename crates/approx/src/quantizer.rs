//! Binary quantization of feature vectors: per-dimension, multi-plane
//! quantile thresholds packed into `u64` code words.
//!
//! One *bitplane* is a per-dimension threshold vector; bit `(p, d)` of an
//! object's code says whether component `d` exceeds plane `p`'s threshold
//! for that dimension. A single sign/median plane is too coarse for the
//! low-dimensional feature files of the paper's workloads (32-d codes
//! collide heavily), so the quantizer fits `planes` thresholds per
//! dimension at evenly spaced quantiles — 2–4 planes give `2·dim`–`4·dim`
//! code bits, enough for the Hamming pre-screen to rank candidates
//! usefully while a whole code still fits in a few `u64` words.
//!
//! Everything here is deterministic: quantiles come from a total-order
//! sort (`f32::total_cmp`), so the same training set always yields the
//! same thresholds and the same codes.

use mq_metric::Vector;

/// Fitted per-dimension quantile thresholds; encodes vectors into packed
/// binary codes of `words()` `u64`s.
#[derive(Clone, Debug, PartialEq)]
pub struct BinaryQuantizer {
    dim: usize,
    planes: usize,
    /// Plane-major: `thresholds[p * dim + d]` is plane `p`'s threshold for
    /// dimension `d`.
    thresholds: Vec<f32>,
}

impl BinaryQuantizer {
    /// Fits `planes` quantile thresholds per dimension from the training
    /// vectors (typically the whole stored collection). Plane `p` sits at
    /// quantile `(p + 1) / (planes + 1)` — e.g. the median for one plane,
    /// the terciles for two.
    ///
    /// # Panics
    /// Panics if `planes == 0`, if no training vector is supplied, or if
    /// the training vectors disagree on dimensionality.
    pub fn fit<'a>(vectors: impl IntoIterator<Item = &'a Vector>, planes: usize) -> Self {
        assert!(planes > 0, "need at least one bitplane");
        let vectors: Vec<&Vector> = vectors.into_iter().collect();
        let dim = vectors
            .first()
            .expect("need at least one training vector")
            .dim();
        let mut thresholds = vec![0.0f32; planes * dim];
        let mut column = Vec::with_capacity(vectors.len());
        for d in 0..dim {
            column.clear();
            for v in &vectors {
                assert_eq!(v.dim(), dim, "training vectors must share one dim");
                column.push(v.components()[d]);
            }
            column.sort_unstable_by(f32::total_cmp);
            for p in 0..planes {
                // Evenly spaced interior quantiles; the index arithmetic
                // floors, so plane 0 of a 1-plane fit is the lower median.
                let at = (column.len() * (p + 1)) / (planes + 1);
                thresholds[p * dim + d] = column[at.min(column.len() - 1)];
            }
        }
        Self {
            dim,
            planes,
            thresholds,
        }
    }

    /// Rebuilds a quantizer from its stored parts (the sidecar load path).
    ///
    /// # Panics
    /// Panics if the threshold count is not `planes * dim`.
    pub fn from_parts(dim: usize, planes: usize, thresholds: Vec<f32>) -> Self {
        assert_eq!(thresholds.len(), planes * dim, "threshold count mismatch");
        Self {
            dim,
            planes,
            thresholds,
        }
    }

    /// Dimensionality the quantizer was fitted for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of bitplanes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The raw threshold table, plane-major (for persistence).
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// `u64` words per packed code.
    pub fn words(&self) -> usize {
        (self.planes * self.dim).div_ceil(64)
    }

    /// Packs one vector into its binary code, appending `words()` words to
    /// `out`. Bit `p * dim + d` is set iff component `d` exceeds plane
    /// `p`'s threshold.
    ///
    /// # Panics
    /// Panics if the vector's dimensionality differs from the fit.
    pub fn encode_into(&self, v: &Vector, out: &mut Vec<u64>) {
        assert_eq!(v.dim(), self.dim, "vector dim differs from quantizer fit");
        let start = out.len();
        out.resize(start + self.words(), 0);
        for p in 0..self.planes {
            let plane = &self.thresholds[p * self.dim..(p + 1) * self.dim];
            for (d, (&c, &t)) in v.components().iter().zip(plane).enumerate() {
                if c > t {
                    let bit = p * self.dim + d;
                    out[start + bit / 64] |= 1 << (bit % 64);
                }
            }
        }
    }

    /// [`encode_into`](Self::encode_into) returning a fresh code.
    pub fn encode(&self, v: &Vector) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.words());
        self.encode_into(v, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, dim: usize) -> Vec<Vector> {
        (0..n)
            .map(|i| Vector::new((0..dim).map(|d| (i * (d + 1)) as f32).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn fit_is_deterministic_and_encodes_consistently() {
        let vs = grid(100, 8);
        let a = BinaryQuantizer::fit(&vs, 2);
        let b = BinaryQuantizer::fit(&vs, 2);
        assert_eq!(a, b);
        assert_eq!(a.words(), 1); // 16 bits
        for v in &vs {
            assert_eq!(a.encode(v), b.encode(v));
        }
    }

    #[test]
    fn median_plane_splits_the_collection() {
        let vs = grid(101, 1);
        let q = BinaryQuantizer::fit(&vs, 1);
        let above = vs.iter().filter(|v| q.encode(v)[0] & 1 == 1).count();
        // Strict `>` against the lower median: about half above.
        assert!((40..=60).contains(&above), "split {above}/101");
    }

    #[test]
    fn close_vectors_get_close_codes() {
        let vs = grid(64, 16);
        let q = BinaryQuantizer::fit(&vs, 4);
        let near = mq_metric::kernel::hamming(&q.encode(&vs[10]), &q.encode(&vs[11]));
        let far = mq_metric::kernel::hamming(&q.encode(&vs[10]), &q.encode(&vs[60]));
        assert!(near < far, "hamming should track distance: {near} vs {far}");
    }

    #[test]
    fn roundtrips_through_parts() {
        let vs = grid(30, 5);
        let q = BinaryQuantizer::fit(&vs, 3);
        let r = BinaryQuantizer::from_parts(q.dim(), q.planes(), q.thresholds().to_vec());
        assert_eq!(q, r);
    }

    #[test]
    #[should_panic(expected = "vector dim differs")]
    fn encode_rejects_wrong_dim() {
        let q = BinaryQuantizer::fit(&grid(10, 4), 1);
        let _ = q.encode(&Vector::new(vec![1.0, 2.0]));
    }
}

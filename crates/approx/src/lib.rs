#![warn(missing_docs)]
//! # mq-approx — the approximate candidate tier
//!
//! An optional lossy tier in front of the exact multiple-query engine:
//! a cheap index nominates a *candidate set* per query, the engine
//! restricts each session to the union of those sets, and the surviving
//! candidates are re-ranked **exactly** through the shared-page,
//! triangle-avoiding machinery of `mq_core::multiple`. Answers may lose
//! recall (a true answer the prescreen missed stays missed), but every
//! reported distance is exact, and a tier whose budget covers the whole
//! collection is bit-identical to the exact engine — the property the
//! equivalence tests pin.
//!
//! Two tiers:
//!
//! * [`BinarySketch`] / [`BqPrescreen`] — per-dimension multi-plane
//!   quantile thresholds ([`BinaryQuantizer`]) pack each vector into a few
//!   `u64` words; a query is answered by a linear Hamming scan over all
//!   codes (runtime-dispatched popcount kernel) keeping the `budget`
//!   closest ids. Durable: the sidecar (`sketch.mqbq`) persists next to a
//!   partition's page files and is checksum-verified on load.
//! * [`Hnsw`] / [`HnswPrescreen`] — a deterministic in-memory navigable
//!   small-world graph; better recall at tiny budgets, rebuilt on open.
//!
//! [`ApproxTier`] carries the CLI/wire syntax (`bq:<budget>`,
//! `hnsw:<ef>`).

pub mod hnsw;
pub mod quantizer;
pub mod sketch;
pub mod tier;

pub use hnsw::{Hnsw, HnswConfig, HnswPrescreen};
pub use quantizer::BinaryQuantizer;
pub use sketch::{BinarySketch, BqPrescreen};
pub use tier::ApproxTier;

/// Conventional file name of the binary-sketch sidecar inside a
/// partition's store directory.
pub const SKETCH_FILE: &str = "sketch.mqbq";

/// Default bitplane count for sketches built by the server/CLI layers:
/// 4 planes × dim bits ranks 32-d feature files usefully while keeping
/// codes at a couple of `u64` words.
pub const DEFAULT_PLANES: usize = 4;

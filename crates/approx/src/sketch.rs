//! The binary sketch: packed codes for a whole stored collection, a
//! Hamming pre-screen over them, and the durable sidecar format.
//!
//! A [`BinarySketch`] holds one code per object-id slot of a
//! [`PagedDatabase`] (tombstoned ids keep a zero code and a cleared
//! *present* bit, so sketch row `i` always belongs to `ObjectId(i)`).
//! [`search`](BinarySketch::search) ranks all present codes by Hamming
//! distance to the query's code — the runtime-dispatched popcount kernel
//! makes this a linear pass over a few bytes per object — and returns the
//! `budget` closest ids as candidates for the exact re-rank. Selection
//! tie-breaks by `(distance, id)`, so the candidate set is deterministic.
//!
//! The sidecar file (`sketch.mqbq`) stores the fitted thresholds, the
//! present bitmap and all codes behind a magic/version header and an
//! FNV-1a checksum; a reopened partition loads it back instead of
//! re-fitting, and falls back to a rebuild when the file is missing,
//! corrupt, or stale (object count mismatch).

use crate::quantizer::BinaryQuantizer;
use mq_core::CandidatePrescreen;
use mq_metric::{kernel, ObjectId, Vector};
use mq_storage::PagedDatabase;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic bytes opening a sketch sidecar file.
const MAGIC: &[u8; 4] = b"MQBQ";
/// Sidecar format version.
const VERSION: u32 = 1;

/// Binary codes for one collection plus the quantizer that produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct BinarySketch {
    quantizer: BinaryQuantizer,
    /// Id-space size (tombstones included): codes has `count * words` words.
    count: usize,
    /// Packed codes, row `i` at `codes[i * words .. (i + 1) * words]`.
    codes: Vec<u64>,
    /// Bit per id: set = live object, cleared = tombstone slot.
    present: Vec<u64>,
}

impl BinarySketch {
    /// Fits a quantizer on the database's live vectors and encodes every
    /// object. `planes` is the bitplane count (see [`BinaryQuantizer`]).
    ///
    /// # Panics
    /// Panics if the database holds no live object.
    pub fn build(db: &PagedDatabase<Vector>, planes: usize) -> Self {
        let count = db.object_count();
        let live: Vec<&Vector> = (0..count)
            .filter_map(|i| db.try_object(ObjectId(i as u32)))
            .collect();
        let quantizer = BinaryQuantizer::fit(live, planes);
        let words = quantizer.words();
        let mut codes = Vec::with_capacity(count * words);
        let mut present = vec![0u64; count.div_ceil(64)];
        for i in 0..count {
            match db.try_object(ObjectId(i as u32)) {
                Some(v) => {
                    quantizer.encode_into(v, &mut codes);
                    present[i / 64] |= 1 << (i % 64);
                }
                None => codes.resize(codes.len() + words, 0),
            }
        }
        Self {
            quantizer,
            count,
            codes,
            present,
        }
    }

    /// The fitted quantizer.
    pub fn quantizer(&self) -> &BinaryQuantizer {
        &self.quantizer
    }

    /// Id-space size the sketch was built over (tombstones included).
    pub fn object_count(&self) -> usize {
        self.count
    }

    /// Number of live codes.
    pub fn live_count(&self) -> usize {
        self.present.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn is_present(&self, i: usize) -> bool {
        (self.present[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The `budget` ids whose codes are Hamming-closest to `query`'s code,
    /// ties broken by id. With `budget >= live_count()` this is every live
    /// id — the exactness escape hatch the bit-identity tests pin.
    pub fn search(&self, query: &Vector, budget: usize) -> Vec<ObjectId> {
        let code = self.quantizer.encode(query);
        let words = self.quantizer.words();
        let mut ranked: Vec<(u32, u32)> = (0..self.count)
            .filter(|&i| self.is_present(i))
            .map(|i| {
                let row = &self.codes[i * words..(i + 1) * words];
                (kernel::hamming(&code, row), i as u32)
            })
            .collect();
        if budget < ranked.len() {
            // O(n) selection; the `(distance, id)` order is total, so the
            // surviving *set* is unique however the partition shuffles.
            ranked.select_nth_unstable(budget);
            ranked.truncate(budget);
        }
        ranked.into_iter().map(|(_, i)| ObjectId(i)).collect()
    }

    /// Serializes the sketch to `path` (magic, version, shape, thresholds,
    /// present bitmap, codes, FNV-1a checksum), atomically via a `.tmp`
    /// sibling.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut buf = Vec::with_capacity(64 + self.codes.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(self.quantizer.dim() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.quantizer.planes() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.count as u64).to_le_bytes());
        for &t in self.quantizer.thresholds() {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        for &w in &self.present {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        for &w in &self.codes {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        let tmp = path.with_extension("mqbq.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a sketch back from `path`, verifying magic, version and
    /// checksum. Corruption surfaces as [`io::ErrorKind::InvalidData`];
    /// callers treat any error as "rebuild from the database".
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        let corrupt = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if buf.len() < 32 {
            return Err(corrupt("sketch file truncated"));
        }
        let (body, sum) = buf.split_at(buf.len() - 8);
        if fnv1a(body) != u64::from_le_bytes(sum.try_into().unwrap()) {
            return Err(corrupt("sketch checksum mismatch"));
        }
        let mut at = 0usize;
        let mut take = |n: usize| -> io::Result<&[u8]> {
            let s = body
                .get(at..at + n)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "sketch truncated"))?;
            at += n;
            Ok(s)
        };
        if take(4)? != MAGIC {
            return Err(corrupt("not a sketch file"));
        }
        let u32_at = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        if u32_at(take(4)?) != VERSION {
            return Err(corrupt("unsupported sketch version"));
        }
        let dim = u32_at(take(4)?) as usize;
        let planes = u32_at(take(4)?) as usize;
        let count = u64::from_le_bytes(take(8)?.try_into().unwrap()) as usize;
        if dim == 0 || planes == 0 {
            return Err(corrupt("degenerate sketch shape"));
        }
        let mut thresholds = Vec::with_capacity(dim * planes);
        for _ in 0..dim * planes {
            thresholds.push(f32::from_le_bytes(take(4)?.try_into().unwrap()));
        }
        let quantizer = BinaryQuantizer::from_parts(dim, planes, thresholds);
        let mut present = Vec::with_capacity(count.div_ceil(64));
        for _ in 0..count.div_ceil(64) {
            present.push(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        }
        let words = quantizer.words();
        let mut codes = Vec::with_capacity(count * words);
        for _ in 0..count * words {
            codes.push(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        }
        if at != body.len() {
            return Err(corrupt("trailing bytes in sketch file"));
        }
        Ok(Self {
            quantizer,
            count,
            codes,
            present,
        })
    }

    /// Loads the sidecar if it is valid *and* matches the database's
    /// current id-space size; otherwise rebuilds from the database and
    /// (best-effort) rewrites the sidecar. Returns the sketch and whether
    /// it was loaded (`true`) or rebuilt (`false`).
    pub fn load_or_build(path: &Path, db: &PagedDatabase<Vector>, planes: usize) -> (Self, bool) {
        if let Ok(sketch) = Self::load(path) {
            if sketch.count == db.object_count() && sketch.quantizer.planes() == planes {
                return (sketch, true);
            }
        }
        let sketch = Self::build(db, planes);
        let _ = sketch.save(path);
        (sketch, false)
    }
}

/// FNV-1a over `bytes` — the same checksum family the store's manifests
/// use; collisions are irrelevant here, torn writes are the threat model.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The binary-quantized Hamming pre-screen as an engine-attachable
/// candidate tier: per query, the `budget` Hamming-closest live ids.
pub struct BqPrescreen {
    sketch: Arc<BinarySketch>,
    budget: usize,
    name: String,
}

impl BqPrescreen {
    /// Wraps a sketch with a per-query candidate budget.
    pub fn new(sketch: Arc<BinarySketch>, budget: usize) -> Self {
        Self {
            sketch,
            budget,
            name: format!("bq:{budget}"),
        }
    }

    /// The per-query candidate budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The underlying sketch.
    pub fn sketch(&self) -> &BinarySketch {
        &self.sketch
    }
}

impl CandidatePrescreen<Vector> for BqPrescreen {
    fn candidates(&self, query: &Vector) -> Vec<ObjectId> {
        self.sketch.search(query, self.budget)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_storage::{Dataset, PageLayout};

    fn db(n: usize, dim: usize) -> PagedDatabase<Vector> {
        let ds = Dataset::new(
            (0..n)
                .map(|i| {
                    Vector::new(
                        (0..dim)
                            .map(|d| ((i * 37 + d * 11) % 97) as f32)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        PagedDatabase::pack(&ds, PageLayout::new(256, 16))
    }

    #[test]
    fn budget_at_least_live_count_returns_everything() {
        let db = db(50, 8);
        let sketch = BinarySketch::build(&db, 2);
        let q = db.object(ObjectId(7)).clone();
        let mut all = sketch.search(&q, 50);
        all.sort();
        assert_eq!(all, (0..50).map(ObjectId).collect::<Vec<_>>());
        assert_eq!(sketch.search(&q, 1_000_000).len(), 50);
    }

    #[test]
    fn self_is_always_a_candidate() {
        let db = db(120, 8);
        let sketch = BinarySketch::build(&db, 2);
        for i in [0u32, 13, 77, 119] {
            let q = db.object(ObjectId(i)).clone();
            // Hamming(self, self) = 0, and (0, id) sorts into any budget
            // unless that many other codes also collide at distance 0 with
            // smaller ids; budget 16 on 120 spread points is safe.
            assert!(
                sketch.search(&q, 16).contains(&ObjectId(i)),
                "object {i} missing from its own candidates"
            );
        }
    }

    #[test]
    fn tombstoned_ids_never_surface() {
        let mut db = db(40, 6);
        db.delete_object(ObjectId(5));
        db.delete_object(ObjectId(21));
        let sketch = BinarySketch::build(&db, 2);
        assert_eq!(sketch.live_count(), 38);
        let q = db.object(ObjectId(0)).clone();
        let hits = sketch.search(&q, 40);
        assert_eq!(hits.len(), 38);
        assert!(!hits.contains(&ObjectId(5)));
        assert!(!hits.contains(&ObjectId(21)));
    }

    #[test]
    fn search_is_deterministic() {
        let db = db(200, 16);
        let sketch = BinarySketch::build(&db, 3);
        let q = db.object(ObjectId(42)).clone();
        let mut a = sketch.search(&q, 20);
        let mut b = sketch.search(&q, 20);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sidecar_roundtrips_bit_identically() {
        let dir = std::env::temp_dir().join("mq_approx_sketch_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.mqbq");
        let db = db(64, 8);
        let sketch = BinarySketch::build(&db, 2);
        sketch.save(&path).unwrap();
        let loaded = BinarySketch::load(&path).unwrap();
        assert_eq!(sketch, loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_and_load_or_build_recovers() {
        let dir = std::env::temp_dir().join("mq_approx_sketch_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.mqbq");
        let db = db(64, 8);
        let sketch = BinarySketch::build(&db, 2);
        sketch.save(&path).unwrap();
        // Flip one byte mid-file: the checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            BinarySketch::load(&path).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let (rebuilt, loaded) = BinarySketch::load_or_build(&path, &db, 2);
        assert!(!loaded, "corrupt sidecar must trigger a rebuild");
        assert_eq!(rebuilt, sketch);
        // The rebuild rewrote the sidecar: the next open loads it.
        let (again, loaded) = BinarySketch::load_or_build(&path, &db, 2);
        assert!(loaded);
        assert_eq!(again, sketch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_sidecar_is_rebuilt_on_count_mismatch() {
        let dir = std::env::temp_dir().join("mq_approx_sketch_stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sketch.mqbq");
        let mut db = db(64, 8);
        BinarySketch::build(&db, 2).save(&path).unwrap();
        db.insert_object(Vector::new(vec![1.0; 8]), 16);
        let (sketch, loaded) = BinarySketch::load_or_build(&path, &db, 2);
        assert!(!loaded, "stale sidecar must trigger a rebuild");
        assert_eq!(sketch.object_count(), 65);
        std::fs::remove_dir_all(&dir).ok();
    }
}
